"""Deprecated shim: ring allreduce moved to :mod:`repro.collectives`.

This module's :func:`run_ring_allreduce` predates the collectives
package; it now delegates to
:func:`repro.collectives.ring_allreduce` (same algorithm, same
process names, same timing) and re-shapes the return value into the
legacy :class:`AllreduceResult`.  New code should use
``repro.collectives`` directly — or run the registered ``allreduce``
workload through :class:`repro.api.Experiment`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.collectives import ring_allreduce
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

__all__ = ["AllreduceResult", "run_ring_allreduce"]


@dataclass
class AllreduceResult:
    """Outcome of one ring-allreduce run (legacy shape)."""

    cluster: Cluster
    n_nodes: int
    chunk_bytes: int
    reduce_compute_ns: float
    iterations: int
    total_ns: float

    @property
    def steps(self) -> int:
        """Ring steps per allreduce: reduce-scatter + allgather."""
        return 2 * (self.n_nodes - 1)

    @property
    def time_per_allreduce_ns(self) -> float:
        """Mean wall time of one complete allreduce."""
        return self.total_ns / self.iterations if self.iterations else 0.0

    @property
    def time_per_step_ns(self) -> float:
        """Mean time per ring step (≈ one end-to-end latency)."""
        return self.time_per_allreduce_ns / self.steps if self.steps else 0.0


def run_ring_allreduce(
    n_nodes: int,
    config: SystemConfig | None = None,
    chunk_bytes: int = 8,
    reduce_compute_ns: float = 20.0,
    iterations: int = 20,
    signal_period: int = 64,
) -> AllreduceResult:
    """Deprecated: use :func:`repro.collectives.ring_allreduce`."""
    warnings.warn(
        "repro.apps.run_ring_allreduce is deprecated; use "
        "repro.collectives.ring_allreduce (or the 'allreduce' workload "
        "via repro.api.Experiment) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    cluster = Cluster(n_nodes, config=config)
    result = ring_allreduce(
        cluster,
        payload_bytes=chunk_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        signal_period=signal_period,
    )
    return AllreduceResult(
        cluster=cluster,
        n_nodes=n_nodes,
        chunk_bytes=chunk_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        total_ns=result.total_ns,
    )
