"""Ring allreduce over N simulated nodes.

A fine-grained collective in the spirit of the paper's introduction:
each of the 2(N−1) ring steps moves one small chunk to the right
neighbour and reduces the chunk arriving from the left.  With every
rank advancing in lockstep, the per-step time is one end-to-end
latency (sends overlap the receive wait), so the §6 model predicts::

    T_allreduce ≈ 2(N−1) × (end-to-end latency + reduce_compute)

which the simulation confirms — the multi-node composition of the
paper's single-link model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hlp.mpi import MpiStack
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

__all__ = ["AllreduceResult", "run_ring_allreduce"]


@dataclass
class AllreduceResult:
    """Outcome of one ring-allreduce run."""

    cluster: Cluster
    n_nodes: int
    chunk_bytes: int
    reduce_compute_ns: float
    iterations: int
    total_ns: float

    @property
    def steps(self) -> int:
        """Ring steps per allreduce: reduce-scatter + allgather."""
        return 2 * (self.n_nodes - 1)

    @property
    def time_per_allreduce_ns(self) -> float:
        """Mean wall time of one complete allreduce."""
        return self.total_ns / self.iterations if self.iterations else 0.0

    @property
    def time_per_step_ns(self) -> float:
        """Mean time per ring step (≈ one end-to-end latency)."""
        return self.time_per_allreduce_ns / self.steps if self.steps else 0.0


def run_ring_allreduce(
    n_nodes: int,
    config: SystemConfig | None = None,
    chunk_bytes: int = 8,
    reduce_compute_ns: float = 20.0,
    iterations: int = 20,
    signal_period: int = 64,
) -> AllreduceResult:
    """Run ``iterations`` ring allreduces across ``n_nodes`` ranks."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if reduce_compute_ns < 0:
        raise ValueError(f"reduce_compute_ns must be >= 0, got {reduce_compute_ns}")
    cluster = Cluster(n_nodes, config=config)
    env = cluster.env
    stacks = [MpiStack(node, signal_period=signal_period) for node in cluster.nodes]
    to_right = [
        stacks[index].connect(stacks[(index + 1) % n_nodes])
        for index in range(n_nodes)
    ]
    steps = 2 * (n_nodes - 1)
    marks: dict[str, float] = {}

    def rank(index: int):
        comm = to_right[index]
        node = cluster.nodes[index]
        for _ in range(iterations):
            for _step in range(steps):
                incoming = yield from comm.irecv(chunk_bytes)
                yield from comm.isend(chunk_bytes)
                yield from comm.wait(incoming)
                if reduce_compute_ns > 0:
                    yield from node.cpu.execute(
                        "reduce_op", mean=reduce_compute_ns
                    )
        if index == 0:
            marks["t_end"] = env.now

    processes = [
        env.process(rank(index), name=f"allreduce.rank{index}")
        for index in range(n_nodes)
    ]
    env.run(until=env.all_of(processes))
    return AllreduceResult(
        cluster=cluster,
        n_nodes=n_nodes,
        chunk_bytes=chunk_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        total_ns=marks["t_end"],
    )
