"""A two-rank 1-D halo exchange: the §7 stencil-kernel check.

Each iteration, both ranks post a halo receive, send their boundary
value to the neighbour, wait for the incoming halo, then spend a
configurable compute time on the interior update.  The result records
the communication time per iteration, which §7 predicts responds
*linearly* to any component reduction (the model components do not
overlap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hlp.mpi import MpiStack
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed

__all__ = ["StencilResult", "run_halo_exchange"]


@dataclass
class StencilResult:
    """Outcome of one halo-exchange run."""

    testbed: Testbed
    iterations: int
    halo_bytes: int
    compute_ns: float
    total_comm_ns: float
    total_ns: float

    @property
    def comm_ns_per_iteration(self) -> float:
        """Mean communication-phase time per exchange."""
        return self.total_comm_ns / self.iterations if self.iterations else 0.0

    @property
    def comm_fraction(self) -> float:
        """Share of wall time spent communicating (rank 0's view)."""
        return self.total_comm_ns / self.total_ns if self.total_ns else 0.0


def run_halo_exchange(
    config: SystemConfig | None = None,
    iterations: int = 200,
    halo_bytes: int = 8,
    compute_ns: float = 500.0,
    signal_period: int = 64,
) -> StencilResult:
    """Run the stencil communication phase on a fresh testbed."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if compute_ns < 0:
        raise ValueError(f"compute_ns must be >= 0, got {compute_ns}")
    tb = Testbed(config or SystemConfig.paper_testbed())
    rank0 = MpiStack(tb.node1, signal_period=signal_period)
    rank1 = MpiStack(tb.node2, signal_period=signal_period)
    comm01 = rank0.connect(rank1)
    comm10 = rank1.connect(rank0)
    stats = {"comm_ns": 0.0, "t_end": 0.0}
    env = tb.env

    def rank(comm, node, record: bool):
        for _ in range(iterations):
            t0 = env.now
            halo = yield from comm.irecv(halo_bytes)
            yield from comm.isend(halo_bytes)
            yield from comm.wait(halo)
            if record:
                stats["comm_ns"] += env.now - t0
            if compute_ns > 0:
                yield from node.cpu.execute("stencil_compute", mean=compute_ns)
        if record:
            stats["t_end"] = env.now

    rank0_proc = env.process(rank(comm01, tb.node1, True), name="stencil.rank0")
    env.process(rank(comm10, tb.node2, False), name="stencil.rank1")
    env.run(until=rank0_proc)
    return StencilResult(
        testbed=tb,
        iterations=iterations,
        halo_bytes=halo_bytes,
        compute_ns=compute_ns,
        total_comm_ns=stats["comm_ns"],
        total_ns=stats["t_end"],
    )
