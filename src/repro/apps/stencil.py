"""Deprecated shim: the stencil halo exchange moved to ``repro.traffic``.

:func:`repro.traffic.workloads.run_halo_ranks` is the same 1-D halo
exchange generalised to N ranks; the two-rank testbed run below is its
N=2 special case, byte-for-byte the old communication schedule.  This
module keeps the old entry point and result type alive with a
:class:`DeprecationWarning`, exactly like ``repro.apps.allreduce``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.hlp.mpi import MpiStack
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed
from repro.traffic.workloads import run_halo_ranks

__all__ = ["StencilResult", "run_halo_exchange"]


@dataclass
class StencilResult:
    """Outcome of one halo-exchange run."""

    testbed: Testbed
    iterations: int
    halo_bytes: int
    compute_ns: float
    total_comm_ns: float
    total_ns: float

    @property
    def comm_ns_per_iteration(self) -> float:
        """Mean communication-phase time per exchange."""
        return self.total_comm_ns / self.iterations if self.iterations else 0.0

    @property
    def comm_fraction(self) -> float:
        """Share of wall time spent communicating (rank 0's view)."""
        return self.total_comm_ns / self.total_ns if self.total_ns else 0.0


def run_halo_exchange(
    config: SystemConfig | None = None,
    iterations: int = 200,
    halo_bytes: int = 8,
    compute_ns: float = 500.0,
    signal_period: int = 64,
) -> StencilResult:
    """Run the stencil communication phase on a fresh testbed.

    .. deprecated::
        Use :func:`repro.traffic.workloads.run_halo_ranks` (or the
        ``halo`` / ``stencil`` workloads via
        :class:`repro.api.Experiment`) instead.
    """
    warnings.warn(
        "repro.apps.run_halo_exchange is deprecated; use "
        "repro.traffic.run_halo_ranks (or the 'halo'/'stencil' workloads "
        "via repro.api.Experiment) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    tb = Testbed(config or SystemConfig.paper_testbed())
    rank0 = MpiStack(tb.node1, signal_period=signal_period)
    rank1 = MpiStack(tb.node2, signal_period=signal_period)
    stats = run_halo_ranks(
        tb.env,
        [rank0, rank1],
        iterations=iterations,
        halo_bytes=halo_bytes,
        compute_ns=compute_ns,
    )
    return StencilResult(
        testbed=tb,
        iterations=iterations,
        halo_bytes=halo_bytes,
        compute_ns=compute_ns,
        total_comm_ns=stats["comm_ns"],
        total_ns=stats["t_end"],
    )
