"""A GUPS-style fine-grained random-access kernel.

The limit-of-strong-scaling workload of the paper's introduction: every
core issues independent small RDMA writes to remote memory as fast as
it can, with no synchronisation between cores.  The figure of merit is
aggregate updates per second — the many-core analogue of the paper's
injection-rate study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.multicore import MulticoreResult, run_multicore_put_bw
from repro.node.config import SystemConfig

__all__ = ["RandomAccessResult", "run_random_access"]


@dataclass
class RandomAccessResult:
    """Outcome of one random-access run."""

    n_cores: int
    update_bytes: int
    updates: int
    #: Aggregate CPU-side update rate.
    gups: float
    #: Aggregate NIC-observed update rate (saturates at the I/O wall).
    nic_gups: float
    #: PCIe credit stalls during the measured window.
    credit_stalls: int

    @property
    def updates_per_core_per_s(self) -> float:
        """Per-core update rate (the Eq. 1 pace when unthrottled)."""
        return self.gups * 1e9 / self.n_cores if self.n_cores else 0.0


def run_random_access(
    n_cores: int = 8,
    config: SystemConfig | None = None,
    updates_per_core: int = 300,
    update_bytes: int = 8,
) -> RandomAccessResult:
    """Run the kernel; remote target addresses are uniform-random, but
    since the simulated NIC's write cost is address-independent the
    timing-relevant behaviour is exactly the multicore injection study,
    which this wraps."""
    result: MulticoreResult = run_multicore_put_bw(
        n_cores,
        config=config or SystemConfig.paper_testbed(),
        n_messages_per_core=updates_per_core,
        payload_bytes=update_bytes,
    )
    return RandomAccessResult(
        n_cores=n_cores,
        update_bytes=update_bytes,
        updates=n_cores * updates_per_core,
        gups=result.aggregate_rate_per_s / 1e9,
        nic_gups=result.nic_rate_per_s / 1e9,
        credit_stalls=result.credit_stalls,
    )
