"""Deprecated shim: the GUPS kernel moved to ``repro.traffic``.

:func:`repro.traffic.workloads.run_random_access` is the same kernel,
now registered in the campaign workload registry as ``randomaccess``.
This module keeps the old entry point and result type alive with a
:class:`DeprecationWarning`, exactly like ``repro.apps.allreduce``.
"""

from __future__ import annotations

import warnings

from repro.node.config import SystemConfig
from repro.traffic.workloads import RandomAccessResult, run_random_access as _run

__all__ = ["RandomAccessResult", "run_random_access"]


def run_random_access(
    n_cores: int = 8,
    config: SystemConfig | None = None,
    updates_per_core: int = 300,
    update_bytes: int = 8,
) -> RandomAccessResult:
    """Run the random-access kernel.

    .. deprecated::
        Use :func:`repro.traffic.workloads.run_random_access` (or the
        ``randomaccess`` workload via :class:`repro.api.Experiment`).
    """
    warnings.warn(
        "repro.apps.run_random_access is deprecated; use "
        "repro.traffic.run_random_access (or the 'randomaccess' workload "
        "via repro.api.Experiment) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run(
        n_cores,
        config=config,
        updates_per_core=updates_per_core,
        update_bytes=update_bytes,
    )
