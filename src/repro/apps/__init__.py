"""Application kernels over the simulated stack.

The paper motivates its small-message focus with strong-scaled,
fine-grained applications (§1) and sanity-checks its what-if analysis
against "an MPI stencil kernel through a distributed system simulator"
(§7).  This package provides those workloads as reusable library code:

* :func:`run_halo_exchange` — a two-rank 1-D stencil communication
  phase over the full MPI stack;
* :func:`run_random_access` — a GUPS-style fine-grained RDMA update
  kernel, one independent stream per core.
"""

from repro.apps.allreduce import AllreduceResult, run_ring_allreduce
from repro.apps.randomaccess import RandomAccessResult, run_random_access
from repro.apps.stencil import StencilResult, run_halo_exchange

__all__ = [
    "AllreduceResult",
    "RandomAccessResult",
    "StencilResult",
    "run_halo_exchange",
    "run_random_access",
    "run_ring_allreduce",
]
