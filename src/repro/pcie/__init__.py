"""PCI Express subsystem model.

Implements the subset of PCIe the paper's methodology depends on
(§2, §4.3):

* Transaction Layer Packets — Memory Write (MWr), Memory Read (MRd) and
  Completion-with-Data (CplD);
* Data Link Layer Packets — ACK/NACK and UpdateFC, including the
  credit-based flow control that lets the Root Complex pipeline multiple
  outstanding transactions;
* a Root Complex that executes CPU MMIO writes as downstream MWr TLPs,
  DMA-writes upstream MWr payloads into host memory (the paper's
  ``RC-to-MEM(xB)``), and answers MRd with CplD;
* a dual-simplex link with a configurable one-way latency (137.49 ns for
  a 64-byte TLP in the paper's testbed);
* a passive protocol analyzer tap positioned "just before the NIC",
  recording timestamped traffic in both directions — the simulated
  equivalent of the Teledyne Lecroy analyzer.
"""

from repro.pcie.analyzer import PcieAnalyzer, TraceRecord
from repro.pcie.config import PcieConfig
from repro.pcie.link import CreditPool, Direction, PcieLink
from repro.pcie.packets import Dllp, DllpType, Tlp, TlpType
from repro.pcie.root_complex import HostMemory, RootComplex

__all__ = [
    "CreditPool",
    "Direction",
    "Dllp",
    "DllpType",
    "HostMemory",
    "PcieAnalyzer",
    "PcieConfig",
    "PcieLink",
    "RootComplex",
    "Tlp",
    "TlpType",
    "TraceRecord",
]
