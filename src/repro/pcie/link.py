"""Dual-simplex PCIe link with ACK DLLPs and credit-based flow control.

The link connects two ports — the Root Complex (upstream side) and an
endpoint such as the NIC (downstream side).  Each transmitted TLP:

1. waits for transmit credits of its class (posted / non-posted /
   completion), queueing FIFO when exhausted;
2. traverses the link in ``config.tlp_latency(payload)`` nanoseconds;
3. is handed to the receiving side's handler;
4. is acknowledged with an ACK DLLP after ``ack_processing_ns``; and
5. eventually has its credits returned to the transmitter via an
   UpdateFC DLLP (batched on a lazy timer).

A passive tap (the simulated PCIe analyzer) can observe every packet at
the *endpoint end* of the link — "just before the NIC", like the
paper's Lecroy analyzer: downstream packets are timestamped at arrival,
upstream packets at departure.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.pcie.config import PcieConfig
from repro.pcie.packets import Dllp, DllpType, Tlp, TlpType
from repro.sim.engine import Environment, Event, SimulationError
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import FaultInjector

__all__ = ["CreditPool", "Direction", "PcieLink"]

#: Size of one PCIe data credit unit, in bytes.
CREDIT_UNIT_BYTES = 16


class Direction(enum.Enum):
    """Transfer direction relative to the Root Complex."""

    #: RC → endpoint (doorbells, PIO posts, CplD for NIC reads).
    DOWNSTREAM = "downstream"
    #: Endpoint → RC (DMA reads/writes, completions to memory).
    UPSTREAM = "upstream"

    @property
    def opposite(self) -> "Direction":
        """The reverse direction."""
        return (
            Direction.UPSTREAM
            if self is Direction.DOWNSTREAM
            else Direction.DOWNSTREAM
        )


def data_credits_for(payload_bytes: int) -> int:
    """Number of 16-byte data credit units a payload consumes."""
    return math.ceil(payload_bytes / CREDIT_UNIT_BYTES)


class CreditPool:
    """Transmit credits for one TLP class in one direction."""

    def __init__(self, headers: int, data: int, name: str = "credits") -> None:
        if headers <= 0 or data <= 0:
            raise SimulationError("credit pools must start positive")
        self.max_headers = headers
        self.max_data = data
        self.headers = headers
        self.data = data
        self.name = name
        #: Number of sends that had to wait for credits (stat for the
        #: paper's observation that one core never exhausts credits).
        self.stalls = 0

    def can_consume(self, tlp: Tlp) -> bool:
        """Whether enough header and data credits remain for ``tlp``."""
        return self.headers >= 1 and self.data >= data_credits_for(tlp.payload_bytes)

    def consume(self, tlp: Tlp) -> None:
        """Take the credits ``tlp`` needs (caller checked availability)."""
        if not self.can_consume(tlp):
            raise SimulationError(f"{self.name}: consuming unavailable credits")
        self.headers -= 1
        self.data -= data_credits_for(tlp.payload_bytes)

    def replenish(self, headers: int, data: int) -> None:
        """Return credits (UpdateFC), capped at the advertised maxima."""
        self.headers = min(self.max_headers, self.headers + headers)
        self.data = min(self.max_data, self.data + data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CreditPool {self.name!r} hdr={self.headers} data={self.data}>"


def _credit_class(tlp: Tlp) -> str:
    if tlp.kind is TlpType.MWR:
        return "posted"
    if tlp.kind is TlpType.MRD:
        return "nonposted"
    return "completion"


def _traced_msg_id(tlp: Tlp) -> int | None:
    """The message id a TLP is working for (CQE writes carry a Cqe)."""
    carried = tlp.message
    if carried is None:
        return None
    msg_id = getattr(carried, "msg_id", None)
    if msg_id is not None:
        return msg_id
    inner = getattr(carried, "message", None)
    return getattr(inner, "msg_id", None)


class _Port:
    """One transmit side of the link (credits, seq numbers, queue)."""

    def __init__(self, link: "PcieLink", direction: Direction) -> None:
        config = link.config
        self.link = link
        self.direction = direction
        self.pools = {
            "posted": CreditPool(
                config.posted_header_credits,
                config.posted_data_credits,
                name=f"{direction.value}.posted",
            ),
            "nonposted": CreditPool(
                config.nonposted_header_credits,
                config.nonposted_data_credits,
                name=f"{direction.value}.nonposted",
            ),
            "completion": CreditPool(
                config.completion_header_credits,
                config.completion_data_credits,
                name=f"{direction.value}.completion",
            ),
        }
        self.backlog: deque[tuple[Tlp, Event]] = deque()
        self.next_seq = 0
        #: Data Link layer replay buffer: sent-but-unacknowledged TLPs,
        #: keyed by sequence number (§2's "successful execution of all
        #: transactions using ACK/NACK").
        self.replay: dict[int, Tlp] = {}
        #: Receiver-side Data Link state for this direction.
        self.rx_expected_seq = 0
        self.rx_nack_outstanding = False
        #: Diagnostics.
        self.corrupted = 0
        self.retransmissions = 0
        self.rx_dropped = 0
        self.dllps_dropped = 0
        #: REPLAY_TIMER watchdog state (fault-injection runs only).
        self.watchdog_running = False
        #: ACKNAK latency timer state (fault-plan runs only).
        self.acknak_running = False
        #: Transmit serialiser, created only for finite-bandwidth links
        #: so the paper's latency-only configuration is untouched.
        self.serialiser = (
            None
            if math.isinf(config.bandwidth_bytes_per_ns)
            else Resource(link.env, capacity=1, name=f"pcie.{direction.value}.tx")
        )
        #: Credits freed on the *receive* side of this direction, waiting
        #: to be returned to the transmitter via UpdateFC.
        self.pending_return: dict[str, list[int]] = {
            "posted": [0, 0],
            "nonposted": [0, 0],
            "completion": [0, 0],
        }
        self.updatefc_scheduled = False


class PcieLink:
    """The PCIe link between a Root Complex and one endpoint.

    The Data Link layer is modelled per §2: every TLP is acknowledged
    with an ACK DLLP; a corrupted TLP (LCRC failure, probability
    ``config.tlp_corruption_prob`` or an injected ``pcie.tlp`` fault) is
    dropped and NACKed, triggering a go-back-N replay from the
    transmitter's replay buffer.  DLLPs can themselves be lost (the
    ``pcie.dllp`` fault site); the transmitter then recovers via the
    ACKNAK latency timer (``config.acknak_latency_ns``), which replays
    the buffer when no acknowledgement makes progress — so the
    REPLAY_TIMER watchdog is no longer the sole recovery path.  Both
    timers are armed only on fault-injection runs; healthy links hold
    no live calendar entries.
    """

    def __init__(
        self,
        env: Environment,
        config: PcieConfig,
        name: str = "pcie",
        rng=None,
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        #: Random stream for fault injection; only consulted when
        #: ``config.tlp_corruption_prob > 0`` so healthy-link runs stay
        #: bit-identical with or without a generator.
        self.rng = rng
        self._tlp_faults = faults.site("pcie.tlp") if faults is not None else None
        self._dllp_faults = faults.site("pcie.dllp") if faults is not None else None
        self._fault_sites_active = (
            self._tlp_faults is not None or self._dllp_faults is not None
        )
        self._ports = {
            Direction.DOWNSTREAM: _Port(self, Direction.DOWNSTREAM),
            Direction.UPSTREAM: _Port(self, Direction.UPSTREAM),
        }
        self._receivers: dict[Direction, Callable[[Tlp], None] | None] = {
            Direction.DOWNSTREAM: None,
            Direction.UPSTREAM: None,
        }
        self._taps: list[Callable[[float, Direction, Any], None]] = []
        self.tlps_delivered = {Direction.DOWNSTREAM: 0, Direction.UPSTREAM: 0}
        #: DLLPs carry no payload; their wire time is a config constant
        #: computed once instead of per acknowledgement.
        self._dllp_wire_ns = config.tlp_latency(0)

    # -- wiring ---------------------------------------------------------------
    def set_receiver(self, direction: Direction, handler: Callable[[Tlp], None]) -> None:
        """Install the handler invoked when a TLP arrives at ``direction``'s end."""
        self._receivers[direction] = handler

    def add_tap(self, tap: Callable[[float, Direction, Any], None]) -> None:
        """Attach a passive observer at the endpoint end of the link.

        The tap is called as ``tap(timestamp, direction, packet)`` for
        every TLP and DLLP: downstream packets at their arrival time at
        the endpoint, upstream packets at their departure time from it.
        """
        self._taps.append(tap)

    def _tap(self, timestamp: float, direction: Direction, packet: Any) -> None:
        for tap in self._taps:
            tap(timestamp, direction, packet)

    # -- credit stats -----------------------------------------------------------
    def credit_stalls(self, direction: Direction) -> int:
        """Total sends in ``direction`` that had to wait for credits."""
        return sum(pool.stalls for pool in self._ports[direction].pools.values())

    def pool(self, direction: Direction, credit_class: str) -> CreditPool:
        """Access a transmit credit pool (for tests and ablations)."""
        return self._ports[direction].pools[credit_class]

    # -- transmission ----------------------------------------------------------
    def send(self, direction: Direction, tlp: Tlp) -> Event:
        """Transmit ``tlp`` in ``direction``.

        Returns an event that fires when the link accepts the TLP
        (credits granted and serialization started).  Delivery, ACK and
        credit return proceed asynchronously.
        """
        port = self._ports[direction]
        accepted = Event(self.env)
        credit_class = _credit_class(tlp)
        pool = port.pools[credit_class]
        if port.backlog or not pool.can_consume(tlp):
            pool.stalls += 1
            port.backlog.append((tlp, accepted))
        else:
            self._launch(port, tlp, accepted)
        return accepted

    def _launch(self, port: _Port, tlp: Tlp, accepted: Event) -> None:
        pool = port.pools[_credit_class(tlp)]
        pool.consume(tlp)
        tlp.seq = port.next_seq
        port.next_seq += 1
        port.replay[tlp.seq] = tlp
        accepted.succeed(self.env.now)
        self._put_on_wire(port, tlp)
        if self.config.tlp_corruption_prob > 0 and not port.watchdog_running:
            port.watchdog_running = True
            self._watchdog_arm(port, None)
        if self._fault_sites_active and not port.acknak_running:
            port.acknak_running = True
            self._acknak_arm(port, None)

    def _put_on_wire(self, port: _Port, tlp: Tlp) -> None:
        """Start one traversal (first transmission or replay)."""
        if port.direction is Direction.UPSTREAM:
            # Tap sits just before the endpoint: upstream packets are
            # observed as they leave the endpoint.
            self._tap(self.env.now, port.direction, tlp)
        tracer = self.env.tracer
        tspan = None
        if tracer.enabled:
            tspan = tracer.begin(
                "pcie", "tlp",
                track=f"{self.name}.{port.direction.value}",
                msg=_traced_msg_id(tlp),
                purpose=tlp.purpose,
                kind=tlp.kind.value,
                bytes=tlp.payload_bytes,
            )
        if port.serialiser is not None:
            # Finite bandwidth: hold the tx serialiser for the
            # serialisation time, then propagate.
            def granted(_event: Event) -> None:
                serialize = tlp.payload_bytes / self.config.bandwidth_bytes_per_ns
                if serialize > 0:
                    self.env.defer(self._serialized, serialize, args=(port, tlp, tspan))
                else:
                    self._serialized(port, tlp, tspan)

            port.serialiser.request().add_callback(granted)
        else:
            self.env.defer(
                self._deliver,
                self.config.tlp_latency(tlp.payload_bytes),
                args=(port, tlp, tspan),
            )

    def _serialized(self, port: _Port, tlp: Tlp, tspan: Any) -> None:
        assert port.serialiser is not None
        port.serialiser.release()
        self.env.defer(
            self._deliver, self.config.base_latency_ns, args=(port, tlp, tspan)
        )

    def _corrupt(self) -> bool:
        prob = self.config.tlp_corruption_prob
        if prob <= 0 or self.rng is None:
            return False
        return bool(self.rng.random() < prob)

    def _deliver(self, port: _Port, tlp: Tlp, tspan: Any) -> None:
        """The TLP reached the far end of the link: receive it."""
        if tspan is not None:
            self.env.tracer.end(tspan)
        direction = port.direction
        if self._tlp_faults is not None:
            action = self._tlp_faults.decide(
                direction=direction.value,
                seq=tlp.seq,
                purpose=tlp.purpose,
                msg=_traced_msg_id(tlp),
            )
            if action == "corrupt":
                # Injected LCRC failure: same recovery as the legacy
                # corruption knob — discard and NACK once per window.
                port.corrupted += 1
                if not port.rx_nack_outstanding:
                    port.rx_nack_outstanding = True
                    self._schedule_nack(port, port.rx_expected_seq - 1)
                return
            if action == "drop":
                # Silently lost: no NACK is possible; the gap NACK on
                # the next arrival or the ACKNAK timer recovers.
                port.rx_dropped += 1
                return
        if self._corrupt():
            # LCRC failure: discard and NACK (once per error window).
            port.corrupted += 1
            if not port.rx_nack_outstanding:
                port.rx_nack_outstanding = True
                self._schedule_nack(port, port.rx_expected_seq - 1)
            return
        if tlp.seq is not None and tlp.seq != port.rx_expected_seq:
            if tlp.seq < port.rx_expected_seq:
                # Duplicate from an over-eager replay: drop, re-ACK so the
                # transmitter clears its buffer.
                self._schedule_ack(direction, tlp)
            elif not port.rx_nack_outstanding:
                # Gap: a predecessor was lost; NACK the last good one.
                port.rx_nack_outstanding = True
                self._schedule_nack(port, port.rx_expected_seq - 1)
            return
        if tlp.seq is not None:
            port.rx_expected_seq = tlp.seq + 1
            port.rx_nack_outstanding = False
        if direction is Direction.DOWNSTREAM:
            self._tap(self.env.now, direction, tlp)
        self.tlps_delivered[direction] += 1
        receiver = self._receivers[direction]
        if receiver is not None:
            receiver(tlp)
        # Link-layer ACK back to the transmitter.
        self._schedule_ack(direction, tlp)
        # Queue the freed credits for return via UpdateFC.
        credit_class = _credit_class(tlp)
        pending = port.pending_return[credit_class]
        pending[0] += 1
        pending[1] += data_credits_for(tlp.payload_bytes)
        if not port.updatefc_scheduled:
            port.updatefc_scheduled = True
            self.env.defer(
                self._return_credits,
                self.config.update_fc_interval_ns,
                args=(port,),
            )

    def _schedule_ack(self, direction: Direction, tlp: Tlp) -> None:
        """ACK DLLP back to the transmitter, on the callback tier."""
        if self._dllp_faults is not None:
            action = self._dllp_faults.decide(
                kind="ack", seq=tlp.seq, direction=direction.value
            )
            if action is not None:
                # DLLPs carry no payload: any action means loss.  The
                # transmitter's ACKNAK timer replays when no progress.
                self._ports[direction].dllps_dropped += 1
                return
        ack = Dllp(kind=DllpType.ACK, acked_seq=tlp.seq)
        wire = self._dllp_wire_ns
        if direction is Direction.UPSTREAM:
            # ACK for an upstream TLP travels downstream; observed at the
            # endpoint on arrival.  Compiled fast path: the intermediate
            # chain hop is a pure delay, so fold ack processing + wire
            # into one entry (the arrival tap still fires at the exact
            # arrival time inside ``_ack_arrived``).
            if not self.env.tracer.enabled and self._dllp_faults is None:
                when = self.env.now + self.config.ack_processing_ns
                when = when + wire
                self.env.credit_fast_forwarded(1)
                self.env.defer_at(
                    self._ack_arrived,
                    when,
                    args=(direction, tlp, ack, Direction.DOWNSTREAM),
                )
                return
            self.env.chain(
                (self.config.ack_processing_ns, lambda: None),
                (
                    wire,
                    lambda: self._ack_arrived(direction, tlp, ack, Direction.DOWNSTREAM),
                ),
            )
        else:
            # ACK for a downstream TLP leaves the endpoint immediately.
            if not self.env.tracer.enabled and self._dllp_faults is None:
                when = self.env.now + self.config.ack_processing_ns
                if not self._taps:
                    # No analyzer: one entry at the arrival time.
                    when = when + wire
                    self.env.credit_fast_forwarded(1)
                    self.env.defer_at(
                        self._ack_arrived, when, args=(direction, tlp, ack, None)
                    )
                    return
                if self._tlp_faults is None and self.config.tlp_corruption_prob <= 0:
                    # Analyzer attached: the departure tap must fire at
                    # its own (earlier) timestamp to keep the analyzer's
                    # append-ordered log chronological — but with no
                    # corruption or fault recovery armed, nothing ever
                    # reads the replay buffer, so *when* it is cleared is
                    # unobservable.  Settle at departure; elide the wire
                    # leg.
                    self.env.credit_fast_forwarded(1)
                    self.env.defer_at(
                        self._ack_departed, when, args=(direction, tlp, ack)
                    )
                    return
            self.env.chain(
                (
                    self.config.ack_processing_ns,
                    lambda: self._tap(self.env.now, Direction.UPSTREAM, ack),
                ),
                (wire, lambda: self._ack_arrived(direction, tlp, ack, None)),
            )

    def _ack_departed(self, direction: Direction, tlp: Tlp, ack: Dllp) -> None:
        """Collapsed downstream-ACK terminal: tap at departure, settle.

        Used only when nothing can observe the replay buffer (no fault
        sites, zero corruption probability), so clearing it at departure
        instead of arrival changes no observable state.
        """
        self._tap(self.env.now, Direction.UPSTREAM, ack)
        self._on_ack(direction, tlp.seq)

    def _ack_arrived(
        self,
        direction: Direction,
        tlp: Tlp,
        ack: Dllp,
        tap_direction: Direction | None,
    ) -> None:
        if tap_direction is not None:
            self._tap(self.env.now, tap_direction, ack)
        if self.env.tracer.enabled:
            self.env.tracer.instant(
                "pcie", "ack_dllp",
                track=f"{self.name}.{direction.opposite.value}",
                seq=tlp.seq, acked=direction.value,
            )
        self._on_ack(direction, tlp.seq)

    def _on_ack(self, direction: Direction, acked_seq: int | None) -> None:
        """Cumulative acknowledgement: clear the replay buffer ≤ seq."""
        if acked_seq is None:
            return
        port = self._ports[direction]
        for seq in [s for s in port.replay if s <= acked_seq]:
            del port.replay[seq]

    def _schedule_nack(self, port: _Port, last_good_seq: int) -> None:
        """NACK DLLP: "resend everything after last_good_seq"."""
        if self._dllp_faults is not None:
            action = self._dllp_faults.decide(
                kind="nack", seq=last_good_seq, direction=port.direction.value
            )
            if action is not None:
                port.dllps_dropped += 1
                return
        nack = Dllp(kind=DllpType.NACK, acked_seq=last_good_seq)
        wire = self.config.tlp_latency(0)
        if port.direction is Direction.UPSTREAM:
            self.env.chain(
                (wire, lambda: self._tap(self.env.now, Direction.DOWNSTREAM, nack)),
                (
                    self.config.replay_delay_ns,
                    lambda: self._replay_after_nack(port, last_good_seq),
                ),
            )
        else:
            self.env.chain(
                (0.0, lambda: self._tap(self.env.now, Direction.UPSTREAM, nack)),
                (wire, lambda: None),
                (
                    self.config.replay_delay_ns,
                    lambda: self._replay_after_nack(port, last_good_seq),
                ),
            )

    def _replay_after_nack(self, port: _Port, last_good_seq: int) -> None:
        # Go-back-N: clear up to the last good seq, replay the rest in
        # sequence order.
        self._on_ack(port.direction, last_good_seq)
        for seq in sorted(port.replay):
            port.retransmissions += 1
            self._put_on_wire(port, port.replay[seq])

    def _watchdog_arm(self, port: _Port, last_floor: int | None) -> None:
        """The REPLAY_TIMER: replay unprompted when recovery stalls.

        Armed only on fault-injection configurations; stops re-arming
        once the replay buffer drains so healthy quiescent links hold no
        live calendar entries.
        """
        if not port.replay:
            port.watchdog_running = False
            return
        floor = min(port.replay)
        self.env.defer(
            self._watchdog_fire,
            self.config.replay_timeout_ns,
            args=(port, floor, last_floor),
        )

    def _watchdog_fire(
        self, port: _Port, floor: int, last_floor: int | None
    ) -> None:
        if not port.replay:
            port.watchdog_running = False
            return
        if min(port.replay) == floor == last_floor:
            # No progress across a full timeout window: replay.
            for seq in sorted(port.replay):
                port.retransmissions += 1
                self._put_on_wire(port, port.replay[seq])
        self._watchdog_arm(port, floor)

    def _acknak_arm(self, port: _Port, last_floor: int | None) -> None:
        """The ACKNAK latency timer: recover from lost ACK/NACK DLLPs.

        Mirrors the REPLAY_TIMER watchdog but at the (shorter) ACKNAK
        latency: when the oldest unacknowledged sequence number makes no
        progress across a full window — an ACK or NACK must have been
        lost — the transmitter replays its buffer unprompted.  Armed
        only while a fault plan targets the PCIe link; stops re-arming
        once the replay buffer drains.
        """
        if not port.replay:
            port.acknak_running = False
            return
        floor = min(port.replay)
        self.env.defer(
            self._acknak_fire,
            self.config.acknak_latency_ns,
            args=(port, floor, last_floor),
        )

    def _acknak_fire(
        self, port: _Port, floor: int, last_floor: int | None
    ) -> None:
        if not port.replay:
            port.acknak_running = False
            return
        if min(port.replay) == floor == last_floor:
            if self.env.tracer.enabled:
                self.env.tracer.instant(
                    "pcie", "acknak_replay",
                    track=f"{self.name}.{port.direction.value}",
                    floor=floor, pending=len(port.replay),
                )
            for seq in sorted(port.replay):
                port.retransmissions += 1
                self._put_on_wire(port, port.replay[seq])
        self._acknak_arm(port, floor)

    def corruption_stats(self, direction: Direction) -> tuple[int, int]:
        """(corrupted TLPs, retransmissions) for ``direction``."""
        port = self._ports[direction]
        return port.corrupted, port.retransmissions

    def _return_credits(self, port: _Port) -> None:
        """The lazy UpdateFC timer fired: return freed credits per class."""
        port.updatefc_scheduled = False
        self._return_next_class(port, list(port.pending_return))

    def _return_next_class(self, port: _Port, classes: list[str]) -> None:
        """Send one class's UpdateFC; continue with the rest after it lands.

        Pending counts are read at each class's send time (not snapshot
        at timer expiry), matching the original sweep that interleaved
        per-class wire delays with live accumulation.
        """
        while classes:
            credit_class = classes.pop(0)
            pending = port.pending_return[credit_class]
            headers, data = pending
            if headers == 0 and data == 0:
                continue
            pending[0] = 0
            pending[1] = 0
            update = Dllp(
                kind=DllpType.UPDATE_FC, header_credits=headers, data_credits=data
            )
            # The UpdateFC travels back to the transmitter of this
            # direction; observe it at the endpoint end.
            wire = self.config.tlp_latency(0)
            if port.direction is Direction.DOWNSTREAM:
                self._tap(self.env.now, Direction.UPSTREAM, update)
                self.env.defer(
                    self._credits_returned,
                    wire,
                    args=(port, classes, credit_class, headers, data, None),
                )
            else:
                self.env.defer(
                    self._credits_returned,
                    wire,
                    args=(port, classes, credit_class, headers, data, update),
                )
            return
        self._drain_backlog(port)

    def _credits_returned(
        self,
        port: _Port,
        classes: list[str],
        credit_class: str,
        headers: int,
        data: int,
        update: Dllp | None,
    ) -> None:
        if update is not None:
            self._tap(self.env.now, Direction.DOWNSTREAM, update)
        port.pools[credit_class].replenish(headers, data)
        self._return_next_class(port, classes)

    def _drain_backlog(self, port: _Port) -> None:
        while port.backlog:
            tlp, accepted = port.backlog[0]
            pool = port.pools[_credit_class(tlp)]
            if not pool.can_consume(tlp):
                break
            port.backlog.popleft()
            self._launch(port, tlp, accepted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PcieLink {self.name!r} lat={self.config.base_latency_ns}ns>"
