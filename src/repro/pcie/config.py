"""PCIe subsystem configuration.

Defaults reproduce the paper's measured testbed: a one-way latency of
137.49 ns for a 64-byte TLP between Root Complex and NIC, and an
RC-to-memory write of 240.96 ns for an 8-byte payload.

The paper never reports ``RC-to-MEM(64B)`` directly (its completion-
generation model uses it, but only the 8-byte value is measured), so we
model ``RC-to-MEM(xB) = rc_to_mem_base + rc_to_mem_per_byte * x`` with
defaults anchored at the 8-byte measurement and a small per-byte slope —
a documented substitution (see DESIGN.md §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PcieConfig"]


@dataclass(frozen=True)
class PcieConfig:
    """Parameters of the PCIe fabric between the processor and the NIC.

    Attributes
    ----------
    base_latency_ns:
        One-way traversal time of a TLP/DLLP between RC and endpoint.
        The paper's measured value covers 64-byte TLPs; DLLPs observe the
        same latency (propagation-dominated link).
    bandwidth_bytes_per_ns:
        Serialisation bandwidth; payload adds ``bytes / bandwidth`` to
        the one-way time.  ``inf`` (default) disables the size term so
        the 64-byte default exactly matches the paper's constant.
        PCIe Gen3 x16 would be ~15.75 B/ns.
    rc_to_mem_base_ns / rc_to_mem_per_byte_ns:
        Linear model of the Root Complex writing an x-byte DMA payload
        into host memory; defaults give 240.96 ns at 8 bytes.
    ack_processing_ns:
        Link-layer receive-to-ACK turnaround.
    rc_mmio_processing_ns:
        Time the RC spends turning a CPU MMIO write into an MWr TLP —
        "hardware logic ... a few cycles", ignored by the paper's model.
    posted_header_credits / posted_data_credits:
        Transmitter credit pools for posted requests.  Data credits are
        in 16-byte units per the PCIe spec.  Defaults are ample: the
        paper observes a single core never exhausts them.
    nonposted_header_credits:
        Credits for MRd requests.
    completion_header_credits / completion_data_credits:
        Credits for CplD responses.
    update_fc_interval_ns:
        How often a receiver returns accumulated credits via UpdateFC.
    """

    base_latency_ns: float = 137.49
    bandwidth_bytes_per_ns: float = math.inf
    rc_to_mem_base_ns: float = 238.80
    rc_to_mem_per_byte_ns: float = 0.27
    ack_processing_ns: float = 0.0
    rc_mmio_processing_ns: float = 0.0
    #: Maximum TLP data payload (PCIe Max_Payload_Size).  DMA transfers
    #: larger than this are segmented into multiple TLPs by the NIC.
    max_tlp_payload_bytes: int = 256
    #: Host-memory read latency for DMA reads (MRd → CplD turnaround at
    #: the RC).  Not measured by the paper (the PIO+inline path avoids
    #: DMA reads entirely); used by the doorbell+DMA extension path.
    mem_read_ns: float = 90.0
    #: Probability that a TLP arrives corrupted (LCRC failure) and is
    #: NACKed — the Data Link layer's "successful execution of all
    #: transactions" machinery (§2).  0 on a healthy link; fault
    #: injection raises it.  Roughly BER × TLP bits.
    tlp_corruption_prob: float = 0.0
    #: Transmitter turnaround from receiving a NACK to starting the
    #: go-back-N replay.
    replay_delay_ns: float = 50.0
    #: The REPLAY_TIMER: if a transmitted TLP is neither ACKed nor
    #: NACKed within this window (e.g. the NACK-suppressed retransmission
    #: was itself corrupted), the transmitter replays unprompted.
    replay_timeout_ns: float = 1500.0
    #: ACKNAK latency timer: how long the transmitter waits for *any*
    #: DLLP covering an outstanding TLP before replaying, recovering
    #: from lost ACK/NACK DLLPs.  Armed only while a fault plan targets
    #: the PCIe link — healthy links hold no live timer.  Should sit
    #: below ``replay_timeout_ns`` so DLLP loss recovers faster than the
    #: full watchdog window.
    acknak_latency_ns: float = 900.0
    posted_header_credits: int = 64
    posted_data_credits: int = 1024
    nonposted_header_credits: int = 32
    nonposted_data_credits: int = 256
    completion_header_credits: int = 64
    completion_data_credits: int = 1024
    update_fc_interval_ns: float = 200.0

    def __post_init__(self) -> None:
        if self.base_latency_ns < 0:
            raise ValueError("base_latency_ns must be >= 0")
        if self.bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth_bytes_per_ns must be > 0")
        if self.rc_to_mem_base_ns < 0 or self.rc_to_mem_per_byte_ns < 0:
            raise ValueError("RC-to-MEM parameters must be >= 0")
        if not 0 <= self.tlp_corruption_prob < 1:
            raise ValueError("tlp_corruption_prob must be in [0, 1)")
        if self.replay_delay_ns < 0:
            raise ValueError("replay_delay_ns must be >= 0")
        if self.replay_timeout_ns <= 0:
            raise ValueError("replay_timeout_ns must be positive")
        if self.acknak_latency_ns <= 0:
            raise ValueError("acknak_latency_ns must be positive")
        if self.max_tlp_payload_bytes <= 0:
            raise ValueError("max_tlp_payload_bytes must be positive")
        for name in (
            "posted_header_credits",
            "posted_data_credits",
            "nonposted_header_credits",
            "nonposted_data_credits",
            "completion_header_credits",
            "completion_data_credits",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def tlp_latency(self, payload_bytes: int = 64) -> float:
        """One-way latency of a TLP carrying ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
        if math.isinf(self.bandwidth_bytes_per_ns):
            return self.base_latency_ns
        return self.base_latency_ns + payload_bytes / self.bandwidth_bytes_per_ns

    def rc_to_mem(self, nbytes: int) -> float:
        """The paper's ``RC-to-MEM(xB)``: RC writing x bytes to memory."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return self.rc_to_mem_base_ns + self.rc_to_mem_per_byte_ns * nbytes
