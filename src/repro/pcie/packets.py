"""PCIe packet types: TLPs and DLLPs.

Only the fields the measurement methodology needs are modelled: packet
kind, payload size, a free-form ``purpose`` label (doorbell, pio_post,
cqe_write, ...) used by trace filters, and an optional reference to the
higher-level message the packet carries.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Dllp", "DllpType", "Tlp", "TlpType"]

_tlp_ids = itertools.count(1)
_dllp_ids = itertools.count(1)


class TlpType(enum.Enum):
    """Transaction Layer Packet kinds used on the data path (§2)."""

    #: Posted Memory Write — doorbells, PIO posts, DMA writes.
    MWR = "MWr"
    #: Non-posted Memory Read — DMA reads of descriptors/payloads.
    MRD = "MRd"
    #: Completion with Data — the response to an MRd.
    CPLD = "CplD"


class DllpType(enum.Enum):
    """Data Link Layer Packet kinds."""

    ACK = "Ack"
    NACK = "Nak"
    #: Update Flow Control — replenishes the transmitter's credits.
    UPDATE_FC = "UpdateFC"


@dataclass
class Tlp:
    """One Transaction Layer Packet.

    Attributes
    ----------
    kind:
        MWr / MRd / CplD.
    payload_bytes:
        Data payload carried (0 for MRd requests).
    read_bytes:
        For MRd: how many bytes the initiator wants back.
    purpose:
        Data-path role, e.g. ``"pio_post"``, ``"doorbell"``,
        ``"cqe_write"``, ``"payload_write"``, ``"md_fetch"``.
    message:
        The higher-level message object this packet belongs to, if any.
    tag:
        Transaction tag linking an MRd to its CplD.
    seq:
        Link-layer sequence number, set by the transmitting link port
        and echoed in the ACK DLLP.
    """

    kind: TlpType
    payload_bytes: int = 0
    read_bytes: int = 0
    purpose: str = ""
    message: Any = None
    tag: int | None = None
    seq: int | None = None
    #: Where a DMA-written payload lands: a Store-like (``try_put``) or a
    #: ``callable(message, timestamp)`` invoked once host memory is
    #: updated (after the RC-to-MEM delay).
    deliver_to: Any = None
    tlp_id: int = field(default_factory=lambda: next(_tlp_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")
        if self.read_bytes < 0:
            raise ValueError(f"read_bytes must be >= 0, got {self.read_bytes}")
        if self.kind is TlpType.MRD and self.payload_bytes:
            raise ValueError("an MRd request carries no data payload")

    @property
    def is_posted(self) -> bool:
        """Posted transactions (MWr) consume no completion credits."""
        return self.kind is TlpType.MWR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" {self.purpose}" if self.purpose else ""
        return f"<TLP#{self.tlp_id} {self.kind.value} {self.payload_bytes}B{extra}>"


@dataclass
class Dllp:
    """One Data Link Layer Packet."""

    kind: DllpType
    #: Sequence number being acknowledged (ACK/NACK).
    acked_seq: int | None = None
    #: Credits returned (UpdateFC), in header/data units.
    header_credits: int = 0
    data_credits: int = 0
    dllp_id: int = field(default_factory=lambda: next(_dllp_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is DllpType.UPDATE_FC:
            return (
                f"<DLLP#{self.dllp_id} UpdateFC hdr={self.header_credits}"
                f" data={self.data_credits}>"
            )
        return f"<DLLP#{self.dllp_id} {self.kind.value} seq={self.acked_seq}>"
