"""The Root Complex: the conductor of the PCIe subsystem (§2).

The Root Complex (RC) connects the processor and memory to the PCIe
fabric.  On the paper's data path it does three things:

* turns CPU MMIO stores (doorbell rings, PIO copies) into downstream
  MWr TLPs — "considering that the RC is implemented with hardware
  logic, the time it takes to generate a transaction would be in the
  order of a few cycles" (§4.2), so this costs
  ``rc_mmio_processing_ns`` (0 by default);
* executes upstream MWr TLPs as DMA writes into host memory, taking
  ``RC-to-MEM(xB)`` before the payload becomes visible to a polling
  CPU — the dominant target-side I/O cost in the paper's breakdown;
* answers upstream MRd TLPs with CplD after the memory read latency
  (only exercised by the non-inline doorbell+DMA path).
"""

from __future__ import annotations

from typing import Any

from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction, PcieLink, _traced_msg_id
from repro.pcie.packets import Tlp, TlpType
from repro.sim.engine import Environment, Event
from repro.sim.resources import Store

__all__ = ["HostMemory", "RootComplex"]


class HostMemory:
    """Named mailboxes standing in for DMA-visible host memory.

    A mailbox is a FIFO :class:`~repro.sim.resources.Store`: the RC
    delivers completed DMA writes into it, and software polls it.  Real
    addresses are irrelevant to the timing study, so locations are
    simply names ("cq0", "recv_buffer", ...).
    """

    def __init__(self, env: Environment, name: str = "mem") -> None:
        self.env = env
        self.name = name
        self._mailboxes: dict[str, Store] = {}

    def mailbox(self, name: str) -> Store:
        """Return (creating if needed) the mailbox called ``name``."""
        box = self._mailboxes.get(name)
        if box is None:
            box = Store(self.env, name=f"{self.name}.{name}")
            self._mailboxes[name] = box
        return box

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<HostMemory {self.name!r} mailboxes={len(self._mailboxes)}>"


class RootComplex:
    """Root Complex model bridging CPU/memory and the PCIe link."""

    def __init__(
        self,
        env: Environment,
        link: PcieLink,
        config: PcieConfig,
        memory: HostMemory,
        name: str = "rc",
    ) -> None:
        self.env = env
        self.link = link
        self.config = config
        self.memory = memory
        self.name = name
        self.mmio_writes = 0
        self.dma_writes = 0
        self.dma_reads = 0
        #: Per-size memoisation of the RC-to-MEM latency curve: the
        #: config interpolates per call, but a run touches only a
        #: handful of distinct payload sizes.
        self._rc_to_mem_ns: dict[int, float] = {}
        link.set_receiver(Direction.UPSTREAM, self._on_upstream_tlp)

    # -- CPU-facing side -------------------------------------------------------
    def mmio_write(self, tlp: Tlp) -> Event:
        """Issue a CPU store to device memory as a downstream MWr.

        The CPU does not wait: posted writes drain from the store buffer
        asynchronously (the CPU-side cost — the PIO copy to Device-GRE
        memory — is paid on the :class:`~repro.cpu.core.CpuCore`).

        Returns the link-acceptance event (used by credit tests).
        """
        if tlp.kind is not TlpType.MWR:
            raise ValueError(f"MMIO writes must be MWr TLPs, got {tlp.kind}")
        self.mmio_writes += 1
        if self.config.rc_mmio_processing_ns > 0:
            accepted = Event(self.env)
            self.env.defer(
                self._forward_mmio,
                self.config.rc_mmio_processing_ns,
                args=(tlp, accepted),
            )
            return accepted
        return self.link.send(Direction.DOWNSTREAM, tlp)

    def _forward_mmio(self, tlp: Tlp, accepted: Event) -> None:
        inner = self.link.send(Direction.DOWNSTREAM, tlp)
        inner.add_callback(lambda event: accepted.succeed(event._value))

    # -- endpoint-facing side ----------------------------------------------------
    def _on_upstream_tlp(self, tlp: Tlp) -> None:
        if tlp.kind is TlpType.MWR:
            tracer = self.env.tracer
            tspan = None
            if tracer.enabled:
                tspan = tracer.begin(
                    "pcie", "rc_to_mem", track=self.name,
                    msg=_traced_msg_id(tlp), purpose=tlp.purpose,
                    bytes=tlp.payload_bytes,
                )
            size = tlp.payload_bytes
            delay = self._rc_to_mem_ns.get(size)
            if delay is None:
                delay = self.config.rc_to_mem(size)
                self._rc_to_mem_ns[size] = delay
            self.env.defer(self._dma_write_done, delay, args=(tlp, tspan))
        elif tlp.kind is TlpType.MRD:
            tracer = self.env.tracer
            tspan = None
            if tracer.enabled:
                tspan = tracer.begin(
                    "pcie", "mem_read", track=self.name,
                    msg=_traced_msg_id(tlp), purpose=tlp.purpose,
                    bytes=tlp.read_bytes,
                )
            self.env.defer(
                self._dma_read_done, self.config.mem_read_ns, args=(tlp, tspan)
            )
        # CplD upstream would answer an RC-initiated read; the modelled
        # data path never issues one.

    def _dma_write_done(self, tlp: Tlp, tspan: Any) -> None:
        """RC-to-MEM(xB) elapsed: the DMA write is visible."""
        if tspan is not None:
            self.env.tracer.end(tspan)
        self.dma_writes += 1
        self._deliver(tlp)

    def _deliver(self, tlp: Tlp) -> None:
        target = tlp.deliver_to
        if target is None:
            return
        if callable(target):
            target(tlp.message, self.env.now)
        elif hasattr(target, "try_put"):
            target.try_put(tlp.message)
        else:
            raise TypeError(
                f"deliver_to must be callable or Store-like, got {type(target).__name__}"
            )

    def _dma_read_done(self, tlp: Tlp, tspan: Any) -> None:
        """Answer an endpoint DMA read with a CplD after the memory read."""
        if tspan is not None:
            self.env.tracer.end(tspan)
        self.dma_reads += 1
        completion = Tlp(
            kind=TlpType.CPLD,
            payload_bytes=tlp.read_bytes,
            purpose=f"cpld:{tlp.purpose}",
            message=tlp.message,
            tag=tlp.tag,
            deliver_to=tlp.deliver_to,
        )
        self.link.send(Direction.DOWNSTREAM, completion)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RootComplex {self.name!r} mmio={self.mmio_writes}"
            f" dmaW={self.dma_writes} dmaR={self.dma_reads}>"
        )
