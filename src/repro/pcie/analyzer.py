"""The simulated PCIe protocol analyzer.

The paper places a Teledyne Lecroy analyzer "just before the NIC on
node 1" (§3, Figure 3): a passive instrument that timestamps every TLP
and DLLP without perturbing traffic.  :class:`PcieAnalyzer` is its
simulated twin — it subscribes to a :class:`~repro.pcie.link.PcieLink`
tap and accumulates :class:`TraceRecord` entries that the analysis
package post-processes exactly as the paper post-processes Lecroy
traces (filter by direction, pair MWr→ACK, delta consecutive arrivals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Dllp, Tlp

__all__ = ["PcieAnalyzer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped packet observation at the analyzer's tap point.

    ``timestamp_ns`` is the time the packet passed the tap: arrival at
    the NIC for downstream packets, departure from the NIC for upstream
    packets — matching the physical position of the instrument.
    """

    timestamp_ns: float
    direction: Direction
    packet: Any

    @property
    def is_tlp(self) -> bool:
        """True when the observed packet is a Transaction Layer Packet."""
        return isinstance(self.packet, Tlp)

    @property
    def is_dllp(self) -> bool:
        """True when the observed packet is a Data Link Layer Packet."""
        return isinstance(self.packet, Dllp)

    @property
    def payload_bytes(self) -> int:
        """Data bytes carried (0 for DLLPs and MRd requests)."""
        return self.packet.payload_bytes if isinstance(self.packet, Tlp) else 0

    @property
    def purpose(self) -> str:
        """The data-path role label of a TLP ('' for DLLPs)."""
        return self.packet.purpose if isinstance(self.packet, Tlp) else ""


class PcieAnalyzer:
    """Passive trace capture on one PCIe link.

    Parameters
    ----------
    link:
        The link to observe.  Attaching never alters link timing — the
        paper verified the physical analyzer is overhead-free and the
        simulated one trivially is.
    capture:
        When False the analyzer is attached but discards records
        (placebo mode, used by tests asserting zero perturbation).
    """

    def __init__(self, link: PcieLink, capture: bool = True) -> None:
        self.link = link
        self.capture = capture
        self.records: list[TraceRecord] = []
        link.add_tap(self._observe)

    def _observe(self, timestamp: float, direction: Direction, packet: Any) -> None:
        if self.capture:
            self.records.append(TraceRecord(timestamp, direction, packet))

    # -- convenience filters (mirroring Lecroy trace post-processing) -------
    def tlps(self, direction: Direction | None = None) -> list[TraceRecord]:
        """All TLP records, optionally restricted to one direction."""
        return [
            r
            for r in self.records
            if r.is_tlp and (direction is None or r.direction is direction)
        ]

    def dllps(self, direction: Direction | None = None) -> list[TraceRecord]:
        """All DLLP records, optionally restricted to one direction."""
        return [
            r
            for r in self.records
            if r.is_dllp and (direction is None or r.direction is direction)
        ]

    def clear(self) -> None:
        """Drop captured records (e.g. after benchmark warmup)."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PcieAnalyzer records={len(self.records)}>"
