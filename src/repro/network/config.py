"""Interconnect configuration.

Defaults reproduce the paper's testbed: Mellanox InfiniBand (EDR-class)
between two ConnectX-4 adapters through one switch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.network.topology import TopologySpec

__all__ = ["NetworkConfig"]


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the interconnect between the two NICs.

    Attributes
    ----------
    wire_latency_ns:
        One-way NIC-to-NIC time over the physical wire with no switch —
        includes both SerDes conversions and the fibre flight time
        (274.81 ns measured in §4.3).
    switch_latency_ns:
        Additional one-way delay contributed by each switch hop
        (108 ns measured by differencing switched/direct runs).
    switch_count:
        Number of switch hops between the NICs (paper: 1; 0 models the
        direct connection used for the Wire measurement).
    bandwidth_bytes_per_ns:
        Serialisation bandwidth of the wire; an x-byte frame adds
        ``x / bandwidth``.  ``inf`` (default) matches the paper's
        constants for 8-byte messages; EDR InfiniBand would be
        ~12.5 B/ns (100 Gb/s).
    ack_turnaround_ns:
        Target-NIC hardware time between receiving a frame and emitting
        the link-level ACK.
    topology:
        Optional :class:`~repro.network.topology.TopologySpec`.  ``None``
        (default) keeps the paper's point-to-point fabric: a private
        wire -> switch^k chain per ordered NIC pair, contention-free.
        A spec makes the fabric build the described switch graph with
        one shared simplex wire per cable direction, deterministic
        shortest-path routing, and FIFO per-link contention.  Each cable
        carries ``wire_latency_ns``; each transited switch adds
        ``switch_latency_ns`` (``switch_count`` is ignored — hop count
        comes from the routed path).  The field is elided from
        :func:`~repro.sim.hashing.stable_digest` while ``None`` so
        existing campaign caches stay valid.
    """

    wire_latency_ns: float = 274.81
    switch_latency_ns: float = 108.0
    switch_count: int = 1
    bandwidth_bytes_per_ns: float = math.inf
    ack_turnaround_ns: float = 0.0
    topology: TopologySpec | None = field(
        default=None, metadata={"elide_default_from_hash": True}
    )

    def __post_init__(self) -> None:
        if self.wire_latency_ns < 0:
            raise ValueError("wire_latency_ns must be >= 0")
        if self.switch_latency_ns < 0:
            raise ValueError("switch_latency_ns must be >= 0")
        if self.switch_count < 0:
            raise ValueError("switch_count must be >= 0")
        if self.bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth_bytes_per_ns must be > 0")
        if self.ack_turnaround_ns < 0:
            raise ValueError("ack_turnaround_ns must be >= 0")

    def one_way_latency(self, frame_bytes: int = 0) -> float:
        """Total one-way network time for a frame of ``frame_bytes``.

        This is the paper's ``Network`` = Wire + Switch (382.81 ns with
        the defaults).
        """
        if frame_bytes < 0:
            raise ValueError(f"frame_bytes must be >= 0, got {frame_bytes}")
        serialization = (
            0.0
            if math.isinf(self.bandwidth_bytes_per_ns)
            else frame_bytes / self.bandwidth_bytes_per_ns
        )
        return (
            self.wire_latency_ns
            + self.switch_count * self.switch_latency_ns
            + serialization
        )

    def without_switch(self) -> "NetworkConfig":
        """A copy with the switch removed (the paper's direct setup)."""
        return NetworkConfig(
            wire_latency_ns=self.wire_latency_ns,
            switch_latency_ns=self.switch_latency_ns,
            switch_count=0,
            bandwidth_bytes_per_ns=self.bandwidth_bytes_per_ns,
            ack_turnaround_ns=self.ack_turnaround_ns,
            topology=self.topology,
        )
