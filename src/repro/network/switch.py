"""A cut-through network switch.

High-performance interconnect switches forward with a fixed, small
latency (108 ns measured for the paper's InfiniBand switch; §7.2 cites
Gen-Z's forecast 30–50 ns).  The model is a constant per-hop delay with
optional egress-port contention: frames to the same output port that
overlap in time are serialised, which matters only for the
multi-initiator ablations, never for the paper's single-core runs.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.network.config import NetworkConfig
from repro.network.wire import frame_trace_attrs
from repro.sim.engine import Environment
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import SiteInjector

__all__ = ["Switch"]


class Switch:
    """One switch hop between two wire segments."""

    def __init__(
        self,
        env: Environment,
        config: NetworkConfig,
        forward: Callable[[Any], None],
        name: str = "switch",
        egress_serialization_ns: float = 0.0,
        faults: "SiteInjector | None" = None,
    ) -> None:
        if egress_serialization_ns < 0:
            raise ValueError("egress_serialization_ns must be >= 0")
        self.env = env
        self.config = config
        self.forward = forward
        self.name = name
        self.egress_serialization_ns = egress_serialization_ns
        self.faults = faults
        self._egress = Resource(env, capacity=1, name=f"{name}.egress")
        self.frames_forwarded = 0
        self.frames_dropped = 0

    def transmit(self, frame: Any) -> None:
        """Accept ``frame`` for forwarding (non-blocking)."""
        if self.faults is not None:
            action = self.faults.decide(switch=self.name, **frame_trace_attrs(frame))
            if action == "drop":
                self.frames_dropped += 1
                return
            if action == "corrupt":
                frame.corrupted = True
        tracer = self.env.tracer
        tspan = None
        if tracer.enabled:
            tspan = tracer.begin(
                "network", "switch", track=self.name, **frame_trace_attrs(frame)
            )
        self.env.defer(
            self._after_hop, self.config.switch_latency_ns, args=(frame, tspan)
        )

    def _after_hop(self, frame: Any, tspan: Any) -> None:
        if self.egress_serialization_ns > 0:

            def granted(_event: Any) -> None:
                self.env.defer(
                    self._egress_done, self.egress_serialization_ns, args=(frame, tspan)
                )

            self._egress.request().add_callback(granted)
        else:
            self._emit(frame, tspan)

    def _egress_done(self, frame: Any, tspan: Any) -> None:
        self._egress.release()
        self._emit(frame, tspan)

    def _emit(self, frame: Any, tspan: Any) -> None:
        if tspan is not None:
            self.env.tracer.end(tspan)
        self.frames_forwarded += 1
        self.forward(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name!r} forwarded={self.frames_forwarded}>"
