"""Declarative interconnect topologies with deterministic routing.

The paper's evaluation wires exactly two NICs through one switch; at
scale the interconnect is a *graph* — hosts hanging off edge switches,
switches meshed into a fat-tree or a ring/torus.  This module provides
the declarative :class:`TopologySpec` (what shape, which parameters —
hashable, so it can live inside :class:`~repro.network.config.NetworkConfig`
and key the campaign result cache) and the built :class:`Topology`
(the concrete node/link graph plus shortest-path routing tables).

Routing is deterministic: next-hop tables come from a breadth-first
search per destination with neighbours visited in sorted-name order, so
every (src, dst) pair resolves to the same minimal path on every run,
process and machine.  There is no adaptive or multi-path routing — two
flows crossing the same link contend for it (see
:class:`~repro.network.wire.Wire`), which is exactly the effect the
scale-out experiments need to observe.

Hosts never forward: each host attaches to exactly one switch, so a
shortest path can only transit switches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import cached_property

__all__ = ["Topology", "TopologySpec"]

#: Recognised topology kinds.
KINDS = ("ring", "torus", "fat_tree")


@dataclass(frozen=True)
class TopologySpec:
    """A declarative description of the interconnect shape.

    Attributes
    ----------
    kind:
        ``"ring"`` (one router switch per host, switches in a cycle),
        ``"torus"`` (router grid with wraparound in every dimension) or
        ``"fat_tree"`` (three-tier k-ary fat-tree; hosts distributed in
        contiguous blocks across the edge switches, so oversubscribed
        clusters — 64 hosts on k=4 — are allowed).
    k:
        Fat-tree arity (even, >= 2).  Ignored by ring/torus.
    dims:
        Torus grid dimensions, e.g. ``(4, 4)``.  Ignored otherwise.
    """

    kind: str = "fat_tree"
    k: int = 4
    dims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; choose from {', '.join(KINDS)}"
            )
        if self.kind == "fat_tree":
            if self.k < 2 or self.k % 2:
                raise ValueError(f"fat-tree arity k must be even and >= 2, got {self.k}")
        if self.kind == "torus":
            if not self.dims:
                raise ValueError("a torus needs at least one dimension")
            if any(d < 1 for d in self.dims):
                raise ValueError(f"torus dimensions must be >= 1, got {self.dims}")
        object.__setattr__(self, "dims", tuple(self.dims))

    @classmethod
    def parse(cls, text: str) -> "TopologySpec":
        """Parse ``"ring"``, ``"torus:4x4"`` or ``"fat_tree:4"``."""
        kind, _, arg = text.partition(":")
        kind = kind.strip()
        if kind == "ring":
            return cls(kind="ring")
        if kind == "torus":
            if not arg:
                raise ValueError("torus spec needs dimensions, e.g. 'torus:4x4'")
            dims = tuple(int(d) for d in arg.split("x"))
            return cls(kind="torus", dims=dims)
        if kind == "fat_tree":
            return cls(kind="fat_tree", k=int(arg) if arg else 4)
        raise ValueError(
            f"cannot parse topology {text!r}; expected one of "
            "'ring', 'torus:AxBx...', 'fat_tree:K'"
        )

    def build(self, host_names: list[str] | tuple[str, ...]) -> "Topology":
        """Instantiate the graph for the given ordered host names."""
        hosts = tuple(host_names)
        if len(hosts) < 2:
            raise ValueError(f"a topology needs at least two hosts, got {len(hosts)}")
        if len(set(hosts)) != len(hosts):
            raise ValueError("duplicate host names")
        if self.kind == "ring":
            edges = _ring_edges(hosts)
        elif self.kind == "torus":
            edges = _torus_edges(hosts, self.dims)
        else:
            edges = _fat_tree_edges(hosts, self.k)
        return Topology(spec=self, hosts=hosts, edges=edges)


def _ring_edges(hosts: tuple[str, ...]) -> list[tuple[str, str]]:
    """One router per host, routers in a cycle."""
    n = len(hosts)
    edges = [(host, f"ring.s{i}") for i, host in enumerate(hosts)]
    for i in range(n):
        j = (i + 1) % n
        if j != i and (f"ring.s{j}", f"ring.s{i}") not in edges:
            edges.append((f"ring.s{i}", f"ring.s{j}"))
    return edges


def _torus_edges(
    hosts: tuple[str, ...], dims: tuple[int, ...]
) -> list[tuple[str, str]]:
    """Router grid with wraparound links; hosts row-major on the grid."""
    capacity = 1
    for d in dims:
        capacity *= d
    if len(hosts) > capacity:
        raise ValueError(
            f"{len(hosts)} hosts do not fit a {'x'.join(map(str, dims))} torus "
            f"({capacity} router slots)"
        )

    def coord(index: int) -> tuple[int, ...]:
        out = []
        for d in reversed(dims):
            out.append(index % d)
            index //= d
        return tuple(reversed(out))

    def sw(coords: tuple[int, ...]) -> str:
        return "torus.s" + "_".join(map(str, coords))

    edges = [(host, sw(coord(i))) for i, host in enumerate(hosts)]
    seen: set[frozenset[str]] = set()
    for index in range(capacity):
        here = coord(index)
        for axis, size in enumerate(dims):
            if size < 2:
                continue
            there = list(here)
            there[axis] = (here[axis] + 1) % size
            pair = frozenset((sw(here), sw(tuple(there))))
            if len(pair) == 2 and pair not in seen:
                seen.add(pair)
                edges.append((sw(here), sw(tuple(there))))
    return edges


def _fat_tree_edges(hosts: tuple[str, ...], k: int) -> list[tuple[str, str]]:
    """Three-tier k-ary fat-tree: k pods x (k/2 edge + k/2 aggr), (k/2)^2 core.

    Hosts are distributed in contiguous blocks across the k^2/2 edge
    switches (as evenly as possible), so consecutive ranks share an edge
    switch — the layout a batch scheduler would produce — and host
    counts beyond the tree's nominal k^3/4 capacity model an
    oversubscribed edge tier rather than failing.
    """
    half = k // 2
    edge_switches = [f"ft.p{p}e{e}" for p in range(k) for e in range(half)]
    base, extra = divmod(len(hosts), len(edge_switches))
    edges: list[tuple[str, str]] = []
    cursor = 0
    for index, switch in enumerate(edge_switches):
        take = base + (1 if index < extra else 0)
        for host in hosts[cursor : cursor + take]:
            edges.append((host, switch))
        cursor += take
    for p in range(k):
        for e in range(half):
            for a in range(half):
                edges.append((f"ft.p{p}e{e}", f"ft.p{p}a{a}"))
    for p in range(k):
        for a in range(half):
            for c in range(a * half, (a + 1) * half):
                edges.append((f"ft.p{p}a{a}", f"ft.c{c}"))
    return edges


class Topology:
    """A built interconnect graph with deterministic routing tables.

    Nodes are strings: the attached host (NIC) names plus generated
    switch names.  ``edges`` lists undirected cables; every cable is
    two simplex :class:`~repro.network.wire.Wire` objects once the
    :class:`~repro.network.fabric.Fabric` materialises it.
    """

    def __init__(
        self,
        spec: TopologySpec,
        hosts: tuple[str, ...],
        edges: list[tuple[str, str]],
    ) -> None:
        self.spec = spec
        self.hosts = hosts
        host_set = set(hosts)
        adjacency: dict[str, list[str]] = {}
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on {u!r}")
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, []).append(u)
        self.switches: tuple[str, ...] = tuple(
            sorted(n for n in adjacency if n not in host_set)
        )
        #: Neighbours in sorted order — the routing tie-break.
        self.adjacency: dict[str, tuple[str, ...]] = {
            node: tuple(sorted(set(neighbours)))
            for node, neighbours in adjacency.items()
        }
        for host in hosts:
            degree = len(self.adjacency.get(host, ()))
            if degree != 1:
                raise ValueError(
                    f"host {host!r} must attach to exactly one switch, has {degree}"
                )
        self._next_hop: dict[str, dict[str, str]] = {}
        self._check_connected()

    def _check_connected(self) -> None:
        start = self.hosts[0]
        seen = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            for neighbour in self.adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        missing = sorted(set(self.adjacency) - seen)
        if missing:
            raise ValueError(f"topology is disconnected; unreachable: {missing}")

    @cached_property
    def links(self) -> tuple[tuple[str, str], ...]:
        """All directed links (u, v), sorted — one simplex wire each."""
        out = []
        for node, neighbours in self.adjacency.items():
            for neighbour in neighbours:
                out.append((node, neighbour))
        return tuple(sorted(out))

    def _table_for(self, dst: str) -> dict[str, str]:
        """next-hop-toward-``dst`` for every node, via BFS from ``dst``."""
        table = self._next_hop.get(dst)
        if table is None:
            table = {}
            frontier = deque([dst])
            seen = {dst}
            while frontier:
                node = frontier.popleft()
                for neighbour in self.adjacency[node]:
                    if neighbour not in seen:
                        seen.add(neighbour)
                        table[neighbour] = node
                        frontier.append(neighbour)
            self._next_hop[dst] = table
        return table

    def next_hop(self, node: str, dst: str) -> str:
        """The neighbour ``node`` forwards to on the way to host ``dst``."""
        if dst not in self.adjacency:
            raise KeyError(f"unknown destination {dst!r}")
        try:
            return self._table_for(dst)[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def path(self, src: str, dst: str) -> list[str]:
        """The full routed node sequence ``[src, ..., dst]``."""
        if src == dst:
            return [src]
        nodes = [src]
        while nodes[-1] != dst:
            nodes.append(self.next_hop(nodes[-1], dst))
            if len(nodes) > len(self.adjacency):
                raise RuntimeError(f"routing loop between {src!r} and {dst!r}")
        return nodes

    def hop_counts(self, src: str, dst: str) -> tuple[int, int]:
        """(wires, switches) on the routed path ``src -> dst``."""
        nodes = self.path(src, dst)
        return len(nodes) - 1, max(len(nodes) - 2, 0)

    def path_network_latency_ns(self, src: str, dst: str, config) -> float:
        """One-way network time on the routed path, zero-load.

        Each cable contributes the full configured wire latency, each
        transited switch its hop delay — the paper's Network = Wire +
        Switch generalised to multi-hop paths (serialisation excluded;
        it is per-frame, not per-path).
        """
        wires, switches = self.hop_counts(src, dst)
        return wires * config.wire_latency_ns + switches * config.switch_latency_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topology {self.spec.kind} hosts={len(self.hosts)}"
            f" switches={len(self.switches)} links={len(self.links)}>"
        )
