"""Interconnect fabric model: wire, switch, and the two-node fabric.

The paper decomposes off-node time as ``Network = Wire + Switch``
(§4.3): 274.81 ns for a direct NIC-to-NIC wire traversal plus 108 ns
per switch hop, measured by differencing latency runs with and without
a switch.  Link-level ACKs — which gate completion generation on the
initiator — traverse the same path.
"""

from repro.network.config import NetworkConfig
from repro.network.fabric import Fabric, NetworkFrame
from repro.network.switch import Switch
from repro.network.wire import Wire

__all__ = ["Fabric", "NetworkConfig", "NetworkFrame", "Switch", "Wire"]
