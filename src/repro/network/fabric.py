"""The two-node fabric: wires + switches + link-level ACKs.

The fabric connects exactly two NIC ports (the paper's evaluation
setup).  A data frame travels wire → switch^k → wire-tail to the target
NIC; the target's link layer then returns an ACK frame along the
reverse path after ``ack_turnaround_ns``.  The initiator NIC releases
the message's completion only on ACK receipt — the mechanism behind the
paper's ``gen_completion = 2 × (PCIe + Network) + RC-to-MEM(64B)``.

The composite one-way latency always equals
:meth:`NetworkConfig.one_way_latency`; wires and switches are explicit
objects (rather than one folded delay) so ablations can perturb a single
hop and the analyzer-style methodology can attribute time per stage.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol

from repro.network.config import NetworkConfig
from repro.network.switch import Switch
from repro.network.wire import Wire, frame_trace_attrs
from repro.sim.engine import Environment, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import FaultInjector

__all__ = ["Fabric", "FrameKind", "NetworkFrame", "NicPort"]

_frame_ids = itertools.count(1)


class FrameKind(enum.Enum):
    """Frame roles on the fabric."""

    DATA = "data"
    ACK = "ack"
    #: RDMA-read request: small header, no payload.
    READ_REQUEST = "read_request"
    #: RDMA-read response: carries the requested payload back.
    READ_RESPONSE = "read_response"
    #: RDMA atomic request (fetch-add class): operand out, old value
    #: returned via READ_RESPONSE.
    ATOMIC_REQUEST = "atomic_request"


@dataclass
class NetworkFrame:
    """One frame in flight on the interconnect."""

    kind: FrameKind
    src: str
    dst: str
    size_bytes: int = 0
    message: Any = None
    #: Set by an injected ``corrupt`` fault; the receiving NIC discards
    #: corrupted frames, leaving recovery to the transport layer.
    corrupted: bool = False
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame#{self.frame_id} {self.kind.value} {self.src}->{self.dst}"
            f" {self.size_bytes}B>"
        )


class NicPort(Protocol):
    """What the fabric requires of an attached NIC."""

    name: str

    def on_network_frame(self, frame: NetworkFrame) -> None:
        """Called when a frame (data or ack) arrives at this NIC."""


class Fabric:
    """Bidirectional interconnect between attached NIC ports.

    The paper's testbed has two nodes; the fabric generalises to N
    ports with a path (wire + switch hops) per ordered pair, enabling
    the multi-node collectives UCP provides in the real stack.
    """

    def __init__(
        self,
        env: Environment,
        config: NetworkConfig,
        name: str = "fabric",
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self._wire_faults = faults.site("network.wire") if faults is not None else None
        self._switch_faults = (
            faults.site("network.switch") if faults is not None else None
        )
        self._ack_faults = faults.site("network.ack") if faults is not None else None
        self._ports: dict[str, NicPort] = {}
        self._paths: dict[tuple[str, str], list[Any]] = {}
        self.frames_delivered = 0
        self.acks_delivered = 0
        self.acks_dropped = 0

    def attach(self, port: NicPort) -> None:
        """Attach a NIC port, building paths to every existing port."""
        if port.name in self._ports:
            raise SimulationError(f"port {port.name!r} already attached")
        for existing in self._ports:
            self._build_path(existing, port.name)
            self._build_path(port.name, existing)
        self._ports[port.name] = port

    def _build_path(self, src: str, dst: str) -> None:
        """Construct the stage chain wire → switches for ``src→dst``.

        The wire carries the full configured wire latency; each switch
        adds its hop delay.  Stages hand frames forward via callbacks.
        """
        final = self._make_deliver(dst)
        stages: list[Any] = []
        # Build back to front: last switch forwards to delivery.
        next_hop = final
        for hop in range(self.config.switch_count, 0, -1):
            switch = Switch(
                self.env,
                self.config,
                forward=next_hop,
                name=f"{self.name}.{src}->{dst}.sw{hop}",
                faults=self._switch_faults,
            )
            stages.append(switch)
            next_hop = switch.transmit
        wire = Wire(
            self.env,
            self.config,
            deliver=next_hop,
            name=f"{self.name}.{src}->{dst}.wire",
            faults=self._wire_faults,
        )
        stages.append(wire)
        stages.reverse()  # wire first, then switches in hop order
        self._paths[(src, dst)] = stages

    def _make_deliver(self, dst: str):
        def deliver(frame: NetworkFrame) -> None:
            if frame.kind is FrameKind.ACK:
                self.acks_delivered += 1
            else:
                self.frames_delivered += 1
            self._ports[dst].on_network_frame(frame)

        return deliver

    def peer_of(self, name: str) -> str:
        """Name of the single port opposite ``name`` (two-port fabrics).

        Raises on fabrics with more than two ports, where "the peer" is
        ambiguous and senders must address destinations explicitly.
        """
        if name not in self._ports:
            raise SimulationError(f"unknown port {name!r}")
        others = [n for n in self._ports if n != name]
        if not others:
            raise SimulationError(f"no peer attached for {name!r}")
        if len(others) > 1:
            raise SimulationError(
                f"{len(self._ports)} ports attached; peer_of is ambiguous — "
                "address the destination explicitly"
            )
        return others[0]

    def path_stages(self, src: str, dst: str) -> list[Any]:
        """The stage objects (Wire, Switch...) on ``src→dst`` (for tests)."""
        return self._paths[(src, dst)]

    def transmit(self, frame: NetworkFrame) -> None:
        """Launch ``frame`` from its source port (non-blocking)."""
        key = (frame.src, frame.dst)
        path = self._paths.get(key)
        if path is None:
            raise SimulationError(
                f"no path {frame.src!r}->{frame.dst!r}; both ports attached?"
            )
        wire: Wire = path[0]
        wire.transmit(frame, frame.size_bytes)

    def send_data(
        self,
        src: str,
        dst: str,
        message: Any,
        size_bytes: int,
        kind: FrameKind = FrameKind.DATA,
    ) -> NetworkFrame:
        """Convenience: build and transmit a payload-class frame."""
        frame = NetworkFrame(
            kind=kind, src=src, dst=dst, size_bytes=size_bytes, message=message
        )
        self.transmit(frame)
        return frame

    def send_ack(self, data_frame: NetworkFrame) -> NetworkFrame:
        """Build and transmit the link-level ACK for ``data_frame``.

        Called by the target NIC after its ``ack_turnaround_ns``; the
        ACK retraces the path in reverse and carries the original
        message so the initiator can match it.
        """
        ack = NetworkFrame(
            kind=FrameKind.ACK,
            src=data_frame.dst,
            dst=data_frame.src,
            size_bytes=0,
            message=data_frame.message,
        )
        if self._ack_faults is not None:
            # ACK frames carry no payload, so both actions mean loss.
            if self._ack_faults.decide(**frame_trace_attrs(ack)) is not None:
                self.acks_dropped += 1
                return ack
        self.transmit(ack)
        return ack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Fabric {self.name!r} data={self.frames_delivered}"
            f" acks={self.acks_delivered}>"
        )
