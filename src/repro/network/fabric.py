"""The interconnect fabric: wires + switches + link-level ACKs.

By default the fabric wires attached NIC ports point-to-point (the
paper's evaluation setup, generalised to all ordered pairs).  A data
frame travels wire → switch^k → wire-tail to the target NIC; the
target's link layer then returns an ACK frame along the reverse path
after ``ack_turnaround_ns``.  With a built
:class:`~repro.network.topology.Topology` the same protocol instead
runs over a shared switch graph with deterministic shortest-path
routing and per-link FIFO contention.  The initiator NIC releases
the message's completion only on ACK receipt — the mechanism behind the
paper's ``gen_completion = 2 × (PCIe + Network) + RC-to-MEM(64B)``.

The composite one-way latency always equals
:meth:`NetworkConfig.one_way_latency`; wires and switches are explicit
objects (rather than one folded delay) so ablations can perturb a single
hop and the analyzer-style methodology can attribute time per stage.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol

from repro.network.config import NetworkConfig
from repro.network.switch import Switch
from repro.network.topology import Topology
from repro.network.wire import Wire, frame_trace_attrs
from repro.sim.engine import Environment, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import FaultInjector

__all__ = ["Fabric", "FrameKind", "NetworkFrame", "NicPort"]

_frame_ids = itertools.count(1)


class FrameKind(enum.Enum):
    """Frame roles on the fabric."""

    DATA = "data"
    ACK = "ack"
    #: RDMA-read request: small header, no payload.
    READ_REQUEST = "read_request"
    #: RDMA-read response: carries the requested payload back.
    READ_RESPONSE = "read_response"
    #: RDMA atomic request (fetch-add class): operand out, old value
    #: returned via READ_RESPONSE.
    ATOMIC_REQUEST = "atomic_request"
    #: NIC-resident collective token/payload: matched against posted
    #: offload descriptors at the receiving adapter, never DMA-written
    #: to host memory on interior hops (see :mod:`repro.nic.offload`).
    COLLECTIVE = "collective"


@dataclass
class NetworkFrame:
    """One frame in flight on the interconnect."""

    kind: FrameKind
    src: str
    dst: str
    size_bytes: int = 0
    message: Any = None
    #: Set by an injected ``corrupt`` fault; the receiving NIC discards
    #: corrupted frames, leaving recovery to the transport layer.
    corrupted: bool = False
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame#{self.frame_id} {self.kind.value} {self.src}->{self.dst}"
            f" {self.size_bytes}B>"
        )


class NicPort(Protocol):
    """What the fabric requires of an attached NIC."""

    name: str

    def on_network_frame(self, frame: NetworkFrame) -> None:
        """Called when a frame (data or ack) arrives at this NIC."""


class _CompiledPath:
    """One fabric path pre-compiled to a single calendar entry.

    Built once per (config, path) when the path is *uncontended and
    unobserved*: every wire has infinite bandwidth (no serialiser),
    every switch forwards without egress serialisation, and no fault
    site targets the network.  The per-hop delays are folded
    left-to-right at launch time, so the terminal timestamp is
    bit-identical to the hop-by-hop schedule the legacy path produces;
    per-stage statistics (frames carried/forwarded, wire occupancy) are
    maintained at the endpoints.  ``peak_inflight`` on a compiled wire
    counts frames on the whole remaining path (they decrement at final
    delivery rather than per hop) — equal or higher than per-hop
    accounting, never lower.

    Compiled launches are only taken while the tracer is disabled, so
    traced (golden-timeline) runs replay the full per-hop chains.
    """

    __slots__ = ("env", "deltas", "wires", "switches", "deliver", "elided")

    def __init__(
        self,
        env: Environment,
        deltas: list[float],
        wires: list[Wire],
        switches: list[Switch],
        deliver: Any,
    ) -> None:
        self.env = env
        self.deltas = deltas
        self.wires = wires
        self.switches = switches
        self.deliver = deliver
        #: Calendar entries the legacy chain would have used, minus the
        #: one this path actually schedules.
        self.elided = len(deltas) - 1

    def launch(self, frame: NetworkFrame) -> None:
        self.launch_at(frame, self.env.now)

    def launch_at(self, frame: NetworkFrame, start: float) -> None:
        """Launch ``frame`` as if transmitted at ``start`` (>= now).

        Lets upstream stages (NIC tx processing, ACK turnaround) fold
        their own fixed delay into the same single calendar entry: the
        terminal time is the identical left-to-right float sum the
        hop-by-hop chain would have produced.
        """
        env = self.env
        when = start
        for delta in self.deltas:
            when = when + delta
        for wire in self.wires:
            wire.inflight += 1
            if wire.inflight > wire.peak_inflight:
                wire.peak_inflight = wire.inflight
        if self.elided:
            env.credit_fast_forwarded(self.elided)
        env.defer_at(self._arrive, when, args=(frame,))

    def _arrive(self, frame: NetworkFrame) -> None:
        for wire in self.wires:
            wire.inflight -= 1
            wire.frames_carried += 1
        for switch in self.switches:
            switch.frames_forwarded += 1
        self.deliver(frame)


class Fabric:
    """Bidirectional interconnect between attached NIC ports.

    Two wiring modes share one delivery/ACK protocol:

    * **point-to-point** (``topology=None``, the paper's setup): a
      private wire -> switch^k chain per ordered port pair, built as
      ports attach.  Pairs never contend; the two-node testbed is the
      N=2 case of the same code path.
    * **topology** (a built :class:`~repro.network.topology.Topology`):
      one shared simplex :class:`Wire` per cable direction and one
      shared :class:`Switch` per graph switch, frames following the
      deterministic shortest-path next-hop tables.  Flows crossing the
      same link share its FIFO serialiser, so concurrent traffic queues
      instead of overlapping for free.
    """

    def __init__(
        self,
        env: Environment,
        config: NetworkConfig,
        name: str = "fabric",
        faults: "FaultInjector | None" = None,
        topology: Topology | None = None,
    ) -> None:
        self.env = env
        self.config = config
        self.name = name
        self.topology = topology
        self._wire_faults = faults.site("network.wire") if faults is not None else None
        self._switch_faults = (
            faults.site("network.switch") if faults is not None else None
        )
        self._ack_faults = faults.site("network.ack") if faults is not None else None
        self._ports: dict[str, NicPort] = {}
        self._paths: dict[tuple[str, str], list[Any]] = {}
        self._links: dict[tuple[str, str], Wire] = {}
        self._switches: dict[str, Switch] = {}
        #: A fault rule on any path stage disables path compilation
        #: outright: compiled launches skip the per-stage decide() hooks.
        #: (ACK-drop rules are checked separately at the ACK entry
        #: points, so they don't force data frames onto the slow path.)
        self._has_faults = (
            self._wire_faults is not None or self._switch_faults is not None
        )
        self._compiled: dict[tuple[str, str], _CompiledPath | None] = {}
        self.frames_delivered = 0
        self.acks_delivered = 0
        self.acks_dropped = 0
        if topology is not None:
            self._build_topology(topology)

    def _build_topology(self, topology: Topology) -> None:
        """Materialise shared switches and per-direction link wires."""
        for sw_name in topology.switches:
            self._switches[sw_name] = Switch(
                self.env,
                self.config,
                forward=self._make_router(sw_name),
                name=f"{self.name}.{sw_name}",
                faults=self._switch_faults,
            )
        for u, v in topology.links:
            if v in self._switches:
                deliver: Any = self._switches[v].transmit
            else:
                deliver = self._make_deliver(v)
            self._links[(u, v)] = Wire(
                self.env,
                self.config,
                deliver=deliver,
                name=f"{self.name}.{u}->{v}.wire",
                faults=self._wire_faults,
            )

    def _make_router(self, sw_name: str):
        """The forwarding closure of one shared switch: route, then hop."""

        def forward(frame: NetworkFrame) -> None:
            assert self.topology is not None
            nxt = self.topology.next_hop(sw_name, frame.dst)
            self._links[(sw_name, nxt)].transmit(frame, frame.size_bytes)

        return forward

    def attach(self, port: NicPort) -> None:
        """Attach a NIC port, building paths to every existing port."""
        if port.name in self._ports:
            raise SimulationError(f"port {port.name!r} already attached")
        if self.topology is not None:
            if port.name not in self.topology.hosts:
                raise SimulationError(
                    f"port {port.name!r} is not a host of the configured "
                    f"topology; expected one of {list(self.topology.hosts)}"
                )
        else:
            for existing in self._ports:
                self._build_path(existing, port.name)
                self._build_path(port.name, existing)
        self._ports[port.name] = port

    def _build_path(self, src: str, dst: str) -> None:
        """Construct the stage chain wire → switches for ``src→dst``.

        The wire carries the full configured wire latency; each switch
        adds its hop delay.  Stages hand frames forward via callbacks.
        """
        final = self._make_deliver(dst)
        stages: list[Any] = []
        # Build back to front: last switch forwards to delivery.
        next_hop = final
        for hop in range(self.config.switch_count, 0, -1):
            switch = Switch(
                self.env,
                self.config,
                forward=next_hop,
                name=f"{self.name}.{src}->{dst}.sw{hop}",
                faults=self._switch_faults,
            )
            stages.append(switch)
            next_hop = switch.transmit
        wire = Wire(
            self.env,
            self.config,
            deliver=next_hop,
            name=f"{self.name}.{src}->{dst}.wire",
            faults=self._wire_faults,
        )
        stages.append(wire)
        stages.reverse()  # wire first, then switches in hop order
        self._paths[(src, dst)] = stages

    def _make_deliver(self, dst: str):
        def deliver(frame: NetworkFrame) -> None:
            if frame.kind is FrameKind.ACK:
                self.acks_delivered += 1
            else:
                self.frames_delivered += 1
            self._ports[dst].on_network_frame(frame)

        return deliver

    def peer_of(self, name: str) -> str:
        """Name of the single port opposite ``name`` (two-port fabrics).

        Raises on fabrics with more than two ports, where "the peer" is
        ambiguous and senders must address destinations explicitly.
        """
        if name not in self._ports:
            raise SimulationError(f"unknown port {name!r}")
        others = [n for n in self._ports if n != name]
        if not others:
            raise SimulationError(f"no peer attached for {name!r}")
        if len(others) > 1:
            raise SimulationError(
                f"{len(self._ports)} ports attached; peer_of is ambiguous — "
                "address the destination explicitly"
            )
        return others[0]

    def path_stages(self, src: str, dst: str) -> list[Any]:
        """The stage objects (Wire, Switch...) on ``src→dst`` (for tests)."""
        if self.topology is not None:
            nodes = self.topology.path(src, dst)
            stages: list[Any] = []
            for here, nxt in zip(nodes, nodes[1:]):
                stages.append(self._links[(here, nxt)])
                if nxt in self._switches:
                    stages.append(self._switches[nxt])
            return stages
        return self._paths[(src, dst)]

    def link(self, u: str, v: str) -> Wire:
        """The shared simplex wire ``u -> v`` (topology mode only)."""
        if self.topology is None:
            raise SimulationError("link() requires a topology-mode fabric")
        try:
            return self._links[(u, v)]
        except KeyError:
            raise SimulationError(f"no link {u!r}->{v!r} in the topology") from None

    def link_stats(self) -> dict[str, dict[str, float]]:
        """Per-link occupancy: frames carried, busy time, peak in-flight."""
        if self.topology is not None:
            wires = {f"{u}->{v}": w for (u, v), w in self._links.items()}
        else:
            wires = {
                f"{src}->{dst}": path[0] for (src, dst), path in self._paths.items()
            }
        return {
            key: {
                "frames": wire.frames_carried,
                "busy_ns": wire.busy_ns,
                "peak_inflight": wire.peak_inflight,
            }
            for key, wire in sorted(wires.items())
        }

    def reset_stats(self) -> None:
        """Zero every wire's occupancy counters and the fabric totals.

        Back-to-back runs on one cluster call this between runs so each
        RunRecord's :meth:`link_stats` snapshot covers only its own
        traffic instead of accumulating across runs.
        """
        if self.topology is not None:
            wires = list(self._links.values())
        else:
            wires = [path[0] for path in self._paths.values()]
        for wire in wires:
            wire.reset_stats()
        self.frames_delivered = 0
        self.acks_delivered = 0
        self.acks_dropped = 0

    def _compile_path(self, src: str, dst: str) -> _CompiledPath | None:
        """Build (or reject) the flat single-entry route for ``src→dst``.

        Compilation requires: no fault plan armed on the fabric, every
        wire at infinite bandwidth, and every switch forwarding without
        egress serialisation.  Anything else caches ``None`` and the
        pair keeps the per-hop path for the fabric's lifetime — stage
        configs are fixed after construction, so the decision never
        needs revisiting.
        """
        compiled: _CompiledPath | None = None
        if not self._has_faults:
            try:
                stages = self.path_stages(src, dst)
            except (KeyError, SimulationError):
                stages = []  # let transmit() raise the routing error
            if stages:
                wires = [s for s in stages if isinstance(s, Wire)]
                switches = [s for s in stages if isinstance(s, Switch)]
                eligible = all(
                    math.isinf(w.config.bandwidth_bytes_per_ns) for w in wires
                ) and all(sw.egress_serialization_ns == 0 for sw in switches)
                if eligible:
                    deltas = [
                        s.config.wire_latency_ns
                        if isinstance(s, Wire)
                        else s.config.switch_latency_ns
                        for s in stages
                    ]
                    compiled = _CompiledPath(
                        self.env, deltas, wires, switches, self._make_deliver(dst)
                    )
        self._compiled[(src, dst)] = compiled
        return compiled

    def transmit(self, frame: NetworkFrame) -> None:
        """Launch ``frame`` from its source port (non-blocking).

        Uncontended, fault-free routes take the compiled single-entry
        path whenever the tracer is disabled; traced runs (and any
        ineligible route) replay the full per-hop chain.
        """
        if not self.env.tracer.enabled:
            key = (frame.src, frame.dst)
            try:
                compiled = self._compiled[key]
            except KeyError:
                compiled = self._compile_path(frame.src, frame.dst)
            if compiled is not None:
                compiled.launch(frame)
                return
        if self.topology is not None:
            try:
                nxt = self.topology.next_hop(frame.src, frame.dst)
            except KeyError as exc:
                raise SimulationError(
                    f"no route {frame.src!r}->{frame.dst!r}: {exc}"
                ) from None
            self._links[(frame.src, nxt)].transmit(frame, frame.size_bytes)
            return
        key = (frame.src, frame.dst)
        path = self._paths.get(key)
        if path is None:
            raise SimulationError(
                f"no path {frame.src!r}->{frame.dst!r}; both ports attached?"
            )
        wire: Wire = path[0]
        wire.transmit(frame, frame.size_bytes)

    def send_data(
        self,
        src: str,
        dst: str,
        message: Any,
        size_bytes: int,
        kind: FrameKind = FrameKind.DATA,
    ) -> NetworkFrame:
        """Convenience: build and transmit a payload-class frame."""
        frame = NetworkFrame(
            kind=kind, src=src, dst=dst, size_bytes=size_bytes, message=message
        )
        self.transmit(frame)
        return frame

    def try_send_data_at(
        self,
        src: str,
        dst: str,
        message: Any,
        size_bytes: int,
        kind: FrameKind,
        when: float,
    ) -> bool:
        """Compiled-only deferred launch: transmit as if sent at ``when``.

        Returns False when the route is not compiled (traced run, fault
        plan, contention possible) — the caller must then schedule its
        own delay and call :meth:`send_data` at the right time.  On
        success the caller's fixed pre-send delay has been folded into
        the route's single calendar entry.
        """
        if self.env.tracer.enabled:
            return False
        key = (src, dst)
        try:
            compiled = self._compiled[key]
        except KeyError:
            compiled = self._compile_path(src, dst)
        if compiled is None:
            return False
        frame = NetworkFrame(
            kind=kind, src=src, dst=dst, size_bytes=size_bytes, message=message
        )
        compiled.launch_at(frame, when)
        return True

    def try_send_ack_at(self, data_frame: NetworkFrame, when: float) -> bool:
        """Compiled-only deferred ACK for ``data_frame`` at ``when``.

        The ACK-fault site must be unarmed: compiled ACKs skip the
        per-frame drop decision entirely.
        """
        if self._ack_faults is not None:
            return False
        return self.try_send_data_at(
            data_frame.dst,
            data_frame.src,
            data_frame.message,
            0,
            FrameKind.ACK,
            when,
        )

    def send_ack(self, data_frame: NetworkFrame) -> NetworkFrame:
        """Build and transmit the link-level ACK for ``data_frame``.

        Called by the target NIC after its ``ack_turnaround_ns``; the
        ACK retraces the path in reverse and carries the original
        message so the initiator can match it.
        """
        ack = NetworkFrame(
            kind=FrameKind.ACK,
            src=data_frame.dst,
            dst=data_frame.src,
            size_bytes=0,
            message=data_frame.message,
        )
        if self._ack_faults is not None:
            # ACK frames carry no payload, so both actions mean loss.
            if self._ack_faults.decide(**frame_trace_attrs(ack)) is not None:
                self.acks_dropped += 1
                return ack
        self.transmit(ack)
        return ack

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Fabric {self.name!r} data={self.frames_delivered}"
            f" acks={self.acks_delivered}>"
        )
