"""The physical wire between NIC ports.

A :class:`Wire` moves frames in one direction with a fixed propagation
latency plus an optional serialisation term.  The paper's measured
274.81 ns covers the SerDes pair and the fibre for a direct NIC-to-NIC
cable; §7.2 discusses why this number is hard to reduce (PAM/FEC
trade-offs may even raise it).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.network.config import NetworkConfig
from repro.sim.engine import Environment
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import SiteInjector

__all__ = ["Wire", "frame_trace_attrs"]


def frame_trace_attrs(frame: Any) -> dict[str, Any]:
    """Trace attributes of a fabric frame (tolerant of bare test frames)."""
    kind = getattr(getattr(frame, "kind", None), "value", None)
    msg = getattr(getattr(frame, "message", None), "msg_id", None)
    return {"kind": kind, "msg": msg}


class Wire:
    """One simplex wire segment: serialisation then propagation.

    With a finite bandwidth the transmitter port is a shared resource:
    each frame occupies it for ``bytes / bandwidth`` before propagating,
    so concurrent frames pipeline (propagation overlaps) but never
    exceed the wire rate — the standard latency-bandwidth pipe.  With
    infinite bandwidth (the paper's small-message constants) frames are
    independent and the serialiser is bypassed entirely.
    """

    def __init__(
        self,
        env: Environment,
        config: NetworkConfig,
        deliver: Callable[[Any], None],
        name: str = "wire",
        faults: "SiteInjector | None" = None,
    ) -> None:
        self.env = env
        self.config = config
        self.deliver = deliver
        self.name = name
        self.faults = faults
        self.frames_carried = 0
        self.frames_dropped = 0
        #: Frames currently on the wire (accepted but not yet delivered)
        #: and the high-water mark — the per-link occupancy the
        #: contention experiments read back.
        self.inflight = 0
        self.peak_inflight = 0
        #: Accumulated serialisation time: how long the transmitter
        #: port was actually occupied (0 with infinite bandwidth).
        self.busy_ns = 0.0
        self._serial = (
            None
            if math.isinf(config.bandwidth_bytes_per_ns)
            else Resource(env, capacity=1, name=f"{name}.tx")
        )

    def reset_stats(self) -> None:
        """Zero the occupancy counters (frames in flight are untouched).

        ``peak_inflight`` restarts from the *current* occupancy so a
        reset taken mid-traffic never reports a peak below what is
        already on the wire.
        """
        self.frames_carried = 0
        self.frames_dropped = 0
        self.busy_ns = 0.0
        self.peak_inflight = self.inflight

    def serialization(self, frame_bytes: int) -> float:
        """Time the frame occupies the transmitter port."""
        if math.isinf(self.config.bandwidth_bytes_per_ns):
            return 0.0
        return frame_bytes / self.config.bandwidth_bytes_per_ns

    def latency(self, frame_bytes: int) -> float:
        """One-way wire time (serialisation + propagation) in ns."""
        return self.config.wire_latency_ns + self.serialization(frame_bytes)

    def transmit(self, frame: Any, frame_bytes: int = 0) -> None:
        """Launch ``frame`` down the wire (non-blocking)."""
        if self.faults is not None:
            action = self.faults.decide(wire=self.name, **frame_trace_attrs(frame))
            if action == "drop":
                self.frames_dropped += 1
                return
            if action == "corrupt":
                frame.corrupted = True
        tracer = self.env.tracer
        tspan = None
        self.inflight += 1
        if self.inflight > self.peak_inflight:
            self.peak_inflight = self.inflight
        if tracer.enabled:
            tspan = tracer.begin(
                "network", "wire", track=self.name,
                bytes=frame_bytes, **frame_trace_attrs(frame),
            )
            tracer.counter("network", f"link_frames:{self.name}")
        if self._serial is not None:

            def granted(_event: Any) -> None:
                serialize = self.serialization(frame_bytes)
                self.busy_ns += serialize
                if serialize > 0 and self.env.tracer.enabled:
                    self.env.tracer.counter(
                        "network", f"link_busy_ns:{self.name}", serialize
                    )
                if serialize > 0:
                    self.env.defer(self._serialized, serialize, args=(frame, tspan))
                else:
                    self._serialized(frame, tspan)

            self._serial.request().add_callback(granted)
        else:
            self.env.defer(
                self._arrive, self.config.wire_latency_ns, args=(frame, tspan)
            )

    def _serialized(self, frame: Any, tspan: Any) -> None:
        assert self._serial is not None
        self._serial.release()
        self.env.defer(self._arrive, self.config.wire_latency_ns, args=(frame, tspan))

    def _arrive(self, frame: Any, tspan: Any) -> None:
        self.inflight -= 1
        if tspan is not None:
            self.env.tracer.end(tspan)
        self.frames_carried += 1
        self.deliver(frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Wire {self.name!r} carried={self.frames_carried}>"
