"""The pluggable-transport abstraction under UCT.

The paper's UCT layer hard-wires every post into the PCIe → NIC → wire
stack.  At datacenter scale that is only one of several data paths: two
ranks on one node exchange through shared memory, and a node may own
several NIC rails.  This module defines the seam — the
:class:`Transport` protocol an endpoint posts through, the
:class:`TransportCaps` record describing what a path touches, and the
per-peer :func:`resolve_transport` rule — so
:class:`~repro.llp.uct.UctEndpoint` stays one object while the bytes
underneath take different routes.

Status codes live here (rather than in :mod:`repro.llp.uct`) because
every transport returns them; UCT re-exports them unchanged.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "UCS_ERR_NO_RESOURCE",
    "UCS_OK",
    "Transport",
    "TransportCaps",
    "resolve_transport",
]

#: Post accepted.
UCS_OK = "UCS_OK"
#: Post failed: no transmit resource (busy post); progress and retry.
UCS_ERR_NO_RESOURCE = "UCS_ERR_NO_RESOURCE"


@dataclass(frozen=True)
class TransportCaps:
    """What a transport is and which hardware its posts touch.

    The trace/breakdown layers use these flags to attribute time:
    a path with ``uses_pcie=False`` must produce zero PCIe/NIC events.
    """

    name: str
    #: True when both endpoints share one node (no fabric crossing).
    intra_node: bool
    #: True when posts cross the PCIe subsystem and the NIC.
    uses_pcie: bool
    #: True when posts consume TxQ slots (and can busy-post).
    has_txq: bool


@runtime_checkable
class Transport(Protocol):
    """The operations an endpoint delegates to its resolved transport.

    All post methods are generators executed on the posting CPU core,
    returning :data:`UCS_OK` or :data:`UCS_ERR_NO_RESOURCE` — exactly
    the contract the UCT endpoint methods had before the refactor.
    ``ep`` is the :class:`~repro.llp.uct.UctEndpoint` issuing the post;
    the transport reads its iface, peer targets and rail state from it.
    """

    caps: TransportCaps

    def can_post(self, ep: Any, payload_bytes: int = 0) -> bool:
        """Whether a post of ``payload_bytes`` would find resources now."""
        ...

    def post_short(self, ep: Any, op: Any, payload_bytes: int) -> Generator:
        """The PIO+inline-class fast path (put_short / am_short)."""
        ...

    def post_doorbell(self, ep: Any, op: Any, payload_bytes: int) -> Generator:
        """The doorbell + DMA-read-class path (put_zcopy)."""
        ...

    def post_one_sided(
        self,
        ep: Any,
        op: Any,
        payload_bytes: int,
        local_buffer: str | None,
        suffix: str,
    ) -> Generator:
        """One-sided reads/atomics landing in a local buffer."""
        ...


def resolve_transport(local_iface: Any, remote_iface: Any) -> Any:
    """Pick the transport for the ``local → remote`` endpoint pair.

    Two ranks on the same node talk through shared memory (when the
    config enables it); everything else rides the PCIe/NIC rails.  The
    decision is per peer at ``create_ep`` time — exactly UCX's lane
    selection, collapsed to the two families this model distinguishes.
    """
    node = local_iface.node
    if (
        remote_iface.node is node
        and node.config.transport.shm_enabled
    ):
        return local_iface.shm_transport
    return local_iface.nic_transport
