"""The PCIe/NIC transport: the paper's send path, re-homed and railed.

This module carries the §4.1 LLP_post machinery that used to live on
:class:`~repro.llp.uct.UctEndpoint` verbatim — same cost sequence, same
TLPs, same trace spans — behind the :class:`~repro.transport.base.Transport`
protocol.  With one rail (the default) every operation is
instruction-for-instruction the pre-refactor path, which is what keeps
the golden timelines bit-identical.

Multi-rail adds a deterministic :class:`RailSelector` in front: a node
with ``transport.rails > 1`` owns one PCIe link + Root Complex + NIC
per rail, each interface owns one queue pair per rail, and every post
picks its rail by policy (round-robin per endpoint, stable
hash-by-peer, or message-size split).  Selection is pure bookkeeping —
no RNG, no simulated time — so a single-rail run never observes it.
"""

from __future__ import annotations

import math
import zlib
from collections.abc import Generator
from typing import Any

from repro.cpu.memory import MemoryType
from repro.nic.descriptor import Message, MessageOp
from repro.pcie.packets import Tlp, TlpType
from repro.sim.engine import SimulationError
from repro.transport.base import UCS_ERR_NO_RESOURCE, UCS_OK, TransportCaps

__all__ = ["PcieNicTransport", "RailSelector"]


class RailSelector:
    """Deterministic rail choice for one interface's posts.

    ``peek`` answers "which rail would this post use" without side
    effects (the UCP re-post loop asks before committing); ``advance``
    moves the round-robin cursor after a successful post.  Busy posts
    retry the same rail, matching a real multi-rail UCT lane that only
    rotates on accepted work.
    """

    def __init__(self, iface: Any) -> None:
        self.iface = iface
        self.config = iface.node.config.transport

    def peek(self, ep: Any, payload_bytes: int = 0) -> int:
        """The rail index the next post on ``ep`` would take."""
        n_rails = len(self.iface.qps)
        if n_rails == 1:
            return 0
        policy = self.config.rail_policy
        if policy == "round_robin":
            return ep.rail_cursor % n_rails
        if policy == "hash_by_peer":
            key = f"{self.iface.name}->{ep.remote_recv_target}"
            return zlib.crc32(key.encode("utf-8")) % n_rails
        # size_split: small payloads keep the latency-tuned rail 0,
        # large ones move to the last rail.
        return 0 if payload_bytes <= self.config.rail_split_bytes else n_rails - 1

    def advance(self, ep: Any) -> None:
        """Commit one successful post (rotates the round-robin cursor)."""
        ep.rail_cursor += 1


class PcieNicTransport:
    """The inter-node transport: LLP_post → PCIe → NIC → fabric."""

    caps = TransportCaps(
        name="pcie_nic", intra_node=False, uses_pcie=True, has_txq=True
    )

    def __init__(self, iface: Any) -> None:
        self.iface = iface
        self.rails = RailSelector(iface)

    # -- resource checks ------------------------------------------------------
    def can_post(self, ep: Any, payload_bytes: int = 0) -> bool:
        """TxQ space on the rail this post would pick."""
        rail = self.rails.peek(ep, payload_bytes)
        return bool(self.iface.qps[rail].txq.has_space)

    def _trace_rail(self, message: Message, rail: int) -> None:
        """Attribute the post to its rail — only on multi-rail nodes,
        so single-rail (golden) timelines gain no records."""
        tracer = self.iface.node.env.tracer
        if len(self.iface.qps) > 1 and tracer.enabled:
            tracer.instant(
                "transport", "rail_select", track=self.iface.name,
                msg=message.msg_id, rail=rail,
                policy=self.rails.config.rail_policy,
            )

    # -- the §4.1 post paths (moved verbatim from UctEndpoint) ----------------
    def post_short(self, ep: Any, op: MessageOp, payload_bytes: int) -> Generator:
        iface = self.iface
        node = iface.node
        cpu = iface.worker.cpu
        nic_cfg = node.config.nic
        if payload_bytes > nic_cfg.inline_max_bytes:
            raise SimulationError(
                f"short post of {payload_bytes}B exceeds the inline limit "
                f"({nic_cfg.inline_max_bytes}B); use put_zcopy"
            )
        profiler = iface.worker.profiler
        rail = self.rails.peek(ep, payload_bytes)
        qp = iface.qps[rail]
        if not qp.txq.has_space:
            iface.busy_posts += 1
            busy = yield from profiler.begin("busy_post")
            yield from cpu.execute("busy_post")
            yield from profiler.end("busy_post", busy)
            return UCS_ERR_NO_RESOURCE

        outer = yield from profiler.begin("llp_post")
        message = Message(
            op=op,
            payload_bytes=payload_bytes,
            inline=True,
            pio=True,
            recv_target=ep.remote_recv_target,
            dst_nic=ep.remote_nic_for(rail),
            qp=qp,
        )
        qp.register_post(message)
        message.stamp("posted", node.env.now)
        self._trace_rail(message, rail)
        tracer = node.env.tracer
        tspan = tracer.begin(
            "llp", "llp_post", track=cpu.name,
            msg=message.msg_id, op=op.value, bytes=payload_bytes,
        )

        # §4.1 step 1: prepare the MD (control segment + inline memcpy).
        start = yield from profiler.begin("md_setup")
        with tracer.span("llp", "md_setup", track=cpu.name, msg=message.msg_id):
            yield from cpu.execute("md_setup")
        yield from profiler.end("md_setup", start)
        # Step 2: store barrier so the MD is written before signalling.
        start = yield from profiler.begin("barrier_md")
        with tracer.span("llp", "barrier_md", track=cpu.name, msg=message.msg_id):
            yield from cpu.execute("barrier_md")
        yield from profiler.end("barrier_md", start)
        # Steps 3-4: DoorBell counter increment + its store barrier.
        start = yield from profiler.begin("barrier_dbc")
        with tracer.span("llp", "barrier_dbc", track=cpu.name, msg=message.msg_id):
            yield from cpu.execute("barrier_dbc")
        yield from profiler.end("barrier_dbc", start)
        # Step 5: the PIO copy into Device-GRE memory, in 64-byte chunks.
        wqe_bytes = nic_cfg.wqe_header_bytes + payload_bytes
        chunks = math.ceil(wqe_bytes / nic_cfg.pio_chunk_bytes)
        start = yield from profiler.begin("pio_copy")
        with tracer.span(
            "llp", "pio_copy", track=cpu.name, msg=message.msg_id, chunks=chunks
        ):
            yield from cpu.execute(
                "pio_copy_64b", mean=chunks * cpu.costs.pio_copy_64b
            )
        yield from profiler.end("pio_copy", start)
        message.stamp("pio_written", node.env.now)
        node.rails[rail].rc.mmio_write(
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=chunks * nic_cfg.pio_chunk_bytes,
                purpose="pio_post",
                message=message,
            )
        )
        # Function-call overhead, branching ("Other" in Figure 4).
        yield from cpu.execute("llp_post_misc")
        tracer.end(tspan)
        yield from profiler.end("llp_post", outer)
        iface.successful_posts += 1
        iface.last_message = message
        self.rails.advance(ep)
        return UCS_OK

    def post_doorbell(self, ep: Any, op: MessageOp, payload_bytes: int) -> Generator:
        iface = self.iface
        node = iface.node
        cpu = iface.worker.cpu
        nic_cfg = node.config.nic
        profiler = iface.worker.profiler
        rail = self.rails.peek(ep, payload_bytes)
        qp = iface.qps[rail]
        if not qp.txq.has_space:
            iface.busy_posts += 1
            busy = yield from profiler.begin("busy_post")
            yield from cpu.execute("busy_post")
            yield from profiler.end("busy_post", busy)
            return UCS_ERR_NO_RESOURCE

        outer = yield from profiler.begin("llp_post")
        message = Message(
            op=op,
            payload_bytes=payload_bytes,
            inline=payload_bytes <= nic_cfg.inline_max_bytes,
            pio=False,
            recv_target=ep.remote_recv_target,
            dst_nic=ep.remote_nic_for(rail),
            qp=qp,
        )
        qp.register_post(message)
        message.stamp("posted", node.env.now)
        self._trace_rail(message, rail)
        tracer = node.env.tracer
        tspan = tracer.begin(
            "llp", "llp_post", track=cpu.name,
            msg=message.msg_id, op=op.value, bytes=payload_bytes,
        )
        yield from cpu.execute("md_setup")
        yield from cpu.execute("barrier_md")
        yield from cpu.execute("barrier_dbc")
        # The DoorBell itself: an 8-byte store to device memory.
        yield from cpu.execute(
            "doorbell_write",
            mean=node.config.memory.write_cost(
                MemoryType.DEVICE_GRE, nic_cfg.doorbell_bytes
            ),
        )
        node.rails[rail].rc.mmio_write(
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=nic_cfg.doorbell_bytes,
                purpose="doorbell",
                message=message,
            )
        )
        yield from cpu.execute("llp_post_misc")
        tracer.end(tspan)
        yield from profiler.end("llp_post", outer)
        iface.successful_posts += 1
        iface.last_message = message
        self.rails.advance(ep)
        return UCS_OK

    def post_one_sided(
        self,
        ep: Any,
        op: MessageOp,
        payload_bytes: int,
        local_buffer: str | None,
        suffix: str,
    ) -> Generator:
        iface = self.iface
        node = iface.node
        cpu = iface.worker.cpu
        nic_cfg = node.config.nic
        profiler = iface.worker.profiler
        rail = self.rails.peek(ep, payload_bytes)
        qp = iface.qps[rail]
        if not qp.txq.has_space:
            iface.busy_posts += 1
            busy = yield from profiler.begin("busy_post")
            yield from cpu.execute("busy_post")
            yield from profiler.end("busy_post", busy)
            return UCS_ERR_NO_RESOURCE

        outer = yield from profiler.begin("llp_post")
        message = Message(
            op=op,
            payload_bytes=payload_bytes,
            inline=True,   # the *request* WQE is small and inlined
            pio=True,
            recv_target=local_buffer or f"{iface.name}.{suffix}",
            dst_nic=ep.remote_nic_for(rail),
            # The requester's NIC name rides in context so the serving
            # NIC can route the response on multi-node fabrics.
            context=node.rails[rail].nic.name,
            qp=qp,
        )
        qp.register_post(message)
        message.stamp("posted", node.env.now)
        self._trace_rail(message, rail)
        tracer = node.env.tracer
        tspan = tracer.begin(
            "llp", "llp_post", track=cpu.name,
            msg=message.msg_id, op=op.value, bytes=payload_bytes,
        )
        yield from cpu.execute("md_setup")
        yield from cpu.execute("barrier_md")
        yield from cpu.execute("barrier_dbc")
        chunks = 1  # a read request WQE fits one PIO chunk
        yield from cpu.execute("pio_copy_64b", mean=chunks * cpu.costs.pio_copy_64b)
        message.stamp("pio_written", node.env.now)
        node.rails[rail].rc.mmio_write(
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=chunks * nic_cfg.pio_chunk_bytes,
                purpose="pio_post",
                message=message,
            )
        )
        yield from cpu.execute("llp_post_misc")
        tracer.end(tspan)
        yield from profiler.end("llp_post", outer)
        iface.successful_posts += 1
        iface.last_message = message
        self.rails.advance(ep)
        return UCS_OK
