"""The intra-node shared-memory transport (CMA/shm-style).

Two ranks on one node never need the NIC: the sender's CPU copies the
payload into a shared segment (an ordinary cacheable memcpy at the
memory model's ``normal_write_64b`` cost, ~100× cheaper per chunk than
the Device-GRE PIO), and after a small hand-off latency the payload is
visible in the receiver's mailbox.  No TLPs cross the PCIe link, no WQE
enters a TxQ, no CQE comes back — the post completes inline, so the UCP
layer marks the request done immediately (the same ``UCS_OK``-inline
contract short posts already have).

Trace records go to the ``transport`` layer so breakdowns can attribute
intra-node vs inter-node components; a PCIe/NIC filter over a pure-shm
message id finds nothing, which the trace tests assert.
"""

from __future__ import annotations

import math
from collections.abc import Generator
from typing import Any

from repro.nic.descriptor import Message, MessageOp
from repro.transport.base import UCS_OK, TransportCaps

__all__ = ["ShmTransport"]


class ShmTransport:
    """Same-node posts through a shared-memory segment."""

    caps = TransportCaps(name="shm", intra_node=True, uses_pcie=False, has_txq=False)

    def __init__(self, iface: Any) -> None:
        self.iface = iface

    def can_post(self, ep: Any, payload_bytes: int = 0) -> bool:
        """Shared memory never busy-posts: the copy always proceeds."""
        return True

    def post_short(self, ep: Any, op: MessageOp, payload_bytes: int) -> Generator:
        return (yield from self._post(ep, op, payload_bytes, ep.remote_recv_target))

    def post_doorbell(self, ep: Any, op: MessageOp, payload_bytes: int) -> Generator:
        # Size makes no protocol difference in shared memory — a zcopy
        # is the same memcpy, just longer.
        return (yield from self._post(ep, op, payload_bytes, ep.remote_recv_target))

    def post_one_sided(
        self,
        ep: Any,
        op: MessageOp,
        payload_bytes: int,
        local_buffer: str | None,
        suffix: str,
    ) -> Generator:
        # A same-node "remote read" degenerates to a local copy landing
        # in the caller's buffer.
        target = local_buffer or f"{ep.iface.name}.{suffix}"
        return (yield from self._post(ep, op, payload_bytes, target))

    # -- implementation -------------------------------------------------------
    def _post(
        self, ep: Any, op: MessageOp, payload_bytes: int, recv_target: str
    ) -> Generator:
        iface = self.iface
        node = iface.node
        cpu = iface.worker.cpu
        config = node.config
        profiler = iface.worker.profiler

        outer = yield from profiler.begin("llp_post")
        message = Message(
            op=op,
            payload_bytes=payload_bytes,
            inline=True,
            pio=False,
            recv_target=recv_target,
            dst_nic=None,
            qp=None,
        )
        message.stamp("posted", node.env.now)
        tracer = node.env.tracer
        tspan = tracer.begin(
            "transport", "shm_post", track=cpu.name,
            msg=message.msg_id, op=op.value, bytes=payload_bytes,
        )
        # Descriptor prep + ordering barrier are CPU work either way.
        yield from cpu.execute("md_setup")
        yield from cpu.execute("barrier_md")
        # The payload copy into the shared segment: cacheable stores.
        copy_64b = config.transport.shm_copy_64b_ns
        if copy_64b is None:
            copy_64b = config.memory.normal_write_64b
        chunks = max(1, math.ceil(payload_bytes / 64))
        yield from cpu.execute("shm_copy_64b", mean=chunks * copy_64b)
        message.stamp("shm_copied", node.env.now)
        # Visibility hand-off (coherence + receiver wakeup), off-CPU.
        node.env.defer(
            self._deliver, config.transport.shm_latency_ns, args=(message,)
        )
        yield from cpu.execute("llp_post_misc")
        tracer.end(tspan)
        yield from profiler.end("llp_post", outer)
        iface.successful_posts += 1
        iface.last_message = message
        return UCS_OK

    def _deliver(self, message: Message) -> None:
        node = self.iface.node
        message.stamp("payload_visible", node.env.now)
        node.memory.mailbox(message.recv_target).try_put(message)
        if node.env.tracer.enabled:
            node.env.tracer.instant(
                "transport", "shm_delivered",
                track=f"{node.name}.shm", msg=message.msg_id,
            )
