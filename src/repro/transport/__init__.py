"""Pluggable transports under UCT: PCIe/NIC rails and intra-node shm.

See :mod:`repro.transport.base` for the protocol and per-peer
resolution, :mod:`repro.transport.nicrail` for the re-homed paper send
path plus multi-rail selection, and :mod:`repro.transport.shm` for the
intra-node shared-memory path.
"""

from repro.transport.base import (
    UCS_ERR_NO_RESOURCE,
    UCS_OK,
    Transport,
    TransportCaps,
    resolve_transport,
)
from repro.transport.config import RAIL_POLICIES, TransportConfig
from repro.transport.nicrail import PcieNicTransport, RailSelector
from repro.transport.shm import ShmTransport

__all__ = [
    "RAIL_POLICIES",
    "UCS_ERR_NO_RESOURCE",
    "UCS_OK",
    "PcieNicTransport",
    "RailSelector",
    "ShmTransport",
    "Transport",
    "TransportCaps",
    "TransportConfig",
    "resolve_transport",
]
