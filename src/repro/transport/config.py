"""Transport-layer configuration: the shm path and multi-rail NICs.

One :class:`TransportConfig` rides inside
:class:`~repro.node.config.SystemConfig` and controls which transports
the UCT layer may resolve per peer (see :mod:`repro.transport.base`)
and how many PCIe/NIC rails a node owns.  The default instance is the
paper's system exactly — one rail, shared-memory selection enabled but
unreachable with one process per node — and is elided from the config's
stable hash while untouched, so cached campaign results stay valid.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RAIL_POLICIES", "TransportConfig"]

#: Recognised multi-rail selection policies.
RAIL_POLICIES = ("round_robin", "hash_by_peer", "size_split")


@dataclass(frozen=True)
class TransportConfig:
    """Pluggable-transport and rail parameters.

    Attributes
    ----------
    shm_enabled:
        Resolve the intra-node shared-memory transport automatically
        when two endpoints live on the same node.  With one process per
        node (the paper's setup) no same-node pair exists, so this flag
        changes nothing.
    shm_latency_ns:
        Hand-off delay between the sender's copy completing and the
        payload becoming visible in the receiver's mailbox (cache
        coherence + wakeup, CMA-style).
    shm_copy_64b_ns:
        CPU copy cost per 64-byte chunk on the shm path; ``None``
        (default) uses the memory model's normal-write cost — an
        intra-node send is an ordinary cacheable memcpy, not a
        Device-GRE PIO.
    rails:
        PCIe/NIC rails per node (>= 1).  Rail 0 is the paper's stack
        with its original component names; extra rails clone it.
    rail_policy:
        How posts pick a rail: ``"round_robin"`` (alternate per
        endpoint), ``"hash_by_peer"`` (stable hash of the peer name,
        keeps a flow on one rail) or ``"size_split"`` (small messages on
        rail 0, large on the last rail).
    rail_split_bytes:
        The ``size_split`` threshold: payloads strictly larger go to
        the last rail.
    """

    shm_enabled: bool = True
    shm_latency_ns: float = 200.0
    shm_copy_64b_ns: float | None = None
    rails: int = 1
    rail_policy: str = "round_robin"
    rail_split_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.shm_latency_ns < 0:
            raise ValueError(f"shm_latency_ns must be >= 0, got {self.shm_latency_ns}")
        if self.shm_copy_64b_ns is not None and self.shm_copy_64b_ns < 0:
            raise ValueError(
                f"shm_copy_64b_ns must be >= 0, got {self.shm_copy_64b_ns}"
            )
        if self.rails < 1:
            raise ValueError(f"a node needs at least one rail, got {self.rails}")
        if self.rail_policy not in RAIL_POLICIES:
            raise ValueError(
                f"unknown rail policy {self.rail_policy!r}; "
                f"choose from {', '.join(RAIL_POLICIES)}"
            )
        if self.rail_split_bytes < 0:
            raise ValueError(
                f"rail_split_bytes must be >= 0, got {self.rail_split_bytes}"
            )
