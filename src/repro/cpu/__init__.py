"""Simulated CPU: sequential core, memory-type write costs, barriers, timer.

The paper measures software with Arm's ``cntvct_el0`` counter on a
ThunderX2 running at 2 GHz.  Here the "CPU" is a sequential executor of
named *segments* — each a code region with a configured mean duration
drawn through the jitter model — plus a virtual timer whose reads cost
time, reproducing the 49.69 ns overhead of the UCS profiling
infrastructure that the paper carefully subtracts.

Components
----------

:class:`CpuCore`
    Executes named segments one after another and accounts busy time.
:class:`SegmentCosts`
    The cost table (ns means) for every software segment in the stack.
:class:`MemoryModel`
    Write costs for Normal vs Device-GRE memory (aarch64 memory types).
:class:`VirtualTimer`
    A ``cntvct_el0``-like counter whose read (isb + mrs) costs time.
"""

from repro.cpu.core import CpuCore
from repro.cpu.costs import SegmentCosts
from repro.cpu.memory import MemoryModel, MemoryType
from repro.cpu.timer import TimerSample, VirtualTimer

__all__ = [
    "CpuCore",
    "MemoryModel",
    "MemoryType",
    "SegmentCosts",
    "TimerSample",
    "VirtualTimer",
]
