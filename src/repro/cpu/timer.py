"""Virtual ``cntvct_el0`` timer with realistic read overhead.

The paper instruments software with UCX's UCS profiling infrastructure,
which reads the Arm generic timer (``isb; mrs x, cntvct_el0``).  The
infrastructure adds a mean 49.69 ns per measurement (σ = 1.48 over 1000
samples), which the authors subtract from all reported numbers.

:class:`VirtualTimer` reproduces that: a read returns the current
simulated time *after* advancing the clock by half the measurement
overhead, so one wrapped region (read–region–read) inflates by the full
overhead on average, exactly like the real infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Environment

__all__ = ["TimerSample", "VirtualTimer"]


@dataclass(frozen=True)
class TimerSample:
    """One timer read: the returned counter value and its read cost."""

    timestamp_ns: float
    read_cost_ns: float


class VirtualTimer:
    """A counter whose reads cost simulated time.

    Parameters
    ----------
    env:
        Simulation environment.
    rng:
        Dedicated random stream for read-cost jitter.
    measurement_overhead_ns:
        Mean total overhead of one wrapped measurement (two reads);
        each read costs half of this.
    overhead_std_ns:
        Standard deviation of one full measurement's overhead.
    """

    def __init__(
        self,
        env: Environment,
        rng: np.random.Generator,
        measurement_overhead_ns: float = 49.69,
        overhead_std_ns: float = 1.48,
    ) -> None:
        if measurement_overhead_ns < 0:
            raise ValueError("measurement overhead must be >= 0")
        if overhead_std_ns < 0:
            raise ValueError("overhead std must be >= 0")
        self.env = env
        self.rng = rng
        self.measurement_overhead_ns = measurement_overhead_ns
        self.overhead_std_ns = overhead_std_ns
        self.reads = 0

    def read_cost(self) -> float:
        """Draw the cost of a single read (half a measurement)."""
        mean = self.measurement_overhead_ns / 2.0
        std = self.overhead_std_ns / 2.0
        if std == 0:
            return mean
        return max(0.0, float(self.rng.normal(mean, std)))

    def read(self):
        """Read the counter (generator; yield from it).

        Advances the clock by the read cost, then returns a
        :class:`TimerSample` whose timestamp is the post-read time —
        matching ``isb`` serialization (the counter is sampled after the
        pipeline drains).
        """
        cost = self.read_cost()
        if cost > 0:
            yield self.env.timeout(cost)
        self.reads += 1
        return TimerSample(timestamp_ns=self.env.now, read_cost_ns=cost)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualTimer reads={self.reads}>"
