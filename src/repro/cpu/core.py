"""The sequential CPU core executing named software segments.

A :class:`CpuCore` is the time-source for everything the paper calls
"CPU": LLP and HLP code regions run *on* a core by yielding from
:meth:`CpuCore.execute`, which advances simulated time by a jittered
duration and records per-segment accounting.  The accounting doubles as
the simulation's ground truth against which the profiling methodology
(which re-measures the same segments with timer overhead and noise) is
validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.costs import SegmentCosts
from repro.sim.engine import Environment
from repro.sim.rng import JitterModel

__all__ = ["CpuCore", "SegmentAccount"]


@dataclass
class SegmentAccount:
    """Accumulated ground-truth time for one named segment."""

    count: int = 0
    total_ns: float = 0.0
    samples: list[float] = field(default_factory=list)

    @property
    def mean_ns(self) -> float:
        """Mean simulated duration of the segment (0 when never run)."""
        return self.total_ns / self.count if self.count else 0.0


class CpuCore:
    """A single simulated core executing segments sequentially.

    Parameters
    ----------
    env:
        Simulation environment.
    costs:
        Cost table with mean durations for named segments.
    jitter:
        Noise model applied to every execution.
    rng:
        Random generator dedicated to this core.
    name:
        Label used in diagnostics and stream naming.
    record_samples:
        When True, keep every per-execution duration (needed by tests
        and by distribution analyses; costs memory on long runs).
    """

    def __init__(
        self,
        env: Environment,
        costs: SegmentCosts,
        jitter: JitterModel,
        rng: np.random.Generator,
        name: str = "cpu",
        record_samples: bool = False,
    ) -> None:
        self.env = env
        self.costs = costs
        self.jitter = jitter
        self.rng = rng
        self.name = name
        self.record_samples = record_samples
        self.accounts: dict[str, SegmentAccount] = {}
        self.busy_ns = 0.0

    def segment_mean(self, segment: str) -> float:
        """Configured mean duration for ``segment`` from the cost table.

        Raises
        ------
        AttributeError
            If the segment is not a field of :class:`SegmentCosts`.
        """
        return getattr(self.costs, segment)

    def execute(self, segment: str, mean: float | None = None):
        """Run ``segment`` on this core (generator; yield from it).

        Parameters
        ----------
        segment:
            Name for accounting.  When ``mean`` is omitted the name must
            be a :class:`SegmentCosts` field.
        mean:
            Override mean duration in ns.

        Yields
        ------
        The timeout advancing simulated time.  Returns the actual
        (jittered) duration in ns.
        """
        nominal = self.segment_mean(segment) if mean is None else mean
        duration = self.jitter.sample(nominal, self.rng)
        account = self.accounts.setdefault(segment, SegmentAccount())
        account.count += 1
        account.total_ns += duration
        if self.record_samples:
            account.samples.append(duration)
        self.busy_ns += duration
        if duration > 0:
            yield self.env.timeout(duration)
        return duration

    def account(self, segment: str) -> SegmentAccount:
        """Accounting entry for ``segment`` (empty if never run)."""
        return self.accounts.get(segment, SegmentAccount())

    def ground_truth_mean(self, segment: str) -> float:
        """Observed mean duration of a segment over the run so far."""
        return self.account(segment).mean_ns

    def utilization(self) -> float:
        """Fraction of elapsed simulated time this core was busy."""
        return self.busy_ns / self.env.now if self.env.now > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CpuCore {self.name!r} busy={self.busy_ns:.1f}ns>"
