"""Cost table for software segments on the simulated CPU.

Every named code region in the LLP/HLP stack has a mean duration here,
in nanoseconds.  The defaults are the paper's Table 1 ground truth for
the ThunderX2 + ConnectX-4 testbed; they are *inputs* to the simulator,
which the measurement methodology then re-derives from noisy runs.

Only mechanistic, directly-exercised segments appear here.  Quantities
the paper reports as *emergent* (the 3.17 ns amortized busy-post Misc,
the 0.96 ns LLP share of send-progress) are produced by the simulation
dynamics, not configured.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["SegmentCosts"]


@dataclass(frozen=True)
class SegmentCosts:
    """Mean durations (ns) of the software segments in the stack.

    Attributes mirror the paper's terminology:

    LLP (UCT-level, §4.1)
        ``md_setup``            – writing the control segment of the
        message descriptor, incl. the inline memcpy of a small payload;
        ``barrier_md``          – ``dmb st`` after the MD is written;
        ``barrier_dbc``         – DoorBell counter increment + ``dmb st``;
        ``pio_copy_64b``        – 64-byte write to Device-GRE memory;
        ``llp_post_misc``       – function-call overhead, branching;
        ``llp_prog``            – load barrier + CQ entry dequeue;
        ``busy_post``           – a failed post attempt (TxQ full).

    Benchmark bookkeeping (§4.2)
        ``measurement_update``  – timestamp + rate-accounting per post.

    HLP (§5): MPICH and UCP segments for initiation and progress.
    """

    # -- LLP_post constituents (Table 1, Figure 4) -------------------------
    md_setup: float = 27.78
    barrier_md: float = 17.33
    barrier_dbc: float = 21.07
    pio_copy_64b: float = 94.25
    llp_post_misc: float = 14.99

    # -- LLP progress / failed posts ---------------------------------------
    llp_prog: float = 61.63
    #: Cost of polling an *empty* CQ (owner-bit read, no dequeue). Not
    #: measured by the paper; a cheap spin compared to the 61.63 ns
    #: successful dequeue.
    llp_prog_empty: float = 15.0
    busy_post: float = 8.99

    #: Cost of taking a completion via an interrupt instead of polling:
    #: IRQ delivery, kernel entry/exit and the context switch back to
    #: the user thread (§2 explains why polling avoids this; not
    #: measured by the paper — a typical Linux round trip).
    interrupt_wakeup: float = 1800.0

    # -- benchmark bookkeeping ----------------------------------------------
    measurement_update: float = 49.69

    # -- HLP initiation (Table 1) --------------------------------------------
    mpich_isend: float = 24.37
    ucp_isend: float = 2.19

    # -- HLP receive-side progress (Table 1, §6) -----------------------------
    mpich_recv_callback: float = 47.99
    ucp_recv_callback: float = 139.78
    mpich_after_progress: float = 36.89

    # -- HLP send-side progress (§6: Post_prog ≈ 59.82, LLP share < 1 ns) ----
    #: Per-request finalisation work in the MPI_Waitall progress engine
    #: (request-state update, completion counter, queue removal).  The
    #: paper's measured Post_prog *emerges* in simulation as the sum of
    #: this, the amortised completion tail-wait, and progress-body
    #: costs; this constant is calibrated so the emergent value matches
    #: the measured 59.82 ns/op.
    mpich_request_finalize: float = 58.7

    #: MPICH blocking-wait overhead incurred before UCP progress even
    #: runs inside MPI_Wait (part of the 293.29 ns in Table 1; not on the
    #: end-to-end critical path as modelled, but simulated for the
    #: MPI_Wait total).
    mpich_wait_entry: float = 208.41

    #: UCP worker-progress body outside the callbacks: Table 1's 150.51 ns
    #: UCP share of MPI_Wait minus the 139.78 ns UCP callback.
    ucp_prog_body: float = 10.73

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"segment cost {field.name!r} must be >= 0, got {value}")

    # -- derived totals used throughout the paper -----------------------------
    @property
    def llp_post(self) -> float:
        """Total LLP_post = MD setup + barriers + PIO copy + misc (175.42)."""
        return (
            self.md_setup
            + self.barrier_md
            + self.barrier_dbc
            + self.pio_copy_64b
            + self.llp_post_misc
        )

    @property
    def hlp_post(self) -> float:
        """HLP share of an MPI_Isend = MPICH + UCP (26.56)."""
        return self.mpich_isend + self.ucp_isend

    @property
    def hlp_rx_prog(self) -> float:
        """HLP share of receive progress = callbacks + post-progress MPICH.

        224.66 ns in the paper: MPICH callback (47.99) + UCP callback
        (139.78) + MPICH work after a successful ucp_worker_progress
        (36.89).
        """
        return self.mpich_recv_callback + self.ucp_recv_callback + self.mpich_after_progress

    @property
    def mpi_wait_ucp_total(self) -> float:
        """UCP share of a successful MPI_Wait (150.51 in Table 1)."""
        return self.ucp_recv_callback + self.ucp_prog_body

    @property
    def mpi_wait_mpich_total(self) -> float:
        """MPICH share of a successful MPI_Wait (293.29 in Table 1)."""
        return self.mpich_wait_entry + self.mpich_recv_callback + self.mpich_after_progress

    @property
    def mpi_wait_total(self) -> float:
        """Total successful MPI_Wait for an MPI_Irecv (443.80 in Table 1)."""
        return self.mpi_wait_mpich_total + self.mpi_wait_ucp_total
