"""aarch64 memory-type write costs (Normal vs Device-GRE).

The paper's §7.1 "Improving the initiation of a message in LLP"
optimization rests on the observation that a 64-byte store to Device-GRE
memory (the memory-mapped NIC doorbell/BlueFlame page) costs 94.25 ns on
ThunderX2 while the same store to Normal (cacheable) memory costs less
than a nanosecond.  :class:`MemoryModel` captures that difference so the
what-if analysis and the integrated-NIC example can vary it.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["MemoryModel", "MemoryType"]


class MemoryType(enum.Enum):
    """aarch64 memory attribute classes relevant to the data path."""

    #: Cacheable system DRAM.
    NORMAL = "normal"
    #: Uncached, gathering/reordering/early-ack device memory — the
    #: mapping used for the NIC's doorbell + PIO (BlueFlame) region.
    DEVICE_GRE = "device-gre"


@dataclass(frozen=True)
class MemoryModel:
    """Per-write-costs of the two memory types, in nanoseconds.

    Writes are issued in up-to-64-byte chunks (a cacheline / one PIO
    chunk in Mellanox InfiniBand); a larger payload costs proportionally
    more chunks.

    Attributes
    ----------
    normal_write_64b:
        A 64-byte store to Normal memory.  "A regular 64-byte memcpy on
        the TX2-based server takes less than a nanosecond" (§7.1).
    device_write_64b:
        A 64-byte store to Device-GRE memory (the PIO copy, 94.25 ns).
    """

    normal_write_64b: float = 0.9
    device_write_64b: float = 94.25

    def __post_init__(self) -> None:
        if self.normal_write_64b < 0 or self.device_write_64b < 0:
            raise ValueError("memory write costs must be >= 0")

    def write_cost(self, memory: MemoryType, nbytes: int) -> float:
        """Cost in ns of storing ``nbytes`` to ``memory``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        chunks = math.ceil(nbytes / 64)
        per_chunk = (
            self.device_write_64b
            if memory is MemoryType.DEVICE_GRE
            else self.normal_write_64b
        )
        return chunks * per_chunk

    @property
    def device_penalty(self) -> float:
        """Ratio of device to normal write cost (>90% slower in paper)."""
        if self.normal_write_64b == 0:
            return float("inf")
        return self.device_write_64b / self.normal_write_64b
