"""The §7 what-if analysis: Figure 17's simulated optimizations.

For a component of value ``c`` inside a metric of total ``T``, reducing
the component's overhead by a fraction ``r`` yields a speedup (verified
against every §7 number, e.g. "a 20% reduction in overhead in the HLP
can speedup injection by up to 6.44%": 0.2 × 85.42 / 264.97 = 6.45%)::

    speedup(r, c) = r · c / T          (fraction of the metric removed)

The multiplicative definition ``T / (T − r·c) − 1`` is also provided
for comparison; the paper plots the former.  "Note that the components
of our models are not concurrent" — reductions therefore compose
additively, and a distributed-system simulation would give "exactly the
same linear speedups" (§7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.components import ComponentTimes
from repro.core.models import EndToEndLatencyModel, OverallInjectionModel

__all__ = ["Metric", "WhatIfAnalysis", "FIG17_REDUCTIONS"]

#: The five evenly spaced reductions on Figure 17's horizontal axis.
FIG17_REDUCTIONS: tuple[float, ...] = (0.10, 0.30, 0.50, 0.70, 0.90)


class Metric(enum.Enum):
    """Which overall metric an optimization targets."""

    #: Overall injection overhead (Equation 2; Figure 17a).
    INJECTION = "injection"
    #: End-to-end latency (§6 model; Figures 17b-d).
    LATENCY = "latency"


@dataclass(frozen=True)
class WhatIfAnalysis:
    """What-if engine over one set of measured component times."""

    times: ComponentTimes

    # -- metric totals ---------------------------------------------------------
    def total(self, metric: Metric) -> float:
        """The metric's modeled total (Eq. 2 or the §6 latency)."""
        if metric is Metric.INJECTION:
            return OverallInjectionModel(self.times).predicted_ns
        return EndToEndLatencyModel(self.times).predicted_ns

    # -- component catalogues (the Figure 17 line sets) --------------------------
    def injection_components(self) -> dict[str, float]:
        """Figure 17a's seven lines (CPU components of injection).

        The metric total carries the *amortised* progress term
        ``post_prog``, of which ``hlp_tx_prog = max(0, post_prog −
        llp_tx_prog)`` is the HLP share; the LLP share inside the metric
        is therefore ``min(llp_tx_prog, post_prog)`` (identical to the
        raw ``llp_tx_prog`` for any measured value set, but keeps every
        line within the metric total for arbitrary inputs).
        """
        t = self.times
        llp_tx_prog = min(t.llp_tx_prog, t.post_prog)
        return {
            "HLP": t.hlp_post + t.hlp_tx_prog,
            "LLP": t.llp_post + llp_tx_prog,
            "LLP_post": t.llp_post,
            "PIO": t.pio_copy,
            "HLP_tx_prog": t.hlp_tx_prog,
            "HLP_post": t.hlp_post,
            "LLP_tx_prog": llp_tx_prog,
        }

    def latency_cpu_components(self) -> dict[str, float]:
        """Figure 17b's seven lines (CPU components of latency)."""
        t = self.times
        return {
            "HLP": t.hlp_post + t.hlp_rx_prog,
            "LLP": t.llp_post + t.llp_prog,
            "HLP_rx_prog": t.hlp_rx_prog,
            "LLP_post": t.llp_post,
            "PIO": t.pio_copy,
            "HLP_post": t.hlp_post,
            "LLP_prog": t.llp_prog,
        }

    def latency_io_components(self) -> dict[str, float]:
        """Figure 17c's three lines (I/O components of latency).

        "Integrated NIC" treats the whole I/O subsystem (both PCIe
        crossings plus the RC write to memory) as one reducible block —
        the SoC-integration optimization of §7.1.
        """
        t = self.times
        return {
            "Integrated NIC": 2 * t.pcie + t.rc_to_mem_8b,
            "PCIe": 2 * t.pcie,
            "RC-to-MEM": t.rc_to_mem_8b,
        }

    def latency_network_components(self) -> dict[str, float]:
        """Figure 17d's two lines (network components of latency)."""
        return {"Wire": self.times.wire, "Switch": self.times.switch}

    # -- speedups ---------------------------------------------------------------
    def speedup(
        self, metric: Metric, component_ns: float, reduction: float
    ) -> float:
        """Fractional overall speedup from reducing a component.

        Parameters
        ----------
        metric:
            INJECTION or LATENCY.
        component_ns:
            The component's contribution to the metric.
        reduction:
            Fractional overhead reduction in [0, 1] (0.9 = 10× faster).
        """
        self._check_reduction(reduction)
        total = self.total(metric)
        if component_ns < 0 or component_ns > total + 1e-9:
            raise ValueError(
                f"component ({component_ns} ns) must lie within the metric total "
                f"({total} ns)"
            )
        return reduction * component_ns / total

    def multiplicative_speedup(
        self, metric: Metric, component_ns: float, reduction: float
    ) -> float:
        """Alternative definition: T / (T − r·c) − 1."""
        self._check_reduction(reduction)
        total = self.total(metric)
        remaining = total - reduction * component_ns
        if remaining <= 0:
            raise ValueError("reduction removes the entire metric")
        return total / remaining - 1.0

    def sweep(
        self,
        metric: Metric,
        components: dict[str, float],
        reductions: tuple[float, ...] = FIG17_REDUCTIONS,
    ) -> dict[str, list[tuple[float, float]]]:
        """One Figure 17 panel: name → [(reduction, speedup), ...]."""
        return {
            name: [(r, self.speedup(metric, value, r)) for r in reductions]
            for name, value in components.items()
        }

    def combined_speedup(
        self, metric: Metric, reductions: dict[str, tuple[float, float]]
    ) -> float:
        """Speedup from reducing several components at once.

        Because the model components are strictly sequential ("the
        components of our models are not concurrent", §7), combined
        reductions compose additively.

        Parameters
        ----------
        metric:
            INJECTION or LATENCY.
        reductions:
            ``name → (component_ns, reduction_fraction)``.  Names are
            free-form labels; the ns values must be disjoint pieces of
            the metric (the caller is responsible for not
            double-counting, e.g. not passing both "LLP" and
            "LLP_post").

        Raises
        ------
        ValueError
            If the summed removals exceed the metric total — the
            tell-tale of double-counted components.
        """
        total = self.total(metric)
        removed = 0.0
        for name, (component_ns, reduction) in reductions.items():
            self._check_reduction(reduction)
            if component_ns < 0:
                raise ValueError(f"component {name!r} has negative time")
            removed += reduction * component_ns
        if removed > total + 1e-9:
            raise ValueError(
                f"combined removals ({removed:.2f} ns) exceed the metric total "
                f"({total:.2f} ns); components overlap or are double-counted"
            )
        return removed / total

    # -- the four published panels ---------------------------------------------------
    def figure17a(self, reductions: tuple[float, ...] = FIG17_REDUCTIONS):
        """Injection speedups from CPU-component reductions."""
        return self.sweep(Metric.INJECTION, self.injection_components(), reductions)

    def figure17b(self, reductions: tuple[float, ...] = FIG17_REDUCTIONS):
        """Latency speedups from CPU-component reductions."""
        return self.sweep(Metric.LATENCY, self.latency_cpu_components(), reductions)

    def figure17c(self, reductions: tuple[float, ...] = FIG17_REDUCTIONS):
        """Latency speedups from I/O-component reductions."""
        return self.sweep(Metric.LATENCY, self.latency_io_components(), reductions)

    def figure17d(self, reductions: tuple[float, ...] = FIG17_REDUCTIONS):
        """Latency speedups from network-component reductions."""
        return self.sweep(Metric.LATENCY, self.latency_network_components(), reductions)

    @staticmethod
    def _check_reduction(reduction: float) -> None:
        if not 0.0 <= reduction <= 1.0:
            raise ValueError(f"reduction must be in [0, 1], got {reduction}")
