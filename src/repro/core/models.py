"""The paper's analytical models (§4.2, §4.3, §6).

Four models, each a thin dataclass over :class:`ComponentTimes`:

* :class:`InjectionModelLlp` — Equation 1:
  ``Inj_overhead = LLP_post + LLP_prog + Misc`` (295.73 ns);
* :class:`LatencyModelLlp` — §4.3:
  ``Latency = LLP_post + 2·PCIe + Network + RC-to-MEM(xB) + LLP_prog``
  (1135.8 ns);
* :class:`OverallInjectionModel` — Equation 2:
  ``CPU_time = Post + Post_prog + Misc`` (264.97 ns);
* :class:`EndToEndLatencyModel` — §6:
  the LLP latency plus ``HLP_post`` and ``HLP_rx_prog`` (1387.02 ns).

Plus the two §4.2 helper relations: :func:`gen_completion` and the
lower bound on the poll interval :func:`min_poll_interval`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.components import ComponentTimes

__all__ = [
    "EndToEndLatencyModel",
    "InjectionModelLlp",
    "LatencyModelLlp",
    "OverallInjectionModel",
    "RdmaReadLatencyModel",
    "gen_completion",
    "min_poll_interval",
]


def gen_completion(times: ComponentTimes) -> float:
    """Time for the NIC to generate a completion after a post (§4.2).

    ``gen_completion = 2 × (PCIe + Network) + RC-to-MEM(64B)``: the
    message crosses PCIe and the network once, the ACK returns across
    the network, and the 64-byte CQE crosses PCIe and is written to
    memory by the RC.
    """
    return 2 * (times.pcie + times.network) + times.rc_to_mem_64b


def min_poll_interval(times: ComponentTimes) -> int:
    """Lower bound on the posts-per-poll interval p (§4.2).

    ``p >= gen_completion / LLP_post`` ensures that by the time the
    user polls, a completion for an earlier message is available, so
    polling never waits on the wire.
    """
    if times.llp_post <= 0:
        raise ValueError("LLP_post must be positive to bound the poll interval")
    return math.ceil(gen_completion(times) / times.llp_post)


@dataclass(frozen=True)
class InjectionModelLlp:
    """Equation 1: LLP-level injection overhead.

    When a single core posts continuously, messages reach the NIC every
    ``CPU_time = LLP_post + LLP_prog + Misc`` because the PCIe traversal
    of one message overlaps the CPU work of the next (Figure 5).
    """

    times: ComponentTimes

    @property
    def llp_post(self) -> float:
        """The LLP_post term."""
        return self.times.llp_post

    @property
    def llp_prog(self) -> float:
        """The LLP_prog term."""
        return self.times.llp_prog

    @property
    def misc(self) -> float:
        """One busy post + one measurement update per message (§4.2)."""
        return self.times.perftest_misc

    @property
    def predicted_ns(self) -> float:
        """Modeled injection overhead (295.73 ns with paper values)."""
        return self.llp_post + self.llp_prog + self.misc

    def components(self) -> dict[str, float]:
        """Name → ns, in presentation order (Figure 8)."""
        return {
            "llp_post": self.llp_post,
            "llp_prog": self.llp_prog,
            "misc": self.misc,
        }


@dataclass(frozen=True)
class LatencyModelLlp:
    """§4.3: latency of a short send-receive message at the LLP level.

    ``Latency = LLP_post + 2·PCIe + Network + RC-to-MEM(xB) + LLP_prog``
    """

    times: ComponentTimes
    #: Payload size; the paper evaluates 8 bytes (RC-to-MEM(8B)).
    payload_bytes: int = 8

    @property
    def rc_to_mem(self) -> float:
        """RC-to-MEM for this payload (only 8B and 64B are measured)."""
        if self.payload_bytes == 8:
            return self.times.rc_to_mem_8b
        if self.payload_bytes == 64:
            return self.times.rc_to_mem_64b
        # Linear interpolation/extrapolation between the two anchors.
        slope = (self.times.rc_to_mem_64b - self.times.rc_to_mem_8b) / 56.0
        return self.times.rc_to_mem_8b + slope * (self.payload_bytes - 8)

    @property
    def predicted_ns(self) -> float:
        """Modeled LLP-level latency (1135.8 ns with paper values)."""
        t = self.times
        return t.llp_post + 2 * t.pcie + t.network + self.rc_to_mem + t.llp_prog

    def components(self) -> dict[str, float]:
        """Name → ns, in on-path order (Figure 10 plus LLP_prog)."""
        t = self.times
        return {
            "llp_post": t.llp_post,
            "tx_pcie": t.pcie,
            "wire": t.wire,
            "switch": t.switch,
            "rx_pcie": t.pcie,
            "rc_to_mem": self.rc_to_mem,
            "llp_prog": t.llp_prog,
        }


@dataclass(frozen=True)
class OverallInjectionModel:
    """Equation 2: full-stack injection overhead.

    ``CPU_time = Post + Post_prog + Misc`` where Post includes the HLP
    initiation, Post_prog the (amortised) progress engine, and Misc the
    amortised busy-post time.
    """

    times: ComponentTimes

    @property
    def post(self) -> float:
        """Post = HLP_post + LLP_post."""
        return self.times.post

    @property
    def post_prog(self) -> float:
        """The per-op send-progress term."""
        return self.times.post_prog

    @property
    def misc(self) -> float:
        """The amortised busy-post term."""
        return self.times.misc_injection

    @property
    def predicted_ns(self) -> float:
        """Modeled overall injection overhead (264.97 ns with paper values)."""
        return self.post + self.post_prog + self.misc

    def components(self) -> dict[str, float]:
        """Name → ns (Figure 12)."""
        return {"misc": self.misc, "post_prog": self.post_prog, "post": self.post}


@dataclass(frozen=True)
class EndToEndLatencyModel:
    """§6: end-to-end MPI latency of a small message.

    ``Latency = HLP_post + LLP_post + 2·PCIe + Network + RC-to-MEM(xB)
    + LLP_prog + HLP_rx_prog``.  MPI_Irecv initiation is assumed to
    overlap the transfer and is not charged.
    """

    times: ComponentTimes
    payload_bytes: int = 8

    @property
    def llp_model(self) -> LatencyModelLlp:
        """The underlying §4.3 LLP latency model."""
        return LatencyModelLlp(self.times, self.payload_bytes)

    @property
    def predicted_ns(self) -> float:
        """Modeled end-to-end latency (1387.02 ns with paper values)."""
        return self.llp_model.predicted_ns + self.times.hlp_post + self.times.hlp_rx_prog

    def components(self) -> dict[str, float]:
        """Name → ns, in on-path order (Figure 13's nine bars)."""
        t = self.times
        return {
            "hlp_post": t.hlp_post,
            "llp_post": t.llp_post,
            "tx_pcie": t.pcie,
            "wire": t.wire,
            "switch": t.switch,
            "rx_pcie": t.pcie,
            "rc_to_mem": self.llp_model.rc_to_mem,
            "llp_prog": t.llp_prog,
            "hlp_rx_prog": t.hlp_rx_prog,
        }


@dataclass(frozen=True)
class RdmaReadLatencyModel:
    """Extension: latency of an RDMA *read* (get) at the LLP level.

    Not in the paper (which measures RDMA writes and send-receive), but
    fully determined by the same components: the request crosses PCIe
    and the network, the target NIC pays a full PCIe round trip plus
    the memory read to fetch the data (no target CPU), the response
    crosses the network back, and the payload lands through the
    initiator's RC::

        Get = LLP_post + PCIe + Network            (request out)
            + 2·PCIe + mem_read                    (target DMA read)
            + Network + PCIe + RC-to-MEM(xB)       (response in)
            + LLP_prog                             (initiator poll)
    """

    times: ComponentTimes
    payload_bytes: int = 8

    @property
    def rc_to_mem(self) -> float:
        """RC-to-MEM for this payload size."""
        return LatencyModelLlp(self.times, self.payload_bytes).rc_to_mem

    @property
    def predicted_ns(self) -> float:
        """Modeled RDMA-read latency (1883.59 ns with paper values)."""
        t = self.times
        return (
            t.llp_post
            + 2 * t.network
            + 4 * t.pcie
            + t.mem_read
            + self.rc_to_mem
            + t.llp_prog
        )

    def components(self) -> dict[str, float]:
        """Name → ns, in on-path order."""
        t = self.times
        return {
            "llp_post": t.llp_post,
            "tx_pcie": t.pcie,
            "network_request": t.network,
            "target_pcie_round_trip": 2 * t.pcie,
            "target_mem_read": t.mem_read,
            "network_response": t.network,
            "rx_pcie": t.pcie,
            "rc_to_mem": self.rc_to_mem,
            "llp_prog": t.llp_prog,
        }
