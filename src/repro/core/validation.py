"""Model-vs-observation validation (the paper's accuracy claims).

The paper validates each analytical model against a benchmark
observation and reports the margin:

* LLP injection (Eq. 1): 295.73 ns modeled vs 282.33 ns observed (<5%);
* LLP latency (§4.3): 1135.8 ns vs 1190.25 ns observed after deducting
  half a measurement update (<5%);
* overall injection (Eq. 2): 264.97 ns vs 263.91 ns (<1%);
* end-to-end latency (§6): 1387.02 ns vs 1336 ns (<4%).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ValidationResult", "validate"]


@dataclass(frozen=True)
class ValidationResult:
    """The outcome of comparing a model prediction to an observation."""

    name: str
    modeled_ns: float
    observed_ns: float
    margin: float

    def __post_init__(self) -> None:
        if self.observed_ns <= 0:
            raise ValueError(f"observed time must be positive, got {self.observed_ns}")
        if self.margin < 0:
            raise ValueError(f"margin must be >= 0, got {self.margin}")

    @property
    def error(self) -> float:
        """Signed relative error (modeled − observed) / observed."""
        return (self.modeled_ns - self.observed_ns) / self.observed_ns

    @property
    def error_percent(self) -> float:
        """Absolute relative error in percent."""
        return abs(self.error) * 100.0

    @property
    def within_margin(self) -> bool:
        """Whether the model lands inside the declared margin."""
        return abs(self.error) <= self.margin

    def __str__(self) -> str:
        verdict = "OK" if self.within_margin else "FAIL"
        return (
            f"{self.name}: modeled {self.modeled_ns:.2f} ns vs observed "
            f"{self.observed_ns:.2f} ns ({self.error_percent:.2f}% error, "
            f"margin {self.margin * 100:.0f}%) [{verdict}]"
        )


def validate(
    name: str, modeled_ns: float, observed_ns: float, margin: float = 0.05
) -> ValidationResult:
    """Build a :class:`ValidationResult` (default margin: the paper's 5%)."""
    return ValidationResult(
        name=name, modeled_ns=modeled_ns, observed_ns=observed_ns, margin=margin
    )
