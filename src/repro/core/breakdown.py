"""Percentage breakdowns for every figure in the paper (Figs 4, 8, 10-16).

Each ``figN_*`` function takes a :class:`ComponentTimes` and returns
one or more :class:`Breakdown` objects whose percentages reproduce the
corresponding figure.  With :meth:`ComponentTimes.paper` they match the
published numbers to rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.components import Category, ComponentTimes
from repro.core.models import EndToEndLatencyModel, OverallInjectionModel

__all__ = [
    "Breakdown",
    "fig4_llp_post",
    "fig8_injection_llp",
    "fig10_latency_llp",
    "fig11_hlp",
    "fig12_overall_injection",
    "fig13_end_to_end",
    "fig14_hlp_vs_llp",
    "fig15_categories",
    "fig16_on_node",
]


@dataclass(frozen=True)
class Breakdown:
    """An ordered attribution of a total time to labelled parts."""

    title: str
    parts: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        for label, value in self.parts:
            if value < 0:
                raise ValueError(f"breakdown part {label!r} is negative: {value}")

    @classmethod
    def build(cls, title: str, parts: dict[str, float]) -> "Breakdown":
        """Construct from an ordered label → ns mapping."""
        return cls(title=title, parts=tuple(parts.items()))

    @property
    def total_ns(self) -> float:
        """Sum of all parts."""
        return sum(value for _, value in self.parts)

    @property
    def labels(self) -> tuple[str, ...]:
        """Part labels, in presentation order."""
        return tuple(label for label, _ in self.parts)

    def value(self, label: str) -> float:
        """Time in ns of one part."""
        for part_label, value in self.parts:
            if part_label == label:
                return value
        raise KeyError(f"no part {label!r} in breakdown {self.title!r}")

    def percent(self, label: str) -> float:
        """Share of one part, in percent of the total."""
        total = self.total_ns
        return 100.0 * self.value(label) / total if total else 0.0

    def percentages(self) -> dict[str, float]:
        """All parts as label → percent (sums to 100 for nonzero totals)."""
        return {label: self.percent(label) for label, _ in self.parts}

    def as_rows(self) -> list[tuple[str, float, float]]:
        """(label, ns, percent) rows for table rendering."""
        return [(label, value, self.percent(label)) for label, value in self.parts]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{label}={self.percent(label):.2f}%" for label, _ in self.parts)
        return f"<Breakdown {self.title!r}: {inner}>"


def fig4_llp_post(times: ComponentTimes) -> Breakdown:
    """Figure 4: breakdown of time in an LLP_post.

    Paper: MD setup 15.84%, Barrier for MD 9.88%, Barrier for DBC
    12.01%, PIO copy 53.79%, Other 8.49%.
    """
    return Breakdown.build(
        "LLP_post",
        {
            "md_setup": times.md_setup,
            "barrier_md": times.barrier_md,
            "barrier_dbc": times.barrier_dbc,
            "pio_copy": times.pio_copy,
            "other": times.llp_post_other,
        },
    )


def fig8_injection_llp(
    times: ComponentTimes, misc_variant: str = "model"
) -> Breakdown:
    """Figure 8: breakdown of the LLP-level injection overhead.

    The paper is internally inconsistent here (see DESIGN.md): the
    Equation-1 model uses Misc = busy post + measurement update
    (58.68 ns), while Figure 8's printed percentages back out Misc =
    measurement update alone (49.69 ns → 61.18 / 21.49 / 17.33).

    ``misc_variant="model"`` uses the Equation-1 Misc;
    ``misc_variant="figure"`` uses the Figure-8 variant.
    """
    if misc_variant == "model":
        misc = times.perftest_misc
    elif misc_variant == "figure":
        misc = times.measurement_update
    else:
        raise ValueError(f"misc_variant must be 'model' or 'figure', got {misc_variant!r}")
    return Breakdown.build(
        "Injection overhead (LLP)",
        {"llp_post": times.llp_post, "llp_prog": times.llp_prog, "misc": misc},
    )


def fig10_latency_llp(times: ComponentTimes) -> Breakdown:
    """Figure 10: breakdown of LLP-level latency.

    The figure shows the six on-path hardware/software stages and —
    matching the paper exactly — omits LLP_prog even though the §4.3
    model includes it.  Paper: 16.33 / 12.80 / 25.58 / 10.05 / 12.80 /
    22.43 %.
    """
    return Breakdown.build(
        "Latency (LLP)",
        {
            "llp_post": times.llp_post,
            "tx_pcie": times.pcie,
            "wire": times.wire,
            "switch": times.switch,
            "rx_pcie": times.pcie,
            "rc_to_mem": times.rc_to_mem_8b,
        },
    )


def fig11_hlp(times: ComponentTimes) -> dict[str, Breakdown]:
    """Figure 11: HLP time split between UCP and MPICH.

    Two bars: MPI_Isend (UCP 8.24% / MPICH 91.76%) and the receive-side
    MPI_Wait (UCP 33.91% / MPICH 66.09%).
    """
    return {
        "mpi_isend": Breakdown.build(
            "MPI_Isend (HLP)",
            {"ucp": times.ucp_isend, "mpich": times.mpich_isend},
        ),
        "rx_mpi_wait": Breakdown.build(
            "RX MPI_Wait (HLP)",
            {"ucp": times.mpi_wait_ucp, "mpich": times.mpi_wait_mpich},
        ),
    }


def fig12_overall_injection(times: ComponentTimes) -> Breakdown:
    """Figure 12: overall injection overhead.

    Paper: Misc 1.20%, Post_prog 22.58%, Post 76.23%.
    """
    return Breakdown.build(
        "Overall injection overhead", OverallInjectionModel(times).components()
    )


def fig13_end_to_end(times: ComponentTimes) -> Breakdown:
    """Figure 13: end-to-end latency, nine components in ns."""
    return Breakdown.build(
        "End-to-end latency", EndToEndLatencyModel(times).components()
    )


def fig14_hlp_vs_llp(times: ComponentTimes) -> dict[str, Breakdown]:
    """Figure 14: HLP vs LLP during initiation and progress.

    Paper: Initiation LLP 86.85% / HLP 13.15%; TX progress LLP 1.61% /
    HLP 98.39%; RX progress LLP 21.53% / HLP 78.47%.
    """
    return {
        "initiation": Breakdown.build(
            "Initiation", {"llp": times.llp_post, "hlp": times.hlp_post}
        ),
        "tx_progress": Breakdown.build(
            "TX progress", {"llp": times.llp_tx_prog, "hlp": times.hlp_tx_prog}
        ),
        "rx_progress": Breakdown.build(
            "RX progress", {"llp": times.llp_prog, "hlp": times.hlp_rx_prog}
        ),
    }


def fig15_categories(times: ComponentTimes) -> dict[str, Breakdown]:
    """Figure 15: end-to-end latency by category, with sub-breakdowns.

    Paper: CPU 35.2% / I/O 37.2% / Network 27.6%; within CPU LLP
    48.55% / HLP 51.45%; within I/O RC-to-MEM 46.70% / PCIe 53.30%;
    within Network Wire 71.79% / Switch 28.21%.
    """
    e2e = fig13_end_to_end(times)
    by_category: dict[Category, float] = {c: 0.0 for c in Category}
    for label, value in e2e.parts:
        by_category[times.latency_component_category(label)] += value
    return {
        "top": Breakdown.build(
            "End-to-end latency by category",
            {category.value: by_category[category] for category in Category},
        ),
        "cpu": Breakdown.build(
            "CPU",
            {
                "llp": times.llp_post + times.llp_prog,
                "hlp": times.hlp_post + times.hlp_rx_prog,
            },
        ),
        "io": Breakdown.build(
            "I/O",
            {"rc_to_mem": times.rc_to_mem_8b, "pcie": 2 * times.pcie},
        ),
        "network": Breakdown.build(
            "Network", {"wire": times.wire, "switch": times.switch}
        ),
    }


def fig16_on_node(times: ComponentTimes) -> dict[str, Breakdown]:
    """Figure 16: time spent on the nodes (initiator vs target).

    Paper: Target 66.20% / Initiator 33.80%; initiator I/O 40.50% / CPU
    59.50%; target I/O 56.93% / CPU 43.07%; target I/O = RC-to-MEM
    63.67% / PCIe 36.33%.
    """
    initiator_cpu = times.hlp_post + times.llp_post
    initiator_io = times.pcie
    target_cpu = times.llp_prog + times.hlp_rx_prog
    target_io = times.pcie + times.rc_to_mem_8b
    return {
        "top": Breakdown.build(
            "On-node time",
            {
                "initiator": initiator_cpu + initiator_io,
                "target": target_cpu + target_io,
            },
        ),
        "initiator": Breakdown.build(
            "Initiator", {"cpu": initiator_cpu, "io": initiator_io}
        ),
        "target": Breakdown.build("Target", {"cpu": target_cpu, "io": target_io}),
        "target_io": Breakdown.build(
            "Target I/O", {"rc_to_mem": times.rc_to_mem_8b, "pcie": times.pcie}
        ),
    }
