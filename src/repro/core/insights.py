"""Programmatic statements of the paper's §6 insights.

Each function evaluates one published insight against a set of
component times and returns an :class:`Insight` carrying the verdict
and the supporting numbers, so the claims can be re-checked on any
system (or any simulator calibration) rather than taken on faith.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.breakdown import (
    fig12_overall_injection,
    fig14_hlp_vs_llp,
    fig15_categories,
    fig16_on_node,
)
from repro.core.components import ComponentTimes

__all__ = [
    "Insight",
    "insight1_post_dominates_injection",
    "insight2_no_category_dominates_latency",
    "insight3_target_dominates_on_node",
    "insight4_hlp_dominates_progress",
    "all_insights",
]


@dataclass(frozen=True)
class Insight:
    """One checked insight: its verdict and the evidence."""

    number: int
    statement: str
    holds: bool
    evidence: dict[str, float]

    def __str__(self) -> str:
        verdict = "HOLDS" if self.holds else "DOES NOT HOLD"
        details = ", ".join(f"{k}={v:.2f}" for k, v in self.evidence.items())
        return f"Insight {self.number} [{verdict}]: {self.statement} ({details})"


def insight1_post_dominates_injection(times: ComponentTimes) -> Insight:
    """Insight 1: with unsignaled completions minimising the progress
    "semantic bottleneck", Post dominates (>70%) the overall injection
    overhead, and within Post the LLP dominates."""
    breakdown = fig12_overall_injection(times)
    post_share = breakdown.percent("post")
    llp_share_of_post = 100.0 * times.llp_post / times.post if times.post else 0.0
    return Insight(
        number=1,
        statement=(
            "Post dominates the overall injection overhead (>70%), and the "
            "LLP dominates within Post"
        ),
        holds=post_share > 70.0 and llp_share_of_post > 50.0,
        evidence={
            "post_percent": post_share,
            "llp_share_of_post_percent": llp_share_of_post,
        },
    )


def insight2_no_category_dominates_latency(times: ComponentTimes) -> Insight:
    """Insight 2: no single category dominates the end-to-end latency
    (CPU, I/O and Network all contribute the same order of magnitude),
    the network is under a third, and on-node time (CPU + I/O)
    dominates."""
    top = fig15_categories(times)["top"]
    cpu = top.percent("CPU")
    io = top.percent("I/O")
    network = top.percent("Network")
    return Insight(
        number=2,
        statement=(
            "CPU, I/O and Network each contribute comparably; the network is "
            "less than a third; most overhead is on-node"
        ),
        holds=max(cpu, io, network) < 50.0
        and network < 100.0 / 3.0
        and (cpu + io) > 2 * network,
        evidence={"cpu_percent": cpu, "io_percent": io, "network_percent": network},
    )


def insight3_target_dominates_on_node(times: ComponentTimes) -> Insight:
    """Insight 3: the majority of on-node time is on the target node;
    the target is I/O-heavy (RC-to-MEM the biggest piece) while the
    initiator is software-heavy (a consequence of PIO)."""
    parts = fig16_on_node(times)
    target_share = parts["top"].percent("target")
    target_io = parts["target"].percent("io")
    initiator_cpu = parts["initiator"].percent("cpu")
    rc_share_of_target_io = parts["target_io"].percent("rc_to_mem")
    return Insight(
        number=3,
        statement=(
            "most on-node time is on the target; target time is mostly I/O "
            "(dominated by RC-to-MEM); initiator time is mostly software"
        ),
        holds=target_share > 50.0
        and target_io > 50.0
        and initiator_cpu > 50.0
        and rc_share_of_target_io > 50.0,
        evidence={
            "target_percent": target_share,
            "target_io_percent": target_io,
            "initiator_cpu_percent": initiator_cpu,
            "rc_to_mem_share_of_target_io": rc_share_of_target_io,
        },
    )


def insight4_hlp_dominates_progress(times: ComponentTimes) -> Insight:
    """Insight 4: the HLP dominates the progress of both send and
    receive operations, and receive progress is several times costlier
    than send progress (4.78× in the paper)."""
    parts = fig14_hlp_vs_llp(times)
    hlp_tx = parts["tx_progress"].percent("hlp")
    hlp_rx = parts["rx_progress"].percent("hlp")
    tx_total = parts["tx_progress"].total_ns
    rx_total = parts["rx_progress"].total_ns
    ratio = rx_total / tx_total if tx_total else float("inf")
    return Insight(
        number=4,
        statement=(
            "HLP dominates both send and receive progress; receive progress "
            "is several times costlier than send progress"
        ),
        holds=hlp_tx > 50.0 and hlp_rx > 50.0 and ratio > 2.0,
        evidence={
            "hlp_share_tx_percent": hlp_tx,
            "hlp_share_rx_percent": hlp_rx,
            "rx_over_tx_ratio": ratio,
        },
    )


def all_insights(times: ComponentTimes) -> list[Insight]:
    """Evaluate all four §6 insights."""
    return [
        insight1_post_dominates_injection(times),
        insight2_no_category_dominates_latency(times),
        insight3_target_dominates_on_node(times),
        insight4_hlp_dominates_progress(times),
    ]
