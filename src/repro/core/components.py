"""Component taxonomy and the measured-times container.

:class:`ComponentTimes` is the single input every model and breakdown
consumes.  Its fields are the paper's Table 1 rows plus the §6 derived
send-progress quantities; derived aggregates (Network, HLP_post,
Post...) are properties so they can never drift out of sync.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields

__all__ = ["Category", "ComponentTimes"]


class Category(enum.Enum):
    """The paper's three top-level component classes (Figure 1)."""

    CPU = "CPU"
    IO = "I/O"
    NETWORK = "Network"


@dataclass(frozen=True)
class ComponentTimes:
    """Measured mean times (ns) of every component on the critical path.

    Defaults are the paper's measurements (Table 1 and §6) on the
    ThunderX2 + ConnectX-4 + InfiniBand testbed.  Instantiate with
    different values (e.g. from :mod:`repro.analysis` runs against the
    simulator, or from your own hardware) to re-run every analysis.
    """

    # -- LLP post constituents (Table 1 / Figure 4) -----------------------
    md_setup: float = 27.78
    barrier_md: float = 17.33
    barrier_dbc: float = 21.07
    pio_copy: float = 94.25
    llp_post_other: float = 14.99

    # -- LLP progress and benchmark bookkeeping -----------------------------
    llp_prog: float = 61.63
    busy_post: float = 8.99
    measurement_update: float = 49.69

    # -- I/O ------------------------------------------------------------------
    pcie: float = 137.49
    rc_to_mem_8b: float = 240.96
    #: Never reported by the paper; defaults to the linear RC-to-MEM
    #: model of :class:`repro.pcie.config.PcieConfig` at 64 bytes.
    rc_to_mem_64b: float = 256.08

    #: Host-memory read latency at the RC (MRd → CplD turnaround), the
    #: target-side cost of serving an RDMA read.  An extension beyond
    #: the paper's measurements (its PIO paths never DMA-read); default
    #: mirrors :class:`repro.pcie.config.PcieConfig.mem_read_ns`.
    mem_read: float = 90.0

    # -- network -----------------------------------------------------------------
    wire: float = 274.81
    switch: float = 108.0

    # -- HLP initiation (Table 1) ---------------------------------------------------
    mpich_isend: float = 24.37
    ucp_isend: float = 2.19

    # -- HLP receive progress (Table 1 / §6) -------------------------------------
    mpich_recv_callback: float = 47.99
    ucp_recv_callback: float = 139.78
    mpich_after_progress: float = 36.89
    mpi_wait_mpich: float = 293.29
    mpi_wait_ucp: float = 150.51

    # -- HLP send progress (§6) -----------------------------------------------------
    #: Total per-op progress overhead for sends (Post_prog).
    post_prog: float = 59.82
    #: The LLP share of Post_prog ("less than a nanosecond" amortised
    #: over the c = 64 unsignaled-completion period: 61.63 / 64).
    llp_tx_prog: float = 0.96
    #: Amortised busy-post time per operation (Misc in Equation 2).
    misc_injection: float = 3.17

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if value < 0:
                raise ValueError(f"component time {field.name!r} must be >= 0")

    # -- canonical instances ------------------------------------------------------
    @classmethod
    def paper(cls) -> "ComponentTimes":
        """The paper's measured values, verbatim."""
        return cls()

    # -- derived aggregates (the paper's composite terms) ----------------------------
    @property
    def llp_post(self) -> float:
        """LLP_post total (175.42): the five Figure 4 constituents."""
        return (
            self.md_setup
            + self.barrier_md
            + self.barrier_dbc
            + self.pio_copy
            + self.llp_post_other
        )

    @property
    def network(self) -> float:
        """Network = Wire + Switch (382.81)."""
        return self.wire + self.switch

    @property
    def hlp_post(self) -> float:
        """HLP_post = MPICH + UCP initiation (26.56)."""
        return self.mpich_isend + self.ucp_isend

    @property
    def post(self) -> float:
        """Post = HLP_post + LLP_post (201.98): total initiation time."""
        return self.hlp_post + self.llp_post

    @property
    def hlp_tx_prog(self) -> float:
        """HLP share of send progress: Post_prog minus the LLP share."""
        return max(0.0, self.post_prog - self.llp_tx_prog)

    @property
    def hlp_rx_prog(self) -> float:
        """HLP_rx_prog (224.66): UCP + MPICH callbacks + post-progress
        MPICH work on the receive critical path (§6)."""
        return self.mpich_recv_callback + self.ucp_recv_callback + self.mpich_after_progress

    @property
    def perftest_misc(self) -> float:
        """Misc of the LLP-level injection model (58.68): one busy post
        plus one measurement update per message (§4.2 / Table 1)."""
        return self.busy_post + self.measurement_update

    # -- category attribution for the end-to-end latency ----------------------------
    def latency_component_category(self, name: str) -> Category:
        """Category of a Figure 13 latency component."""
        mapping = {
            "hlp_post": Category.CPU,
            "llp_post": Category.CPU,
            "llp_prog": Category.CPU,
            "hlp_rx_prog": Category.CPU,
            "tx_pcie": Category.IO,
            "rx_pcie": Category.IO,
            "rc_to_mem": Category.IO,
            "wire": Category.NETWORK,
            "switch": Category.NETWORK,
        }
        try:
            return mapping[name]
        except KeyError:
            raise KeyError(
                f"unknown latency component {name!r}; expected one of {sorted(mapping)}"
            ) from None
