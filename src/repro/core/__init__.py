"""The paper's primary contribution: analytical models and analyses.

This package is pure computation over measured component times — no
simulation.  Feed it a :class:`ComponentTimes` (from the paper's
Table 1 via :meth:`ComponentTimes.paper`, or re-measured from the
simulator by :mod:`repro.analysis`) and it produces:

* the injection-overhead models (Equation 1, LLP-only; Equation 2,
  full stack) and the latency models (§4.3 LLP-level; §6 end-to-end);
* every percentage breakdown in the paper (Figures 4, 8, 10-16);
* the what-if optimization analysis (Figure 17, §7);
* model-vs-observation validation with the paper's error margins;
* programmatic statements of the §6 insights.
"""

from repro.core.components import Category, ComponentTimes
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
    gen_completion,
    min_poll_interval,
)
from repro.core.breakdown import (
    Breakdown,
    fig4_llp_post,
    fig8_injection_llp,
    fig10_latency_llp,
    fig11_hlp,
    fig12_overall_injection,
    fig13_end_to_end,
    fig14_hlp_vs_llp,
    fig15_categories,
    fig16_on_node,
)
from repro.core.validation import ValidationResult, validate
from repro.core.whatif import Metric, WhatIfAnalysis

__all__ = [
    "Breakdown",
    "Category",
    "ComponentTimes",
    "EndToEndLatencyModel",
    "InjectionModelLlp",
    "LatencyModelLlp",
    "Metric",
    "OverallInjectionModel",
    "ValidationResult",
    "WhatIfAnalysis",
    "fig10_latency_llp",
    "fig11_hlp",
    "fig12_overall_injection",
    "fig13_end_to_end",
    "fig14_hlp_vs_llp",
    "fig15_categories",
    "fig16_on_node",
    "fig4_llp_post",
    "fig8_injection_llp",
    "gen_completion",
    "min_poll_interval",
    "validate",
]
