"""Declarative experiment campaigns: specs → parallel runs → records.

The orchestration layer above the benchmarks.  A campaign is *data*: a
:class:`CampaignSpec` names a workload, a base
:class:`~repro.node.config.SystemConfig`, fixed parameters, sweep axes
(config paths or workload arguments) and seeds.  :func:`run_campaign`
expands the spec, serves unchanged points from an on-disk
:class:`ResultCache`, fans the rest across a ``multiprocessing`` pool
with per-point failure isolation, and returns structured
:class:`RunRecord`s instead of bare floats.

Quick tour::

    from repro.campaign import CampaignSpec, SweepAxis, run_campaign
    from repro.node import SystemConfig

    spec = CampaignSpec(
        name="txq-depth",
        workload="put_bw",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(SweepAxis("nic.txq_depth", (1, 2, 8, 32, 128)),),
        params={"n_messages": 300, "warmup": 150},
    )
    result = run_campaign(spec, jobs=4, cache_dir=".campaign-cache")
    for depth, ns in result.rows("nic.txq_depth", "mean_injection_overhead_ns"):
        print(depth, ns)
"""

from repro.campaign.cache import ResultCache, code_version
from repro.campaign.records import CampaignResult, RunRecord
from repro.campaign.runner import run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    SweepAxis,
    SweepPoint,
    apply_config_overrides,
)
from repro.campaign.workloads import get_workload, register_workload, workload_names

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "ResultCache",
    "RunRecord",
    "SweepAxis",
    "SweepPoint",
    "apply_config_overrides",
    "code_version",
    "get_workload",
    "register_workload",
    "run_campaign",
    "workload_names",
]
