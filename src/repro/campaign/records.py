"""Structured run records: what one sweep point produced, as data.

A :class:`RunRecord` replaces the bare floats the old benchmark drivers
printed: it carries the full input identity of the point (workload,
parameters, config overrides, seed, cache key), the measurement dict the
workload returned, execution metadata (wall-clock duration, worker id,
cache hit/miss) and — for crashed points — the error instead of an
aborted campaign.

Records are plain JSON in both directions, so campaign outputs can be
archived, diffed and post-processed without importing the simulator.
Measurement values come straight from the deterministic simulation, so
serial and parallel executions of the same spec produce byte-identical
``measurements_json()`` output.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any

__all__ = ["CampaignResult", "RunRecord"]

#: Record status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"


@dataclass
class RunRecord:
    """Everything known about one executed (or cached, or crashed) point."""

    campaign: str
    index: int
    workload: str
    seed: int
    #: Workload keyword arguments for this point (sweep + fixed params).
    params: dict[str, Any] = field(default_factory=dict)
    #: Dotted-path config overrides applied on top of the base config.
    config_overrides: dict[str, Any] = field(default_factory=dict)
    #: Stable hash of the fully resolved :class:`SystemConfig`.
    config_hash: str = ""
    #: Cache key: digest of (workload, config, params, seed, code version).
    cache_key: str = ""
    status: str = STATUS_OK
    #: The workload's measurement dict (empty for failed points).
    measurements: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    error_type: str | None = None
    traceback: str | None = None
    #: True when the point was killed by the spec's per-point
    #: ``timeout_s`` watchdog (status is ``error`` in that case).
    timeout: bool = False
    #: Execution attempts consumed (1 unless the spec allows retries).
    attempts: int = 1
    #: Host wall-clock seconds spent executing the point (0 for hits).
    duration_s: float = 0.0
    #: Identifier of the worker process that ran the point.
    worker: str = ""
    cache_hit: bool = False
    #: Trace summary (span counts, per-layer totals) when the campaign
    #: ran with ``spec.trace``; ``None`` otherwise.
    trace: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """True when the workload completed without raising."""
        return self.status == STATUS_OK

    def to_dict(self) -> dict[str, Any]:
        """The record as plain JSON-encodable data."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(**payload)

    def to_json(self) -> str:
        """One-line canonical JSON (stable key order)."""
        return json.dumps(self.to_dict(), sort_keys=True)


@dataclass
class CampaignResult:
    """All records of one campaign execution, in sweep-point order."""

    name: str
    workload: str
    records: list[RunRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.records.sort(key=lambda record: record.index)

    # -- selection ---------------------------------------------------------
    @property
    def ok_records(self) -> list[RunRecord]:
        """Records whose workload completed."""
        return [record for record in self.records if record.ok]

    @property
    def failures(self) -> list[RunRecord]:
        """Records whose workload raised."""
        return [record for record in self.records if not record.ok]

    @property
    def cache_hits(self) -> int:
        """How many points were served from the result cache."""
        return sum(1 for record in self.records if record.cache_hit)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of points served from cache."""
        return self.cache_hits / len(self.records) if self.records else 0.0

    def values(self, key: str) -> list[Any]:
        """One measurement across all successful points, in order."""
        return [record.measurements[key] for record in self.ok_records]

    def rows(self, axis: str, key: str) -> list[tuple[Any, Any]]:
        """(axis value, measurement) pairs across successful points.

        ``axis`` may name a sweep parameter or a dotted config override.
        """
        pairs = []
        for record in self.ok_records:
            if axis == "seed":
                position: Any = record.seed
            elif axis in record.params:
                position = record.params[axis]
            else:
                position = record.config_overrides[axis]
            pairs.append((position, record.measurements[key]))
        return pairs

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        """All records as a JSON array (stable key order)."""
        return json.dumps(
            [record.to_dict() for record in self.records], sort_keys=True, indent=2
        )

    def measurements_json(self) -> str:
        """Only the deterministic content: inputs and measurements.

        Excludes host-side metadata (duration, worker, cache flags), so
        serial and parallel runs of one spec compare byte-identically.
        """
        payload = [
            {
                "index": record.index,
                "workload": record.workload,
                "seed": record.seed,
                "params": record.params,
                "config_overrides": record.config_overrides,
                "status": record.status,
                "measurements": record.measurements,
                "error_type": record.error_type,
            }
            for record in self.records
        ]
        return json.dumps(payload, sort_keys=True)

    def save(self, path) -> None:
        """Write :meth:`to_json` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def render(self) -> str:
        """A human-readable summary table of the campaign."""
        header = (
            f"campaign {self.name!r}: workload={self.workload} "
            f"points={len(self.records)} ok={len(self.ok_records)} "
            f"failed={len(self.failures)} cache_hits={self.cache_hits}"
        )
        lines = [header]
        for record in self.records:
            inputs = {**record.config_overrides, **record.params}
            label = ", ".join(f"{k}={v}" for k, v in inputs.items()) or "-"
            flag = "cached" if record.cache_hit else f"{record.duration_s:.2f}s"
            if record.ok:
                # Sorted so fresh and cache-loaded records (whose dicts
                # round-trip through sort_keys JSON) render identically.
                body = ", ".join(
                    f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in sorted(record.measurements.items())
                )
            else:
                body = f"{record.error_type}: {record.error}"
            if record.trace is not None:
                body += f" [traced: {record.trace.get('spans', 0)} spans]"
            lines.append(
                f"  [{record.index:>3}] seed={record.seed} {label} "
                f"({flag}) -> {record.status}: {body}"
            )
        return "\n".join(lines)
