"""On-disk result cache for completed sweep points.

The implementation lives in :mod:`repro.serve.store` — the serving
tier's content-addressed result store absorbed this cache, so campaign
sweeps, serve-tier queries and the sampled verifier all read and write
one address space: a directory of ``<key>.json`` payloads keyed by the
stable digest of (workload, resolved config, params, seed, code
version).  Warming a campaign cache warms the serve tier and vice
versa; a re-run after any code change recomputes, while a re-run of an
unchanged campaign is served entirely from disk.

Writes are atomic (unique temp file + ``os.replace``), so any number
of concurrent workers — including workers of *different* campaigns
sharing one cache directory — can write without a reader ever seeing
a torn file.

Only successful records are cached: a crashed point is recorded in the
campaign output but retried on the next invocation.
"""

from __future__ import annotations

from typing import Any

from repro.serve.store import ResultStore, code_version, query_key

__all__ = ["ResultCache", "code_version", "point_cache_key"]


def point_cache_key(
    workload: str, config: Any, params: dict[str, Any], seed: int
) -> str:
    """The cache key of one sweep point (= the serve tier's query key)."""
    return query_key(workload, config, params, seed)


class ResultCache(ResultStore):
    """The campaign-facing name of the content-addressed result store."""
