"""On-disk result cache for completed sweep points.

One JSON file per cache key.  A key digests everything that determines a
point's measurements — workload name, resolved config, parameters, seed
and the *code version* (a digest of every ``repro`` source file) — so a
re-run after any code change recomputes, while a re-run of an unchanged
campaign is served entirely from disk.

Only successful records are cached: a crashed point is recorded in the
campaign output but retried on the next invocation.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import tempfile
from typing import Any

import repro
from repro.sim.hashing import stable_digest

__all__ = ["ResultCache", "code_version"]


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed ``repro`` package's source text.

    Any edit to any module changes the digest, invalidating every cache
    entry keyed with it — stale results can never survive a code change.
    """
    root = pathlib.Path(repro.__file__).parent
    sources = sorted(root.rglob("*.py"))
    import hashlib

    digest = hashlib.sha256()
    for path in sources:
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def point_cache_key(
    workload: str, config: Any, params: dict[str, Any], seed: int
) -> str:
    """The cache key of one sweep point."""
    return stable_digest(
        {
            "workload": workload,
            "config": config,
            "params": params,
            "seed": seed,
            "code": code_version(),
        }
    )


class ResultCache:
    """A directory of ``<key>.json`` record payloads."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached record payload for ``key``, or None."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn write from a killed worker must not poison reruns.
            return None

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically (write + rename)."""
        path = self._path(key)
        fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultCache {self.directory} entries={len(self)}>"
