"""Campaign execution: fan sweep points out, isolate failures, cache.

The runner turns a :class:`~repro.campaign.spec.CampaignSpec` into a
:class:`~repro.campaign.records.CampaignResult`:

1. every point is first looked up in the on-disk result cache (when a
   ``cache_dir`` is given) — hits cost one JSON read;
2. misses execute through a work-stealing executor (``jobs > 1``; see
   :class:`repro.serve.executor.WorkStealingExecutor`) or inline
   (``jobs == 1``).  Pending points sit in one shared queue and each
   worker steals the next one the moment it finishes its previous
   point, so the schedule balances itself even when per-point costs
   are wildly uneven — a worker stuck on a 64-rank collective no
   longer strands the short points that a strided pre-deal would have
   pinned behind it.  A point that raises is captured as an ``error``
   record — with type, message and traceback — and the rest of the
   campaign continues.  A spec-level ``timeout_s`` arms a SIGALRM
   watchdog around each point, so a hung simulation becomes a timeout
   record instead of a wedged campaign, and ``retries`` re-attempts
   errored points with exponential backoff;
3. successful records are written back to the cache *by the worker that
   produced them*, point by point, so a campaign killed halfway resumes
   from its last completed point on the next run.

Measurements come from the deterministic simulator, so the parallel and
serial schedules produce byte-identical
:meth:`~repro.campaign.records.CampaignResult.measurements_json` output.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback as traceback_module
from collections.abc import Callable
from typing import Any

from repro.campaign.cache import ResultCache, point_cache_key
from repro.campaign.records import STATUS_ERROR, STATUS_OK, CampaignResult, RunRecord
from repro.campaign.spec import CampaignSpec, SweepPoint
from repro.campaign.workloads import get_workload
from repro.serve.executor import WorkStealingExecutor
from repro.sim.hashing import canonicalize

__all__ = ["PointTimeout", "run_campaign"]


class PointTimeout(Exception):
    """A sweep point exceeded the spec's per-point wall-clock budget."""


def _run_with_timeout(fn: Callable[[], Any], timeout_s: float | None) -> Any:
    """Run ``fn`` under a SIGALRM watchdog of ``timeout_s`` host seconds.

    The watchdog needs a real-time signal delivered to the executing
    thread, which Python only supports on the main thread of a process
    — true inline and in fork/spawn pool workers alike.  Elsewhere (or
    without ``timeout_s``) the call runs unguarded.
    """
    if timeout_s is None:
        return fn()
    armable = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not armable:  # pragma: no cover - non-POSIX / embedded thread
        return fn()

    def _on_alarm(signum, frame):
        raise PointTimeout(f"point exceeded timeout_s={timeout_s}")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_point(payload: tuple) -> dict[str, Any]:
    """Run one sweep point; never raises (errors become the record).

    Top-level so it pickles into pool workers.  ``payload`` is the
    point plus identity/policy fields precomputed by the parent.  The
    attempt loop applies the spec's timeout and retry policy; a
    successful record is written straight into the result cache so a
    killed campaign resumes from its last completed point.
    """
    (
        campaign,
        index,
        workload_name,
        config,
        params,
        seed,
        overrides,
        key,
        trace,
        timeout_s,
        retries,
        retry_backoff_s,
        cache_dir,
    ) = payload
    record: dict[str, Any] = {
        "campaign": campaign,
        "index": index,
        "workload": workload_name,
        "seed": seed,
        "params": dict(params),
        "config_overrides": dict(overrides),
        "config_hash": config.stable_hash(),
        "cache_key": key,
        "worker": f"{multiprocessing.current_process().name}:{os.getpid()}",
        "cache_hit": False,
        "trace": None,
    }

    def _attempt() -> dict[str, Any]:
        workload = get_workload(workload_name)
        if trace:
            from repro.trace import trace_session

            with trace_session() as session:
                measurements = workload(config, **params)
            record["trace"] = session.summary()
        else:
            measurements = workload(config, **params)
        if not isinstance(measurements, dict):
            raise TypeError(
                f"workload {workload_name!r} returned "
                f"{type(measurements).__name__}, expected a measurement dict"
            )
        return measurements

    start = time.perf_counter()
    attempts = 0
    while True:
        attempts += 1
        try:
            measurements = _run_with_timeout(_attempt, timeout_s)
            record.update(
                status=STATUS_OK,
                # canonicalize() coerces numpy scalars so records stay JSON.
                measurements={k: canonicalize(v) for k, v in measurements.items()},
                error=None,
                error_type=None,
                traceback=None,
                timeout=False,
            )
            break
        except Exception as exc:
            record.update(
                status=STATUS_ERROR,
                measurements={},
                error=str(exc),
                error_type=type(exc).__name__,
                traceback=traceback_module.format_exc(),
                timeout=isinstance(exc, PointTimeout),
            )
        if attempts > retries:
            break
        if retry_backoff_s > 0:
            time.sleep(retry_backoff_s * 2 ** (attempts - 1))
    record["attempts"] = attempts
    record["duration_s"] = time.perf_counter() - start
    if cache_dir is not None and record["status"] == STATUS_OK:
        ResultCache(cache_dir).put(key, record)
    return record


def _point_payload(
    spec: CampaignSpec,
    point: SweepPoint,
    key: str,
    cache_dir: str | os.PathLike | None,
) -> tuple:
    return (
        spec.name,
        point.index,
        point.workload,
        point.config,
        point.params,
        point.seed,
        point.config_overrides,
        key,
        spec.trace,
        spec.timeout_s,
        spec.retries,
        spec.retry_backoff_s,
        cache_dir,
    )


def run_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
) -> CampaignResult:
    """Execute every point of ``spec`` and return the structured result.

    Parameters
    ----------
    jobs:
        Worker processes for cache misses.  ``1`` runs inline (no
        subprocesses); results are identical either way.
    cache_dir:
        Directory of the on-disk result cache; ``None`` disables
        caching.  With ``spawn``-started workers, custom workloads
        registered at runtime must be importable module-level functions.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    # Traced campaigns bypass the cache: cached records carry no trace
    # summary, and silently returning them would drop the tracing.
    effective_cache_dir = cache_dir if cache_dir is not None and not spec.trace else None
    cache = ResultCache(effective_cache_dir) if effective_cache_dir is not None else None
    points = spec.points()

    records: dict[int, RunRecord] = {}
    pending: list[tuple] = []
    for point in points:
        key = point_cache_key(point.workload, point.config, point.params, point.seed)
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            record = RunRecord.from_dict(cached)
            record.campaign = spec.name
            record.index = point.index
            record.cache_hit = True
            record.duration_s = 0.0
            records[point.index] = record
        else:
            pending.append(_point_payload(spec, point, key, effective_cache_dir))

    if pending:
        if jobs > 1 and len(pending) > 1:
            workers = min(jobs, len(pending))
            # Work stealing: every pending point sits in one shared
            # queue and each worker pulls the next the moment it
            # finishes — the schedule balances itself even when
            # per-point costs are uneven.  _execute_point never raises
            # (errors become the record), so map cannot abort early.
            with WorkStealingExecutor(_execute_point, workers) as executor:
                outcomes = executor.map(pending)
        else:
            outcomes = [_execute_point(payload) for payload in pending]
        # Workers already wrote their own successes into the cache
        # (point by point, for resumability) — nothing to put here.
        for payload in outcomes:
            record = RunRecord.from_dict(payload)
            records[record.index] = record

    return CampaignResult(
        name=spec.name,
        workload=spec.workload,
        records=[records[index] for index in sorted(records)],
    )
