"""The workload registry: names → uniform benchmark callables.

Every campaign workload has the same signature::

    workload(config: SystemConfig, **params) -> dict[str, float | int]

taking a fully resolved configuration and returning a flat dict of
JSON-encodable measurements — never simulator objects.  That uniformity
is what lets the runner execute any workload in a worker process and
cache, serialize and compare results without knowing what ran.

Built-in workloads resolve lazily from dotted ``module:function``
entries, so importing the campaign layer does not drag in every
benchmark (and the benchmark/analysis layers may themselves import the
campaign layer without cycles).  :func:`register_workload` adds custom
entries at runtime.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable
from typing import Any

from repro.node.config import SystemConfig

__all__ = ["get_workload", "register_workload", "workload_names"]

Workload = Callable[..., dict[str, Any]]

#: name → callable, or "module:function" resolved on first use.
_REGISTRY: dict[str, Workload | str] = {
    "put_bw": "repro.bench.perftest:put_bw_workload",
    "am_lat": "repro.bench.perftest:am_lat_workload",
    "osu_mr": "repro.bench.osu:osu_message_rate_workload",
    "osu_latency": "repro.bench.osu:osu_latency_workload",
    "multicore_put_bw": "repro.bench.multicore:multicore_workload",
    "uct_bandwidth": "repro.bench.bandwidth:bandwidth_workload",
    "put_oneway_latency": "repro.campaign.workloads:put_oneway_latency_workload",
    "whatif_speedup": "repro.campaign.workloads:whatif_speedup_workload",
    "replication": "repro.analysis.replication:replication_workload",
    "selftest": "repro.campaign.workloads:selftest_workload",
    # Scale-out collectives (node count, topology, algorithm are all
    # sweepable parameters — see repro.collectives.workloads).
    "allreduce": "repro.collectives.workloads:allreduce_workload",
    "bcast": "repro.collectives.workloads:bcast_workload",
    "barrier": "repro.collectives.workloads:barrier_workload",
    # Datacenter traffic patterns and app skeletons (pattern, node
    # count, ranks-per-node, topology all sweepable — repro.traffic).
    "traffic": "repro.traffic.workloads:traffic_pattern_workload",
    "shuffle": "repro.traffic.workloads:shuffle_workload",
    "incast": "repro.traffic.workloads:incast_workload",
    "outcast": "repro.traffic.workloads:outcast_workload",
    "halo": "repro.traffic.workloads:halo_workload",
    "stencil": "repro.traffic.workloads:stencil_workload",
    "pserver": "repro.traffic.workloads:pserver_workload",
    "randomaccess": "repro.traffic.workloads:randomaccess_workload",
}


def register_workload(name: str, workload: Workload | str) -> None:
    """Register (or replace) a workload under ``name``.

    ``workload`` is either a callable with the uniform signature or a
    lazy ``"module:function"`` string.
    """
    _REGISTRY[name] = workload


def workload_names() -> list[str]:
    """All registered workload names, sorted."""
    return sorted(_REGISTRY)


def get_workload(name: str) -> Workload:
    """Resolve ``name`` to its callable, importing lazily if needed."""
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {', '.join(workload_names())}"
        ) from None
    if isinstance(entry, str):
        module_name, _, attribute = entry.partition(":")
        module = importlib.import_module(module_name)
        entry = getattr(module, attribute)
        _REGISTRY[name] = entry
    return entry


# -- workloads defined at the campaign layer -------------------------------


def put_oneway_latency_workload(
    config: SystemConfig, payload_bytes: int = 8
) -> dict[str, Any]:
    """One-way put latency: post start → payload visible in target memory.

    Picks the PIO+inline path for payloads within the NIC's inline
    limit and the DoorBell+DMA path beyond it — the §2 crossover the
    message-size ablation sweeps.
    """
    from repro.llp.uct import UCS_OK, UctWorker
    from repro.node.testbed import Testbed

    tb = Testbed(config)
    worker = UctWorker(tb.node1)
    iface = worker.create_iface()
    remote = UctWorker(tb.node2).create_iface()
    ep = iface.create_ep(remote)
    inline = payload_bytes <= tb.config.nic.inline_max_bytes

    def body():
        if inline:
            status = yield from ep.put_short(payload_bytes)
        else:
            status = yield from ep.put_zcopy(payload_bytes)
        if status != UCS_OK:
            raise RuntimeError(f"put returned status {status!r}")

    tb.env.run(until=tb.env.process(body(), name="post"))
    tb.run()
    message = iface.last_message
    return {
        "one_way_latency_ns": message.interval("posted", "payload_visible"),
        "payload_bytes": payload_bytes,
        "path": "pio_inline" if inline else "doorbell_dma",
    }


def whatif_speedup_workload(
    config: SystemConfig,
    metric: str = "latency",
    component: str = "HLP",
    reduction: float = 0.5,
    source: str = "paper",
) -> dict[str, Any]:
    """One Figure 17 grid point: overall speedup from one reduction.

    Evaluates the paper's published component times (``source="paper"``,
    the only supported source); the measured-times variant of the grid
    runs the heavyweight ``replication`` workload instead.
    """
    from repro.core.components import ComponentTimes
    from repro.core.whatif import Metric, WhatIfAnalysis

    if source != "paper":
        raise ValueError(f"unsupported component-times source {source!r}")
    analysis = WhatIfAnalysis(ComponentTimes.paper())
    chosen = Metric(metric)
    if chosen is Metric.INJECTION:
        catalogue = analysis.injection_components()
    else:
        catalogue = {
            **analysis.latency_cpu_components(),
            **analysis.latency_io_components(),
            **analysis.latency_network_components(),
        }
    value = catalogue[component]
    return {
        "component_ns": value,
        "speedup": analysis.speedup(chosen, value, reduction),
    }


def selftest_workload(
    config: SystemConfig,
    fail: bool = False,
    value: float = 1.0,
    sleep_s: float = 0.0,
) -> dict[str, Any]:
    """A trivial workload used by the campaign layer's own tests.

    Raises when ``fail`` is true, exercising per-point failure
    isolation without paying for a simulation; ``sleep_s`` burns host
    wall-clock, exercising the per-point timeout watchdog.
    """
    if fail:
        raise ValueError("selftest workload asked to fail")
    if sleep_s > 0:
        import time

        time.sleep(sleep_s)
    return {"value": value, "seed": config.seed}
