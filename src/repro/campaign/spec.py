"""Declarative experiment specifications.

A :class:`CampaignSpec` is the complete, data-only description of an
experiment: a base :class:`~repro.node.config.SystemConfig`, a workload
name from the registry, fixed workload parameters, any number of sweep
axes and a set of noise seeds.  Expanding the spec yields the cartesian
product of axes × seeds as :class:`SweepPoint`s, each carrying a fully
resolved config — which is all the runner needs to execute, cache and
record the point.

Sweep axes target either the configuration (dotted paths into the
nested ``SystemConfig`` dataclasses, e.g. ``nic.txq_depth``) or the
workload's keyword arguments (e.g. ``payload_bytes``); plain names
default to workload parameters.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.node.config import SystemConfig

__all__ = ["CampaignSpec", "SweepAxis", "SweepPoint", "apply_config_overrides"]

#: Axis targets.
TARGET_CONFIG = "config"
TARGET_PARAM = "param"
TARGET_AUTO = "auto"

_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(SystemConfig))


@dataclass(frozen=True)
class SweepAxis:
    """One swept dimension: a name and the values it takes.

    Parameters
    ----------
    name:
        A workload keyword argument, or a dotted path into the config
        (``"nic.txq_depth"``) — or a top-level ``SystemConfig`` field.
    values:
        The points along this axis.
    target:
        ``"config"``, ``"param"`` or ``"auto"`` (default).  Auto treats
        dotted names and ``SystemConfig`` field names as config
        overrides and everything else as a workload parameter.
    """

    name: str
    values: tuple[Any, ...]
    target: str = TARGET_AUTO

    def __post_init__(self) -> None:
        if self.target not in (TARGET_CONFIG, TARGET_PARAM, TARGET_AUTO):
            raise ValueError(f"unknown axis target {self.target!r}")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", tuple(self.values))

    @property
    def is_config(self) -> bool:
        """True when this axis overrides the configuration."""
        if self.target == TARGET_CONFIG:
            return True
        if self.target == TARGET_PARAM:
            return False
        return "." in self.name or self.name in _CONFIG_FIELDS


def apply_config_overrides(
    config: SystemConfig, overrides: dict[str, Any]
) -> SystemConfig:
    """Apply dotted-path overrides to a nested frozen-dataclass config.

    ``{"nic.txq_depth": 4}`` rebuilds ``config.nic`` with the new depth
    and the config with the new nic — the originals are untouched.
    """
    for path, value in overrides.items():
        parts = path.split(".")
        chain = [config]
        for attr in parts[:-1]:
            chain.append(getattr(chain[-1], attr))
        leaf_owner = chain[-1]
        if not hasattr(leaf_owner, parts[-1]):
            raise AttributeError(
                f"config override {path!r}: {type(leaf_owner).__name__} "
                f"has no field {parts[-1]!r}"
            )
        rebuilt = dataclasses.replace(leaf_owner, **{parts[-1]: value})
        for owner, attr in zip(reversed(chain[:-1]), reversed(parts[:-1])):
            rebuilt = dataclasses.replace(owner, **{attr: rebuilt})
        config = rebuilt
    return config


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved execution unit of a campaign."""

    index: int
    workload: str
    config: SystemConfig
    params: dict[str, Any]
    seed: int
    config_overrides: dict[str, Any]


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment: config + workload + sweep axes + seeds."""

    name: str
    workload: str
    base_config: SystemConfig = field(default_factory=SystemConfig.paper_testbed)
    axes: tuple[SweepAxis, ...] = ()
    params: dict[str, Any] = field(default_factory=dict)
    seeds: tuple[int, ...] = (2019,)
    #: Run every point inside a :func:`repro.trace.trace_session` and
    #: attach the trace summary (span counts, per-layer totals) to its
    #: :class:`~repro.campaign.records.RunRecord`.  Traced points bypass
    #: the result cache: cached records carry no trace.
    trace: bool = False
    #: Wall-clock budget per point, in host seconds.  A point that
    #: exceeds it becomes a ``STATUS_ERROR`` record with its ``timeout``
    #: marker set and the campaign continues.  ``None`` disables the
    #: watchdog (the pre-hardening behaviour).
    timeout_s: float | None = None
    #: Extra attempts for a point that errors or times out (0 = fail
    #: fast).  Useful against host-side flakiness — the simulator itself
    #: is deterministic, so a deterministic workload error will simply
    #: fail ``retries + 1`` times.
    retries: int = 0
    #: Host seconds slept before attempt *n*'s retry, doubled each time
    #: (``retry_backoff_s * 2**(n-1)``).
    retry_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        names = [axis.name for axis in self.axes]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate sweep axes in {names}")

    @property
    def n_points(self) -> int:
        """Total sweep points: product of axis sizes × number of seeds."""
        total = len(self.seeds)
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def points(self) -> list[SweepPoint]:
        """Expand the spec into concrete sweep points.

        Seeds vary fastest; axes vary left to right.  Every point's
        config carries its seed, so two points never share a random
        stream even when their axis values coincide.
        """
        points: list[SweepPoint] = []
        value_grid = [axis.values for axis in self.axes]
        for combo in itertools.product(*value_grid):
            config_overrides: dict[str, Any] = {}
            param_overrides: dict[str, Any] = {}
            for axis, value in zip(self.axes, combo):
                if axis.is_config:
                    config_overrides[axis.name] = value
                else:
                    param_overrides[axis.name] = value
            for seed in self.seeds:
                config = apply_config_overrides(self.base_config, config_overrides)
                config = config.evolve(seed=seed)
                points.append(
                    SweepPoint(
                        index=len(points),
                        workload=self.workload,
                        config=config,
                        params={**self.params, **param_overrides},
                        seed=seed,
                        config_overrides=dict(config_overrides),
                    )
                )
        return points
