"""One driver per table/figure: the per-experiment regeneration index.

Each ``experiment_*`` function renders the reproduction of one artefact
from the paper's evaluation, given a set of component times (the
paper's, or ones re-measured from the simulator by
:func:`repro.analysis.measure_component_times`).  The benchmark harness
under ``benchmarks/`` calls these and prints the reports, so a full
``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure.
"""

from __future__ import annotations

from repro.analysis.stats import DistributionSummary
from repro.core.breakdown import (
    fig4_llp_post,
    fig8_injection_llp,
    fig10_latency_llp,
    fig11_hlp,
    fig12_overall_injection,
    fig13_end_to_end,
    fig14_hlp_vs_llp,
    fig15_categories,
    fig16_on_node,
)
from repro.core.components import ComponentTimes
from repro.core.insights import all_insights
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
)
from repro.core.validation import validate
from repro.core.whatif import WhatIfAnalysis
from repro.reporting.figures import render_breakdown_bar, render_histogram, render_series
from repro.reporting.tables import render_breakdown_table, render_table1

__all__ = [
    "experiment_table1",
    "experiment_fig4",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig10",
    "experiment_fig11",
    "experiment_fig12",
    "experiment_fig13",
    "experiment_fig14",
    "experiment_fig15",
    "experiment_fig16",
    "experiment_fig17",
    "experiment_fig17_campaign",
    "experiment_insights",
    "experiment_replication",
    "experiment_validation",
]


def experiment_table1(
    times: ComponentTimes, reference: ComponentTimes | None = None
) -> str:
    """Table 1: measured times of various components."""
    return render_table1(times, reference=reference)


def experiment_fig4(times: ComponentTimes) -> str:
    """Figure 4: breakdown of time in an LLP_post."""
    return render_breakdown_bar(fig4_llp_post(times))


def experiment_fig7(
    distribution: DistributionSummary, samples=None
) -> str:
    """Figure 7: distribution of the observed injection overhead.

    Pass the raw ``samples`` to get the histogram alongside the summary
    annotations.
    """
    summary = (
        "Observed injection overhead distribution (Figure 7)\n"
        f"  Mean:    {distribution.mean:.2f} ns   (paper: 282.33)\n"
        f"  Median:  {distribution.median:.2f} ns   (paper: 266.30)\n"
        f"  Min:     {distribution.minimum:.2f} ns   (paper: 201.30)\n"
        f"  Max:     {distribution.maximum:.2f} ns   (paper: 34951.70)\n"
        f"  Std dev: {distribution.std:.4f}      (paper: 58.4866)\n"
        f"  Samples: {distribution.count}"
    )
    if samples is None:
        return summary
    histogram = render_histogram(
        samples, title="Probability density (observed Inj_overhead, ns)"
    )
    return summary + "\n\n" + histogram


def experiment_fig8(times: ComponentTimes, misc_variant: str = "figure") -> str:
    """Figure 8: breakdown of injection overhead with the LLP."""
    return render_breakdown_bar(fig8_injection_llp(times, misc_variant))


def experiment_fig10(times: ComponentTimes) -> str:
    """Figure 10: breakdown of latency with the LLP."""
    return render_breakdown_bar(fig10_latency_llp(times))


def experiment_fig11(times: ComponentTimes) -> str:
    """Figure 11: breakdown of time in the HLP (UCP vs MPICH)."""
    parts = fig11_hlp(times)
    return "\n\n".join(
        render_breakdown_bar(parts[key]) for key in ("mpi_isend", "rx_mpi_wait")
    )


def experiment_fig12(times: ComponentTimes) -> str:
    """Figure 12: breakdown of the overall injection overhead."""
    return render_breakdown_bar(fig12_overall_injection(times))


def experiment_fig13(times: ComponentTimes) -> str:
    """Figure 13: breakdown of the end-to-end latency (ns table)."""
    return render_breakdown_table(fig13_end_to_end(times))


def experiment_fig14(times: ComponentTimes) -> str:
    """Figure 14: HLP vs LLP during initiation and progress."""
    parts = fig14_hlp_vs_llp(times)
    return "\n\n".join(
        render_breakdown_bar(parts[key])
        for key in ("tx_progress", "rx_progress", "initiation")
    )


def experiment_fig15(times: ComponentTimes) -> str:
    """Figure 15: high-level breakdown of the end-to-end latency."""
    parts = fig15_categories(times)
    return "\n\n".join(
        render_breakdown_bar(parts[key]) for key in ("top", "cpu", "io", "network")
    )


def experiment_fig16(times: ComponentTimes) -> str:
    """Figure 16: breakdown of time spent on node."""
    parts = fig16_on_node(times)
    return "\n\n".join(
        render_breakdown_bar(parts[key])
        for key in ("top", "initiator", "target", "target_io")
    )


def experiment_fig17(times: ComponentTimes) -> str:
    """Figure 17: the four what-if panels."""
    analysis = WhatIfAnalysis(times)
    panels = [
        ("Figure 17a — injection speedup vs CPU reduction", analysis.figure17a()),
        ("Figure 17b — latency speedup vs CPU reduction", analysis.figure17b()),
        ("Figure 17c — latency speedup vs I/O reduction", analysis.figure17c()),
        ("Figure 17d — latency speedup vs network reduction", analysis.figure17d()),
    ]
    return "\n\n".join(render_series(title, series) for title, series in panels)


def experiment_validation(
    times: ComponentTimes, observed: dict[str, float]
) -> str:
    """The paper's four model-vs-observed validations.

    ``observed`` carries the benchmark observations under the keys
    produced by :func:`repro.analysis.measure_component_times`:
    ``llp_injection_overhead``, ``llp_latency``,
    ``overall_injection_overhead``, ``end_to_end_latency``.
    """
    checks = [
        validate(
            "LLP injection overhead (Eq. 1)",
            InjectionModelLlp(times).predicted_ns,
            observed["llp_injection_overhead"],
            margin=0.05,
        ),
        validate(
            "LLP latency (§4.3)",
            LatencyModelLlp(times).predicted_ns,
            observed["llp_latency"],
            margin=0.05,
        ),
        validate(
            "Overall injection overhead (Eq. 2)",
            OverallInjectionModel(times).predicted_ns,
            observed["overall_injection_overhead"],
            margin=0.05,
        ),
        validate(
            "End-to-end latency (§6)",
            EndToEndLatencyModel(times).predicted_ns,
            observed["end_to_end_latency"],
            margin=0.05,
        ),
    ]
    return "\n".join(str(check) for check in checks)


def experiment_insights(times: ComponentTimes) -> str:
    """The §6 insights, re-checked against the given component times."""
    return "\n".join(str(insight) for insight in all_insights(times))


def experiment_fig17_campaign(jobs: int = 1, cache_dir=None) -> str:
    """Figure 17 regenerated through the campaign layer.

    Each panel is a declarative sweep over (component × reduction)
    grid points of the ``whatif_speedup`` workload, executed by
    :func:`repro.campaign.run_campaign` — parallelisable with ``jobs``
    and served from ``cache_dir`` on re-runs — instead of the inline
    loops the old driver used.  The rendered panels are identical to
    :func:`experiment_fig17` on the paper's values, by construction.
    """
    from repro.campaign import CampaignSpec, SweepAxis, run_campaign
    from repro.core.whatif import FIG17_REDUCTIONS, Metric, WhatIfAnalysis

    analysis = WhatIfAnalysis(ComponentTimes.paper())
    panels = [
        (
            "Figure 17a — injection speedup vs CPU reduction",
            Metric.INJECTION,
            analysis.injection_components(),
        ),
        (
            "Figure 17b — latency speedup vs CPU reduction",
            Metric.LATENCY,
            analysis.latency_cpu_components(),
        ),
        (
            "Figure 17c — latency speedup vs I/O reduction",
            Metric.LATENCY,
            analysis.latency_io_components(),
        ),
        (
            "Figure 17d — latency speedup vs network reduction",
            Metric.LATENCY,
            analysis.latency_network_components(),
        ),
    ]
    rendered = []
    for title, metric, components in panels:
        spec = CampaignSpec(
            name=f"fig17-{metric.value}-{len(components)}c",
            workload="whatif_speedup",
            axes=(
                SweepAxis("component", tuple(components), target="param"),
                SweepAxis("reduction", FIG17_REDUCTIONS, target="param"),
            ),
            params={"metric": metric.value},
        )
        result = run_campaign(spec, jobs=jobs, cache_dir=cache_dir)
        series: dict[str, list[tuple[float, float]]] = {name: [] for name in components}
        for record in result.ok_records:
            series[record.params["component"]].append(
                (record.params["reduction"], record.measurements["speedup"])
            )
        rendered.append(render_series(title, series))
    return "\n\n".join(rendered)


def experiment_replication(
    n_replications: int = 5,
    quick: bool = True,
    jobs: int = 1,
    cache_dir=None,
) -> str:
    """The multi-seed replication study, run as a campaign and rendered."""
    from repro.analysis.replication import run_replication_study

    study = run_replication_study(
        n_replications=n_replications, quick=quick, jobs=jobs, cache_dir=cache_dir
    )
    return study.render()
