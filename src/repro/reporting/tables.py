"""Text tables: Table 1 and generic breakdown tables."""

from __future__ import annotations

from repro.core.breakdown import Breakdown
from repro.core.components import ComponentTimes

__all__ = ["render_breakdown_table", "render_table1", "table1_rows"]


def table1_rows(times: ComponentTimes) -> list[tuple[str, float]]:
    """The rows of the paper's Table 1, in its order."""
    return [
        ("Message descriptor setup", times.md_setup),
        ("Barrier for message descriptor", times.barrier_md),
        ("Barrier for DoorBell counter", times.barrier_dbc),
        ("PIO copy (64 bytes)", times.pio_copy),
        ("Miscellaneous in LLP_post", times.llp_post_other),
        ("LLP_post (total of above)", times.llp_post),
        ("LLP_prog", times.llp_prog),
        ("Busy post", times.busy_post),
        ("Measurement update", times.measurement_update),
        ("Misc in Inj_overhead (total of above)", times.perftest_misc),
        ("PCIe for a 64-byte payload", times.pcie),
        ("Wire", times.wire),
        ("Switch", times.switch),
        ("Network (total of above)", times.network),
        ("RC-to-MEM(8B)", times.rc_to_mem_8b),
        ("MPI_Isend in MPICH", times.mpich_isend),
        ("MPI_Isend in UCP", times.ucp_isend),
        ("Callback for a completed MPI_Irecv in MPICH", times.mpich_recv_callback),
        ("Successful MPI_Wait for MPI_Irecv in MPICH", times.mpi_wait_mpich),
        ("Callback for a completed MPI_Irecv in UCP", times.ucp_recv_callback),
        ("Successful MPI_Wait for MPI_Irecv in UCP", times.mpi_wait_ucp),
    ]


def render_table1(
    times: ComponentTimes, reference: ComponentTimes | None = None
) -> str:
    """Render Table 1; with ``reference``, add a paper column and error."""
    lines: list[str] = []
    if reference is None:
        header = f"{'Component':<46} {'Time (ns)':>10}"
        lines.append(header)
        lines.append("-" * len(header))
        for label, value in table1_rows(times):
            lines.append(f"{label:<46} {value:>10.2f}")
    else:
        header = (
            f"{'Component':<46} {'Measured':>10} {'Paper':>10} {'Err %':>7}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        ref_rows = dict(table1_rows(reference))
        for label, value in table1_rows(times):
            ref = ref_rows[label]
            err = abs(value - ref) / ref * 100.0 if ref else 0.0
            lines.append(f"{label:<46} {value:>10.2f} {ref:>10.2f} {err:>6.1f}%")
    return "\n".join(lines)


def render_breakdown_table(breakdown: Breakdown) -> str:
    """Render one breakdown as (label, ns, %) rows."""
    lines = [breakdown.title, "-" * max(24, len(breakdown.title))]
    for label, value, percent in breakdown.as_rows():
        lines.append(f"{label:<24} {value:>10.2f} ns {percent:>7.2f}%")
    lines.append(f"{'total':<24} {breakdown.total_ns:>10.2f} ns {100.0:>7.2f}%")
    return "\n".join(lines)
