"""ASCII renderings of the paper's figures.

The breakdown figures (4, 8, 10-16) render as stacked percentage bars;
Figure 17's what-if panels render as per-line series tables.  These are
deliberately plain text so benchmark harness output diffs cleanly.
"""

from __future__ import annotations

import numpy as np

from repro.core.breakdown import Breakdown

__all__ = [
    "render_breakdown_bar",
    "render_histogram",
    "render_series",
    "render_timeline",
    "render_trace",
]

#: Distinct fill characters cycled across bar segments.
_FILLS = "█▓▒░▚▞▜▟"


def render_breakdown_bar(breakdown: Breakdown, width: int = 72) -> str:
    """One stacked horizontal percentage bar plus its legend."""
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    total = breakdown.total_ns
    lines = [f"{breakdown.title} (total {total:.2f} ns)"]
    bar_chars: list[str] = []
    legend: list[str] = []
    for index, (label, _value) in enumerate(breakdown.parts):
        percent = breakdown.percent(label)
        fill = _FILLS[index % len(_FILLS)]
        segment = max(0, round(width * percent / 100.0))
        bar_chars.append(fill * segment)
        legend.append(f"  {fill} {label}: {percent:.2f}%")
    bar = "".join(bar_chars)[:width]
    lines.append(f"|{bar:<{width}}|")
    lines.extend(legend)
    return "\n".join(lines)


def render_series(
    title: str,
    series: dict[str, list[tuple[float, float]]],
    x_label: str = "reduction",
    y_label: str = "speedup",
    as_percent: bool = True,
) -> str:
    """A Figure 17 panel: one row per line, one column per x value."""
    lines = [title]
    xs: list[float] = []
    for points in series.values():
        xs = [x for x, _ in points]
        break
    header = f"{'component':<16}" + "".join(
        f"{f'{x * 100:.0f}%':>9}" for x in xs
    )
    lines.append(f"({x_label} → {y_label})")
    lines.append(header)
    lines.append("-" * len(header))
    for name, points in series.items():
        if as_percent:
            row = "".join(f"{y * 100:>8.2f}%" for _, y in points)
        else:
            row = "".join(f"{y:>9.4f}" for _, y in points)
        lines.append(f"{name:<16}{row}")
    return "\n".join(lines)


def render_histogram(
    samples,
    bins: int = 24,
    width: int = 50,
    title: str = "distribution",
    clip_quantile: float = 0.995,
) -> str:
    """An ASCII probability-density histogram (the Figure 7 rendering).

    The far tail is clipped at ``clip_quantile`` for the plot (like the
    paper's footnote: "Max is not shown in the figure due to the large
    value") but the annotations report the full-sample statistics.
    """
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot render an empty sample set")
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    if width < 4:
        raise ValueError(f"width must be >= 4, got {width}")
    clip = float(np.quantile(array, clip_quantile))
    plotted = array[array <= clip]
    counts, edges = np.histogram(plotted, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines = [title]
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * max(0, round(width * count / peak))
        lines.append(f"{lo:9.1f}-{hi:9.1f} |{bar}")
    lines.append(
        f"  Mean: {array.mean():.2f}  Median: {float(np.median(array)):.2f}  "
        f"Min: {array.min():.2f}  Max: {array.max():.2f}  "
        f"Std: {array.std(ddof=1) if array.size > 1 else 0.0:.4f}"
    )
    if clip < array.max():
        lines.append(f"  (tail above {clip:.1f} ns clipped from the plot)")
    return "\n".join(lines)


def render_timeline(spans, width: int = 60, limit: int = 40) -> str:
    """A Gantt-style text timeline of trace spans.

    Each span (anything with ``t0``/``t1``/``name``/``track`` and
    optionally ``span_id``/``parent_id`` — :class:`repro.trace.Span`
    objects or their Perfetto round-trip reconstructions) becomes one
    row: track, name indented by its nesting depth, the ``[t0, t1)``
    window and a bar positioned on a shared time axis.  Rows are sorted
    by start time and truncated to ``limit``.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    ordered = sorted(spans, key=lambda s: (s.t0, s.t1 if s.t1 is not None else s.t0))
    if not ordered:
        return "(no spans)"
    shown = ordered[:limit]
    depths: dict[int, int] = {}
    for span in ordered:
        parent = getattr(span, "parent_id", None)
        span_id = getattr(span, "span_id", None)
        depth = depths.get(parent, -1) + 1 if parent is not None else 0
        if span_id is not None:
            depths[span_id] = depth
    t_lo = min(s.t0 for s in shown)
    t_hi = max(s.t1 if s.t1 is not None else s.t0 for s in shown)
    window = max(t_hi - t_lo, 1e-9)
    track_w = max(len(str(s.track)) for s in shown)
    name_w = max(
        len("  " * depths.get(getattr(s, "span_id", None), 0) + s.name) for s in shown
    )
    lines = [f"timeline: {len(shown)} of {len(ordered)} spans, "
             f"[{t_lo:.2f}, {t_hi:.2f}] ns"]
    for span in shown:
        t1 = span.t1 if span.t1 is not None else span.t0
        start = round(width * (span.t0 - t_lo) / window)
        stop = round(width * (t1 - t_lo) / window)
        bar = " " * start + "█" * max(1, stop - start)
        indent = "  " * depths.get(getattr(span, "span_id", None), 0)
        label = f"{indent}{span.name}"
        lines.append(
            f"{str(span.track):<{track_w}} {label:<{name_w}} "
            f"|{bar:<{width}}| {span.t0:>10.2f} {t1 - span.t0:>9.2f}"
        )
    if len(ordered) > limit:
        lines.append(f"  ... {len(ordered) - limit} more spans not shown")
    return "\n".join(lines)


def render_trace(
    records,
    limit: int = 12,
    downstream_only: bool = True,
) -> str:
    """A Figure 6-style PCIe trace listing.

    The paper's Figure 6 shows the analyzer's view of put_bw filtered
    to downstream transactions: per packet, a timestamp, the TLP type,
    the payload size and the inter-arrival delta.
    """
    from repro.pcie.link import Direction
    from repro.pcie.packets import Tlp

    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    rows = [
        r
        for r in records
        if isinstance(r.packet, Tlp)
        and (not downstream_only or r.direction is Direction.DOWNSTREAM)
    ][:limit]
    header = (
        f"{'timestamp (ns)':>15} {'dir':>11} {'TLP':>5} {'bytes':>6} "
        f"{'purpose':<16} {'delta (ns)':>11}"
    )
    lines = [header, "-" * len(header)]
    previous = None
    for record in rows:
        delta = "" if previous is None else f"{record.timestamp_ns - previous:11.2f}"
        lines.append(
            f"{record.timestamp_ns:15.2f} {record.direction.value:>11} "
            f"{record.packet.kind.value:>5} {record.packet.payload_bytes:>6} "
            f"{record.packet.purpose:<16} {delta:>11}"
        )
        previous = record.timestamp_ns
    return "\n".join(lines)
