"""Machine-readable exports of the reproduction's artefacts.

Every table/figure can be exported as CSV (for external plotting) or as
a plain dict (for JSON serialisation); the benchmark harness's text
reports are for reading, these are for pipelines.
"""

from __future__ import annotations

import csv
import io
from typing import Any

from repro.core.breakdown import Breakdown
from repro.core.components import ComponentTimes
from repro.reporting.tables import table1_rows

__all__ = [
    "breakdown_to_csv",
    "breakdown_to_dict",
    "component_times_to_dict",
    "series_to_csv",
    "table1_to_csv",
]


def breakdown_to_csv(breakdown: Breakdown) -> str:
    """One breakdown as ``label,ns,percent`` rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["label", "ns", "percent"])
    for label, value, percent in breakdown.as_rows():
        writer.writerow([label, f"{value:.4f}", f"{percent:.4f}"])
    return buffer.getvalue()


def breakdown_to_dict(breakdown: Breakdown) -> dict[str, Any]:
    """One breakdown as a JSON-ready dict."""
    return {
        "title": breakdown.title,
        "total_ns": breakdown.total_ns,
        "parts": [
            {"label": label, "ns": value, "percent": percent}
            for label, value, percent in breakdown.as_rows()
        ],
    }


def series_to_csv(series: dict[str, list[tuple[float, float]]]) -> str:
    """A Figure 17 panel as ``component,reduction,speedup`` rows."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["component", "reduction", "speedup"])
    for name, points in series.items():
        for reduction, speedup in points:
            writer.writerow([name, f"{reduction:.4f}", f"{speedup:.6f}"])
    return buffer.getvalue()


def table1_to_csv(
    times: ComponentTimes, reference: ComponentTimes | None = None
) -> str:
    """Table 1 as CSV, optionally with a reference column."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    if reference is None:
        writer.writerow(["component", "ns"])
        for label, value in table1_rows(times):
            writer.writerow([label, f"{value:.4f}"])
    else:
        writer.writerow(["component", "measured_ns", "reference_ns", "error"])
        reference_rows = dict(table1_rows(reference))
        for label, value in table1_rows(times):
            ref = reference_rows[label]
            error = (value - ref) / ref if ref else 0.0
            writer.writerow([label, f"{value:.4f}", f"{ref:.4f}", f"{error:.6f}"])
    return buffer.getvalue()


def component_times_to_dict(times: ComponentTimes) -> dict[str, float]:
    """All fields plus the derived aggregates, JSON-ready."""
    from dataclasses import asdict

    result = dict(asdict(times))
    result.update(
        llp_post=times.llp_post,
        network=times.network,
        hlp_post=times.hlp_post,
        post=times.post,
        hlp_tx_prog=times.hlp_tx_prog,
        hlp_rx_prog=times.hlp_rx_prog,
        perftest_misc=times.perftest_misc,
    )
    return result
