"""Rendering of the paper's tables and figures as text.

* :mod:`repro.reporting.tables` — Table 1 and generic (label, ns, %)
  tables;
* :mod:`repro.reporting.figures` — ASCII stacked-percentage bars for
  the breakdown figures and line-series dumps for Figure 17;
* :mod:`repro.reporting.experiments` — one driver per table/figure that
  produces both the paper-values rendering and (optionally) the
  simulator-measured rendering side by side.
"""

from repro.reporting.export import (
    breakdown_to_csv,
    breakdown_to_dict,
    component_times_to_dict,
    series_to_csv,
    table1_to_csv,
)
from repro.reporting.figures import (
    render_breakdown_bar,
    render_histogram,
    render_series,
    render_timeline,
    render_trace,
)
from repro.reporting.tables import render_breakdown_table, render_table1

__all__ = [
    "breakdown_to_csv",
    "breakdown_to_dict",
    "component_times_to_dict",
    "render_breakdown_bar",
    "render_breakdown_table",
    "render_histogram",
    "render_series",
    "render_table1",
    "render_timeline",
    "render_trace",
    "series_to_csv",
    "table1_to_csv",
]
