"""``repro.serve``: the what-if serving tier.

The paper's §7 what-if analysis is the product this repository grows
toward — and a full simulation per query cannot serve it at scale.
This package answers queries through three tiers, cheapest first:

1. a **content-addressed result store** (:mod:`.store`): every result
   ever computed — by a campaign sweep, a serve-tier miss or the
   verifier — is addressable by the stable hash of its inputs, so a
   repeated query costs one JSON read;
2. **surrogate models** (:mod:`.surrogate`): the paper's §6 analytic
   composition plus multilinear interpolation fitted over swept axes,
   each with an explicit *validity envelope* — an in-envelope query is
   answered in microseconds without simulating, an out-of-envelope
   query falls back to simulation rather than extrapolating;
3. **simulation** as the backstop for store misses outside every
   envelope, fanned out through an async job queue (:mod:`.queue`)
   over a work-stealing executor (:mod:`.executor`).

Simulation is also the *auditor*: a sampled verifier (:mod:`.verify`)
re-simulates a configurable fraction of surrogate answers and
quarantines any surrogate whose error exceeds the margin (5% by
default), so surrogates stay honest without paying for verification on
every query.

Front doors: :class:`repro.serve.service.ServeTier` (or
``Experiment.serve()`` / ``Experiment.query()`` in :mod:`repro.api`),
and ``python -m repro serve`` for batch query files.  See
docs/serving.md.
"""

from __future__ import annotations

from typing import Any

from repro.serve.executor import ExecutorError, WorkStealingExecutor
from repro.serve.store import ResultStore, code_version, query_key

__all__ = [
    "AnalyticSurrogate",
    "Answer",
    "Envelope",
    "ExecutorError",
    "InterpolatedSurrogate",
    "JobQueue",
    "OutOfEnvelope",
    "Query",
    "ResultStore",
    "SampledVerifier",
    "ServeTier",
    "WorkStealingExecutor",
    "code_version",
    "fit_surrogate",
    "query_key",
]

#: Names resolved lazily so that importing the store/executor (which the
#: campaign layer builds on) never drags the campaign layer back in.
_LAZY = {
    "AnalyticSurrogate": "repro.serve.surrogate",
    "Envelope": "repro.serve.surrogate",
    "InterpolatedSurrogate": "repro.serve.surrogate",
    "OutOfEnvelope": "repro.serve.surrogate",
    "fit_surrogate": "repro.serve.surrogate",
    "SampledVerifier": "repro.serve.verify",
    "JobQueue": "repro.serve.queue",
    "Answer": "repro.serve.service",
    "Query": "repro.serve.service",
    "ServeTier": "repro.serve.service",
}


def __getattr__(name: str) -> Any:
    try:
        module_name = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.serve' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(__all__)
