"""Surrogate models: answer in-envelope what-ifs without simulating.

Two families, both honest about where they are valid:

* :class:`InterpolatedSurrogate` — fitted over the swept axes of a
  completed campaign (message size, TxQ depth, switch hops, ranks...).
  Multilinear interpolation over the rectilinear grid of simulated
  points, averaging across seeds.  The paper's own curves are piecewise
  linear in these axes over useful ranges (e.g. +108 ns per switch
  hop, §4.3), which is exactly when interpolation is trustworthy.
* :class:`AnalyticSurrogate` — the paper's §6 analytic composition
  (Equations 1–2 and the latency models of §4.3/§6) evaluated
  directly.  Valid only where the models themselves were validated:
  small messages on the default testbed.

Every surrogate carries an explicit :class:`Envelope`.  A query inside
the envelope is answered in microseconds; a query outside it raises
:class:`OutOfEnvelope`, and the serving tier falls back to simulation
instead of extrapolating.  The sampled verifier
(:mod:`repro.serve.verify`) re-simulates a fraction of in-envelope
answers and *quarantines* a surrogate whose error exceeds the margin —
a quarantined surrogate stops answering until refitted.
"""

from __future__ import annotations

import bisect
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.node.config import SystemConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.campaign.records import CampaignResult

__all__ = [
    "AnalyticSurrogate",
    "Envelope",
    "InterpolatedSurrogate",
    "OutOfEnvelope",
    "fit_surrogate",
]


class OutOfEnvelope(Exception):
    """A query fell outside a surrogate's validity envelope."""


def normalized_config_hash(config: SystemConfig) -> str:
    """The config's stable hash with seed/determinism pinned.

    Surrogates predict the deterministic mean, which is independent of
    the noise seed and of whether jitter is armed — so envelope
    matching must not fail on those two fields.
    """
    return config.evolve(seed=0, deterministic=True).stable_hash()


@dataclass(frozen=True)
class Envelope:
    """Where a surrogate is allowed to answer.

    A query matches when the workload name and (normalized) base config
    agree, every fitted axis value lies inside its closed range, every
    non-axis parameter equals the fitted constant, and no config
    override outside the fitted axes is present.
    """

    workload: str
    #: ``axis name -> (lo, hi)`` closed ranges over the fitted grid.
    axes: dict[str, tuple[float, float]]
    #: Non-axis workload parameters the fit held constant.
    fixed_params: dict[str, Any]
    #: :func:`normalized_config_hash` of the base config the fit ran on.
    config_hash: str
    #: Workload parameters allowed to vary without affecting the
    #: prediction (measurement-length knobs like ``iterations``).
    free_params: tuple[str, ...] = ()

    def check(
        self,
        params: dict[str, Any],
        config_overrides: dict[str, Any],
        config_hash: str,
    ) -> None:
        """Raise :class:`OutOfEnvelope` unless the query is answerable."""
        if config_hash != self.config_hash:
            raise OutOfEnvelope(
                f"base config {config_hash} differs from fitted {self.config_hash}"
            )
        merged = {**params, **config_overrides}
        for name, (lo, hi) in self.axes.items():
            if name not in merged:
                raise OutOfEnvelope(f"query omits fitted axis {name!r}")
            value = merged.pop(name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise OutOfEnvelope(f"axis {name!r} value {value!r} is not numeric")
            if not lo <= float(value) <= hi:
                raise OutOfEnvelope(
                    f"axis {name!r}={value} outside fitted range [{lo}, {hi}]"
                )
        for name, value in merged.items():
            if name in self.free_params:
                continue
            if name not in self.fixed_params:
                raise OutOfEnvelope(f"parameter {name!r} was not fitted")
            if self.fixed_params[name] != value:
                raise OutOfEnvelope(
                    f"parameter {name!r}={value!r} differs from fitted "
                    f"{self.fixed_params[name]!r}"
                )

    def contains(
        self,
        params: dict[str, Any],
        config_overrides: dict[str, Any],
        config_hash: str,
    ) -> bool:
        """True when :meth:`check` would pass."""
        try:
            self.check(params, config_overrides, config_hash)
        except OutOfEnvelope:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-encodable form."""
        return {
            "workload": self.workload,
            "axes": {name: list(rng) for name, rng in self.axes.items()},
            "fixed_params": dict(self.fixed_params),
            "config_hash": self.config_hash,
            "free_params": list(self.free_params),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Envelope":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            workload=payload["workload"],
            axes={
                name: (float(rng[0]), float(rng[1]))
                for name, rng in payload["axes"].items()
            },
            fixed_params=dict(payload["fixed_params"]),
            config_hash=payload["config_hash"],
            free_params=tuple(payload.get("free_params", ())),
        )


@dataclass
class InterpolatedSurrogate:
    """Multilinear interpolation over a fitted rectilinear grid.

    ``axis_names`` orders the axes; ``grid[i]`` is the sorted tuple of
    values along axis *i*; ``values[metric]`` is the flat C-order
    tensor of metric means over the cartesian grid (seeds averaged).
    """

    name: str
    envelope: Envelope
    axis_names: tuple[str, ...]
    grid: tuple[tuple[float, ...], ...]
    values: dict[str, list[float]]
    #: Set by the verifier when a sampled re-simulation exceeded the
    #: error margin; a quarantined surrogate stops answering.
    quarantined: bool = False
    #: How many simulated points the fit consumed.
    fitted_points: int = 0

    @property
    def metrics(self) -> tuple[str, ...]:
        """The measurement keys this surrogate predicts."""
        return tuple(sorted(self.values))

    def _flat_index(self, indices: tuple[int, ...]) -> int:
        flat = 0
        for axis, index in enumerate(indices):
            flat = flat * len(self.grid[axis]) + index
        return flat

    def predict(
        self,
        params: dict[str, Any],
        config_overrides: dict[str, Any] | None = None,
    ) -> dict[str, float]:
        """Metric predictions at one in-envelope point (microseconds).

        Multilinear: for each axis, locate the bracketing grid values
        and blend the 2^k corner values of the enclosing cell.
        """
        merged = {**params, **(config_overrides or {})}
        position = []
        for axis, name in enumerate(self.axis_names):
            if name not in merged:
                raise OutOfEnvelope(f"query omits fitted axis {name!r}")
            position.append(float(merged[name]))

        # Per axis: (lower index, fractional weight of the upper node).
        brackets: list[tuple[int, float]] = []
        for axis, value in enumerate(position):
            nodes = self.grid[axis]
            if not nodes[0] <= value <= nodes[-1]:
                raise OutOfEnvelope(
                    f"axis {self.axis_names[axis]!r}={value} outside "
                    f"[{nodes[0]}, {nodes[-1]}]"
                )
            upper = bisect.bisect_left(nodes, value)
            if upper == 0 or nodes[upper] == value:
                brackets.append((upper, 0.0))
            else:
                lower = upper - 1
                span = nodes[upper] - nodes[lower]
                brackets.append((lower, (value - nodes[lower]) / span))

        corners: list[tuple[int, ...]] = [()]
        weights: list[float] = [1.0]
        for axis, (lower, fraction) in enumerate(brackets):
            next_corners: list[tuple[int, ...]] = []
            next_weights: list[float] = []
            nodes = self.grid[axis]
            for corner, weight in zip(corners, weights):
                if fraction == 0.0:
                    next_corners.append(corner + (lower,))
                    next_weights.append(weight)
                else:
                    next_corners.append(corner + (lower,))
                    next_weights.append(weight * (1.0 - fraction))
                    next_corners.append(corner + (lower + 1,))
                    next_weights.append(weight * fraction)
            corners, weights = next_corners, next_weights

        prediction = {}
        for metric, tensor in self.values.items():
            prediction[metric] = sum(
                weight * tensor[self._flat_index(corner)]
                for corner, weight in zip(corners, weights)
            )
        return prediction

    # -- persistence -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-encodable form (for provenance / reuse on disk)."""
        return {
            "kind": "interpolated",
            "name": self.name,
            "envelope": self.envelope.to_dict(),
            "axis_names": list(self.axis_names),
            "grid": [list(nodes) for nodes in self.grid],
            "values": {metric: list(tensor) for metric, tensor in self.values.items()},
            "quarantined": self.quarantined,
            "fitted_points": self.fitted_points,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "InterpolatedSurrogate":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            envelope=Envelope.from_dict(payload["envelope"]),
            axis_names=tuple(payload["axis_names"]),
            grid=tuple(tuple(float(v) for v in nodes) for nodes in payload["grid"]),
            values={m: [float(v) for v in t] for m, t in payload["values"].items()},
            quarantined=bool(payload.get("quarantined", False)),
            fitted_points=int(payload.get("fitted_points", 0)),
        )

    def save(self, path: str | os.PathLike) -> None:
        """Write :meth:`to_dict` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, sort_keys=True, indent=2)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "InterpolatedSurrogate":
        """Read a surrogate written by :meth:`save`."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "x".join(str(len(nodes)) for nodes in self.grid)
        state = " QUARANTINED" if self.quarantined else ""
        return (
            f"<InterpolatedSurrogate {self.name!r} "
            f"axes={list(self.axis_names)} grid={shape}{state}>"
        )


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def fit_surrogate(
    result: "CampaignResult",
    axes: list[str] | tuple[str, ...],
    base_config: SystemConfig,
    metrics: list[str] | tuple[str, ...] | None = None,
    name: str | None = None,
    free_params: tuple[str, ...] = (),
) -> InterpolatedSurrogate:
    """Fit an :class:`InterpolatedSurrogate` from a completed campaign.

    Parameters
    ----------
    result:
        A :class:`~repro.campaign.records.CampaignResult` whose points
        cover the full cartesian grid of ``axes`` (the runner's normal
        output for a sweep over those axes).  Seeds are averaged.
    axes:
        Axis names, each a workload parameter or dotted config path
        swept by the campaign; every axis needs numeric values.
    base_config:
        The campaign's base config — the envelope binds to its
        :func:`normalized_config_hash`, so queries against a different
        system fall back to simulation.
    metrics:
        Measurement keys to fit; defaults to every numeric key present
        in all successful records.
    free_params:
        Parameters the envelope lets vary freely (see
        :class:`Envelope.free_params`).

    Raises
    ------
    ValueError
        On failed points, non-numeric axis values, an incomplete grid,
        or fixed parameters that vary across records.
    """
    axes = tuple(axes)
    if not axes:
        raise ValueError("a surrogate needs at least one axis")
    records = result.ok_records
    if not records:
        raise ValueError(f"campaign {result.name!r} has no successful records")
    if result.failures:
        raise ValueError(
            f"campaign {result.name!r} has {len(result.failures)} failed "
            f"point(s); fit from a clean campaign"
        )

    def axis_value(record: Any, axis: str) -> float:
        merged = {**record.params, **record.config_overrides}
        if axis not in merged:
            raise ValueError(f"record {record.index} lacks axis {axis!r}")
        value = merged[axis]
        if not _numeric(value):
            raise ValueError(f"axis {axis!r} value {value!r} is not numeric")
        return float(value)

    grid = tuple(
        tuple(sorted({axis_value(record, axis) for record in records}))
        for axis in axes
    )

    if metrics is None:
        metrics = sorted(
            key
            for key, value in records[0].measurements.items()
            if _numeric(value)
            and all(_numeric(r.measurements.get(key)) for r in records)
        )
    if not metrics:
        raise ValueError("no numeric metrics to fit")

    fixed_params: dict[str, Any] = {}
    for record in records:
        for key, value in record.params.items():
            if key in axes or key in free_params:
                continue
            if key in fixed_params and fixed_params[key] != value:
                raise ValueError(
                    f"non-axis parameter {key!r} varies across records "
                    f"({fixed_params[key]!r} vs {value!r}); sweep it as an "
                    f"axis or list it in free_params"
                )
            fixed_params[key] = value
        for key in record.config_overrides:
            if key not in axes:
                raise ValueError(
                    f"config override {key!r} is not a fitted axis; fit from "
                    f"a campaign whose only config overrides are the axes"
                )

    # Mean over seeds at every grid point; every cell must be covered.
    sums: dict[tuple[float, ...], dict[str, float]] = {}
    counts: dict[tuple[float, ...], int] = {}
    for record in records:
        coordinate = tuple(axis_value(record, axis) for axis in axes)
        cell = sums.setdefault(coordinate, {metric: 0.0 for metric in metrics})
        for metric in metrics:
            if metric not in record.measurements:
                raise ValueError(
                    f"record {record.index} lacks metric {metric!r}"
                )
            cell[metric] += float(record.measurements[metric])
        counts[coordinate] = counts.get(coordinate, 0) + 1

    values: dict[str, list[float]] = {metric: [] for metric in metrics}
    for coordinate in itertools.product(*grid):
        if coordinate not in sums:
            raise ValueError(
                f"incomplete grid: no record at "
                f"{dict(zip(axes, coordinate))} — fit needs the full "
                f"cartesian product of axis values"
            )
        for metric in metrics:
            values[metric].append(sums[coordinate][metric] / counts[coordinate])

    envelope = Envelope(
        workload=result.workload,
        axes={axis: (nodes[0], nodes[-1]) for axis, nodes in zip(axes, grid)},
        fixed_params=fixed_params,
        config_hash=normalized_config_hash(base_config),
        free_params=tuple(free_params),
    )
    return InterpolatedSurrogate(
        name=name or f"{result.workload}[{','.join(axes)}]",
        envelope=envelope,
        axis_names=axes,
        grid=grid,
        values=values,
        fitted_points=len(records),
    )


@dataclass
class AnalyticSurrogate:
    """The paper's §4.2–§6 analytic composition as a surrogate.

    Supported workloads:

    * ``am_lat`` — §4.3's LLP latency model, exactly what the am_lat
      microbenchmark observes (validated within ~1% at 8–16 B); the
      envelope stops at 16 B because the model's linear RC-to-MEM
      interpolation diverges from the measured mov-staircase beyond
      that (≈7% at 32 B — the sampled verifier would quarantine it,
      and should if the envelope is widened).
    * ``put_bw`` — Equation 2's overall injection overhead.  Accurate
      at the paper's operating point (long measurement windows); short
      windows under-amortise the busy-post term, which makes this the
      canonical quarantine-demonstration surrogate.

    ``times`` defaults to the paper's published Table-1 values.
    """

    workload: str
    times: Any = None
    name: str = ""
    quarantined: bool = False
    envelope: Envelope = field(init=False)

    #: workload -> (envelope axes, fixed params, free params).
    _SUPPORTED = {
        "am_lat": (
            {"payload_bytes": (8.0, 16.0)},
            {"completion_mode": "polling"},
            ("iterations", "warmup"),
        ),
        "put_bw": (
            {"payload_bytes": (8.0, 16.0)},
            {},
            ("n_messages", "warmup", "poll_interval"),
        ),
    }

    def __post_init__(self) -> None:
        from repro.core.components import ComponentTimes

        if self.workload not in self._SUPPORTED:
            raise ValueError(
                f"no analytic model for workload {self.workload!r}; "
                f"supported: {', '.join(sorted(self._SUPPORTED))}"
            )
        if self.times is None:
            self.times = ComponentTimes.paper()
        if not self.name:
            self.name = f"analytic:{self.workload}"
        axes, fixed, free = self._SUPPORTED[self.workload]
        self.envelope = Envelope(
            workload=self.workload,
            axes=dict(axes),
            fixed_params=dict(fixed),
            config_hash=normalized_config_hash(SystemConfig.paper_testbed()),
            free_params=free,
        )

    @property
    def metrics(self) -> tuple[str, ...]:
        """The measurement keys this surrogate predicts."""
        if self.workload == "am_lat":
            return ("observed_latency_ns", "round_trip_ns")
        return ("mean_injection_overhead_ns", "message_rate_per_s")

    def predict(
        self,
        params: dict[str, Any],
        config_overrides: dict[str, Any] | None = None,
    ) -> dict[str, float]:
        """Evaluate the closed-form model at the queried point."""
        from repro.core.models import LatencyModelLlp, OverallInjectionModel

        if self.workload == "am_lat":
            payload = int(params.get("payload_bytes", 8))
            latency = LatencyModelLlp(self.times, payload_bytes=payload).predicted_ns
            return {
                "observed_latency_ns": latency,
                "round_trip_ns": 2.0 * latency,
            }
        overhead = OverallInjectionModel(self.times).predicted_ns
        return {
            "mean_injection_overhead_ns": overhead,
            "message_rate_per_s": 1e9 / overhead,
        }

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-encodable provenance form."""
        return {
            "kind": "analytic",
            "name": self.name,
            "workload": self.workload,
            "envelope": self.envelope.to_dict(),
            "quarantined": self.quarantined,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " QUARANTINED" if self.quarantined else ""
        return f"<AnalyticSurrogate {self.name!r}{state}>"
