"""Async job queue: futures over the work-stealing executor.

The serving tier answers store hits and in-envelope queries
immediately, but a cache miss outside every envelope needs a real
simulation — milliseconds to minutes.  The :class:`JobQueue` turns
those misses into :class:`Job` futures: ``submit`` returns instantly,
a background collector thread drains the executor's completion stream
as it happens (completion order, not submission order — work stealing
end to end), and ``Job.result()`` blocks only the caller that actually
needs that answer.

The queue is thin on purpose: process-level fan-out, liveness and
error transport live in :class:`~repro.serve.executor.WorkStealingExecutor`;
this module only adds the future surface and the collector thread.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

from repro.serve.executor import ExecutorError, WorkStealingExecutor

__all__ = ["Job", "JobQueue"]


class Job:
    """A pending result; resolved by the queue's collector thread."""

    def __init__(self, ticket: int, payload: Any) -> None:
        self.ticket = ticket
        self.payload = payload
        self._done = threading.Event()
        self._value: Any = None
        self._error: str | None = None

    def _resolve(self, value: Any, error: str | None) -> None:
        self._value = value
        self._error = error
        self._done.set()

    def done(self) -> bool:
        """True once the worker finished (successfully or not)."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        """Block until resolved; the task's return value.

        Raises :class:`TimeoutError` if the job is still running after
        ``timeout`` seconds, and :class:`ExecutorError` (carrying the
        worker-side traceback) if the task raised or the pool died.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.ticket} not done after {timeout}s")
        if self._error is not None:
            raise ExecutorError(self._error)
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else "pending"
        return f"<Job ticket={self.ticket} {state}>"


class JobQueue:
    """Submit payloads, get :class:`Job` futures back.

    Parameters mirror :class:`~repro.serve.executor.WorkStealingExecutor`:
    a picklable top-level ``fn`` applied to each payload in one of
    ``jobs`` worker processes.
    """

    def __init__(self, fn: Callable[[Any], Any], jobs: int = 1) -> None:
        self._executor = WorkStealingExecutor(fn, jobs)
        self._jobs: dict[int, Job] = {}
        self._lock = threading.Lock()
        # One token per submitted job plus one shutdown token: the
        # collector wakes exactly once per thing it must observe.
        self._tokens = threading.Semaphore(0)
        self._closing = False
        self._collector = threading.Thread(
            target=self._collect, name="jobqueue-collector", daemon=True
        )
        self._collector.start()

    @property
    def jobs(self) -> int:
        """The worker process count."""
        return self._executor.jobs

    def submit(self, payload: Any) -> Job:
        """Enqueue one payload; returns its future immediately."""
        with self._lock:
            if self._closing:
                raise RuntimeError("queue is closed")
            ticket = self._executor.submit(payload)
            job = Job(ticket, payload)
            self._jobs[ticket] = job
        self._tokens.release()
        return job

    def _collect(self) -> None:
        while True:
            self._tokens.acquire()
            with self._lock:
                if not self._jobs and self._closing:
                    return
            try:
                ticket, value, error = self._executor.next_result()
            except ExecutorError as exc:
                # The pool died: every unresolved future gets the error.
                with self._lock:
                    orphans = list(self._jobs.values())
                    self._jobs.clear()
                for job in orphans:
                    job._resolve(None, str(exc))
                return
            with self._lock:
                job = self._jobs.pop(ticket)
            job._resolve(value, error)

    def close(self) -> None:
        """Drain outstanding jobs, stop the collector, shut the pool down."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
        self._tokens.release()
        self._collector.join()
        self._executor.close()

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            pending = len(self._jobs)
        return f"<JobQueue jobs={self.jobs} pending={pending}>"
