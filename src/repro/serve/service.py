"""The serving tier: store hit → surrogate → simulation, audited.

:class:`ServeTier` is the front door of :mod:`repro.serve`.  One query
— a workload name, parameters, optional config overrides and a seed —
flows through three tiers, cheapest first:

1. **store**: the content-addressed result store is consulted under
   the same key a campaign sweep would use, so anything ever simulated
   (by a campaign, a previous query or the verifier) answers in one
   JSON read;
2. **surrogate**: the first non-quarantined surrogate whose validity
   envelope contains the query predicts without simulating.  A sampled
   fraction of these answers is re-simulated by the
   :class:`~repro.serve.verify.SampledVerifier`; an answer that fails
   its audit is replaced by the fresh simulation and the surrogate is
   quarantined;
3. **simulation**: everything else runs the real workload — inline for
   single queries, fanned out through the work-stealing executor for
   batches — and the result is written back to the store, so the same
   question is never simulated twice.

Counters mirror :mod:`repro.trace`'s style: monotonically increasing
totals (queries, store hits, surrogate hits, simulations, ...) with
derived rates in :meth:`ServeTier.stats`.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any

from repro.node.config import SystemConfig
from repro.serve.store import ResultStore, query_key
from repro.serve.surrogate import (
    AnalyticSurrogate,
    InterpolatedSurrogate,
    OutOfEnvelope,
    fit_surrogate,
    normalized_config_hash,
)
from repro.serve.verify import SampledVerifier, Verification

__all__ = ["Answer", "Query", "ServeTier"]

#: Answer sources, cheapest first.
SOURCE_STORE = "store"
SOURCE_SURROGATE = "surrogate"
SOURCE_SIMULATION = "simulation"
SOURCE_ERROR = "error"


@dataclass(frozen=True)
class Query:
    """One what-if question for the serving tier.

    ``params`` keys containing a dot are config overrides (the
    :class:`~repro.campaign.spec.SweepAxis` convention), and are moved
    into ``config_overrides`` automatically — a query file can say
    ``{"payload_bytes": 64, "nic.txq_depth": 4}`` without caring which
    side each knob lives on.
    """

    workload: str
    params: dict[str, Any] = field(default_factory=dict)
    config_overrides: dict[str, Any] = field(default_factory=dict)
    seed: int = 2019

    def __post_init__(self) -> None:
        dotted = {k: v for k, v in self.params.items() if "." in k}
        if dotted:
            params = {k: v for k, v in self.params.items() if "." not in k}
            object.__setattr__(self, "params", params)
            object.__setattr__(
                self, "config_overrides", {**self.config_overrides, **dotted}
            )

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Query":
        """Build from a query-file entry (see ``python -m repro serve``)."""
        return cls(
            workload=payload["workload"],
            params=dict(payload.get("params", {})),
            config_overrides=dict(payload.get("config_overrides", {})),
            seed=int(payload.get("seed", 2019)),
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-encodable form."""
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "config_overrides": dict(self.config_overrides),
            "seed": self.seed,
        }


@dataclass
class Answer:
    """A served result plus full provenance.

    ``source`` says which tier answered; ``key`` is the store address
    the result lives (or would live) under; ``verification`` is the
    audit record when this answer was sampled for verification.
    """

    query: Query
    measurements: dict[str, Any]
    source: str
    key: str
    config_hash: str
    surrogate: str | None = None
    verification: Verification | None = None
    error: str | None = None
    #: Host seconds spent producing this answer (not deterministic).
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True unless the backing simulation failed."""
        return self.source != SOURCE_ERROR

    def to_dict(self, include_host: bool = True) -> dict[str, Any]:
        """JSON form; ``include_host=False`` drops host-time fields so
        two runs over the same store compare byte-identical."""
        payload: dict[str, Any] = {
            "query": self.query.to_dict(),
            "measurements": self.measurements,
            "source": self.source,
            "key": self.key,
            "config_hash": self.config_hash,
            "surrogate": self.surrogate,
            "verification": (
                self.verification.to_dict() if self.verification else None
            ),
            "error": self.error,
        }
        if include_host:
            payload["duration_s"] = self.duration_s
        return payload


def _workload_defaults(workload: str) -> dict[str, Any]:
    """Keyword defaults of a workload (sans ``config``), for envelope checks."""
    from repro.campaign.workloads import get_workload

    parameters = inspect.signature(get_workload(workload)).parameters
    return {
        name: parameter.default
        for name, parameter in parameters.items()
        if parameter.default is not inspect.Parameter.empty
    }


class ServeTier:
    """Answer what-if queries through store, surrogates and simulation.

    Parameters
    ----------
    store:
        A :class:`~repro.serve.store.ResultStore` or a directory path
        for one.  Campaigns pointed at the same directory share it.
    base_config:
        The system every query is asked about; per-query
        ``config_overrides`` evolve it.  Defaults to the paper testbed
        with deterministic timing (surrogates predict means).
    verifier:
        The sampled verifier; ``None`` builds the default
        (``fraction=0.1, margin=0.05``).  Pass ``fraction=0`` to
        disable auditing.
    jobs:
        Default worker processes for batch cache misses and for
        :meth:`fit` campaigns.
    """

    def __init__(
        self,
        store: ResultStore | str | Any,
        base_config: SystemConfig | None = None,
        verifier: SampledVerifier | None = None,
        jobs: int = 1,
    ) -> None:
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.base_config = base_config or SystemConfig.paper_testbed(
            deterministic=True
        )
        self.verifier = verifier if verifier is not None else SampledVerifier()
        self.jobs = jobs
        self.surrogates: list[InterpolatedSurrogate | AnalyticSurrogate] = []
        self._base_hash = normalized_config_hash(self.base_config)
        self.counters: dict[str, int] = {
            "queries": 0,
            "store_hits": 0,
            "surrogate_hits": 0,
            "simulations": 0,
            "errors": 0,
            "out_of_envelope": 0,
        }

    # -- surrogate management ----------------------------------------------
    def add_surrogate(
        self, surrogate: InterpolatedSurrogate | AnalyticSurrogate
    ) -> None:
        """Register a fitted or analytic surrogate for query answering."""
        if surrogate.envelope.config_hash != self._base_hash:
            raise ValueError(
                f"surrogate {surrogate.name!r} was fitted against config "
                f"{surrogate.envelope.config_hash}, but this tier serves "
                f"{self._base_hash}"
            )
        self.surrogates.append(surrogate)

    def fit(
        self,
        workload: str,
        axes: dict[str, Any],
        params: dict[str, Any] | None = None,
        seeds: tuple[int, ...] = (2019,),
        metrics: list[str] | None = None,
        free_params: tuple[str, ...] = (),
        name: str | None = None,
        jobs: int | None = None,
    ) -> InterpolatedSurrogate:
        """Sweep ``axes`` over the base config, fit and register a surrogate.

        The campaign writes every point into this tier's store, so the
        fit both trains the surrogate *and* warms the store — the grid
        points themselves will answer from tier 1.
        """
        from repro.campaign.runner import run_campaign
        from repro.campaign.spec import CampaignSpec, SweepAxis

        spec = CampaignSpec(
            name=name or f"fit-{workload}",
            workload=workload,
            base_config=self.base_config,
            axes=tuple(SweepAxis(key, tuple(values)) for key, values in axes.items()),
            params=params or {},
            seeds=seeds,
        )
        result = run_campaign(
            spec, jobs=jobs or self.jobs, cache_dir=self.store.directory
        )
        surrogate = fit_surrogate(
            result,
            axes=list(axes),
            base_config=self.base_config,
            metrics=metrics,
            free_params=free_params,
            name=name,
        )
        self.surrogates.append(surrogate)
        return surrogate

    # -- query plumbing ----------------------------------------------------
    def _resolve(self, query: Query) -> tuple[SystemConfig, str, dict[str, Any]]:
        """(resolved config, store key, params-with-defaults) of a query.

        The key mirrors the campaign runner exactly — same overrides
        application, same seed placement, same params-as-given — so
        campaign-produced entries answer serve queries and vice versa.
        """
        from repro.campaign.spec import apply_config_overrides

        config = apply_config_overrides(self.base_config, query.config_overrides)
        config = config.evolve(seed=query.seed)
        key = query_key(query.workload, config, query.params, query.seed)
        resolved = {**_workload_defaults(query.workload), **query.params}
        return config, key, resolved

    def _implied_overrides(
        self, envelope: Any, config_overrides: dict[str, Any]
    ) -> dict[str, Any]:
        """Fill dotted envelope axes the query left at their config value.

        A query that omits ``network.switch_count`` still *has* a hop
        count — the base config's — so the envelope check and the
        prediction both see it explicitly.
        """
        implied = dict(config_overrides)
        for axis in envelope.axes:
            if "." not in axis or axis in implied:
                continue
            value: Any = self.base_config
            try:
                for attr in axis.split("."):
                    value = getattr(value, attr)
            except AttributeError:
                continue
            implied[axis] = value
        return implied

    def _match(
        self, query: Query, resolved: dict[str, Any]
    ) -> tuple[Any, dict[str, Any]] | None:
        """First non-quarantined surrogate whose envelope contains ``query``.

        Returns the surrogate plus the config overrides to predict with
        (the query's, completed with base-config values for dotted axes
        the query left implicit).
        """
        eligible = False
        for surrogate in self.surrogates:
            if surrogate.envelope.workload != query.workload:
                continue
            eligible = True
            if surrogate.quarantined:
                continue
            overrides = self._implied_overrides(
                surrogate.envelope, query.config_overrides
            )
            if surrogate.envelope.contains(resolved, overrides, self._base_hash):
                return surrogate, overrides
        if eligible:
            self.counters["out_of_envelope"] += 1
        return None

    def _payload(self, query: Query, config: SystemConfig, key: str) -> tuple:
        """An :func:`repro.campaign.runner._execute_point` payload for a miss."""
        return (
            "serve",  # campaign name slot — shows up in record provenance
            0,
            query.workload,
            config,
            query.params,
            query.seed,
            query.config_overrides,
            key,
            False,  # trace
            None,  # timeout_s
            0,  # retries
            0.0,  # retry_backoff_s
            str(self.store.directory),
        )

    def _answer_from_record(
        self,
        query: Query,
        key: str,
        record: dict[str, Any],
        source: str,
        verification: Verification | None = None,
    ) -> Answer:
        if record.get("status") != "ok":
            self.counters["errors"] += 1
            return Answer(
                query=query,
                measurements={},
                source=SOURCE_ERROR,
                key=key,
                config_hash=record.get("config_hash", ""),
                error=record.get("error") or "simulation failed",
                verification=verification,
            )
        return Answer(
            query=query,
            measurements=dict(record["measurements"]),
            source=source,
            key=key,
            config_hash=record.get("config_hash", ""),
            verification=verification,
        )

    # -- the front door ----------------------------------------------------
    def query(
        self,
        workload: str | Query,
        params: dict[str, Any] | None = None,
        config_overrides: dict[str, Any] | None = None,
        seed: int = 2019,
    ) -> Answer:
        """Answer one what-if question (store → surrogate → simulation)."""
        if isinstance(workload, Query):
            q = workload
        else:
            q = Query(workload, params or {}, config_overrides or {}, seed)
        (answer,) = self.query_batch([q], jobs=1)
        return answer

    def query_batch(
        self, queries: list[Query], jobs: int | None = None
    ) -> list[Answer]:
        """Answer many queries; cache misses fan out across ``jobs`` workers.

        Answers come back in query order.  Store and surrogate answers
        cost microseconds; the remaining misses (plus the sampled
        verification re-simulations) run through the work-stealing
        executor when ``jobs > 1``.
        """
        from repro.campaign.runner import _execute_point
        from repro.serve.executor import WorkStealingExecutor

        jobs = jobs if jobs is not None else self.jobs
        started = time.perf_counter()
        answers: list[Answer | None] = [None] * len(queries)
        #: query index -> simulation payload (misses + sampled audits).
        needs_sim: dict[int, tuple] = {}
        #: query index -> (surrogate, prediction) awaiting its audit.
        audits: dict[int, tuple[Any, dict[str, float]]] = {}

        for index, q in enumerate(queries):
            self.counters["queries"] += 1
            config, key, resolved = self._resolve(q)
            cached = self.store.get(key)
            if cached is not None and cached.get("status") == "ok":
                self.counters["store_hits"] += 1
                answers[index] = self._answer_from_record(
                    q, key, cached, SOURCE_STORE
                )
                continue
            match = self._match(q, resolved)
            surrogate = None
            if match is not None:
                surrogate, implied = match
                try:
                    predicted = surrogate.predict(resolved, implied)
                except OutOfEnvelope:  # pragma: no cover - envelope said yes
                    surrogate = None
            if surrogate is not None:
                self.counters["surrogate_hits"] += 1
                if self.verifier.should_verify():
                    audits[index] = (surrogate, predicted)
                    needs_sim[index] = self._payload(q, config, key)
                else:
                    answers[index] = Answer(
                        query=q,
                        measurements=predicted,
                        source=SOURCE_SURROGATE,
                        key=key,
                        config_hash=config.stable_hash(),
                        surrogate=surrogate.name,
                    )
                continue
            needs_sim[index] = self._payload(q, config, key)

        if needs_sim:
            items = sorted(needs_sim.items())
            payloads = [payload for _, payload in items]
            self.counters["simulations"] += len(payloads)
            if jobs > 1 and len(payloads) > 1:
                with WorkStealingExecutor(
                    _execute_point, min(jobs, len(payloads))
                ) as executor:
                    records = executor.map(payloads)
            else:
                records = [_execute_point(payload) for payload in payloads]
            for (index, payload), record in zip(items, records):
                q, key = queries[index], payload[7]
                if index in audits:
                    surrogate, predicted = audits[index]
                    if record.get("status") != "ok":
                        # Can't audit against a failed simulation; the
                        # error is the answer either way.
                        self.counters["surrogate_hits"] -= 1
                        answers[index] = self._answer_from_record(
                            q, key, record, SOURCE_ERROR
                        )
                        continue
                    verification = self.verifier.check(
                        surrogate, predicted, record["measurements"]
                    )
                    if verification.passed:
                        answers[index] = Answer(
                            query=q,
                            measurements=predicted,
                            source=SOURCE_SURROGATE,
                            key=key,
                            config_hash=record.get("config_hash", ""),
                            surrogate=surrogate.name,
                            verification=verification,
                        )
                    else:
                        # Audit failed: serve the truth, not the guess.
                        self.counters["surrogate_hits"] -= 1
                        answers[index] = self._answer_from_record(
                            q, key, record, SOURCE_SIMULATION, verification
                        )
                else:
                    answers[index] = self._answer_from_record(
                        q, key, record, SOURCE_SIMULATION
                    )

        elapsed = time.perf_counter() - started
        for answer in answers:
            assert answer is not None
            answer.duration_s = elapsed / len(queries) if queries else 0.0
        return answers  # type: ignore[return-value]

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Counter totals plus derived rates, store and verifier stats."""
        queries = self.counters["queries"]

        def rate(count: int) -> float:
            return count / queries if queries else 0.0

        return {
            **self.counters,
            "rates": {
                "store_hit": rate(self.counters["store_hits"]),
                "surrogate_hit": rate(self.counters["surrogate_hits"]),
                "simulation": rate(self.counters["simulations"]),
                "out_of_envelope": rate(self.counters["out_of_envelope"]),
            },
            "surrogates": [
                {
                    "name": surrogate.name,
                    "quarantined": surrogate.quarantined,
                    "workload": surrogate.envelope.workload,
                }
                for surrogate in self.surrogates
            ],
            "store": self.store.stats(),
            "verifier": self.verifier.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServeTier store={self.store.directory} "
            f"surrogates={len(self.surrogates)} "
            f"queries={self.counters['queries']}>"
        )
