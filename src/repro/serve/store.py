"""Content-addressed result store: the serving tier's source of truth.

One JSON file per key under one directory.  A key digests everything
that determines a result — the workload name, the fully resolved
:class:`~repro.node.config.SystemConfig` (via its canonical stable
hash), the workload parameters, the seed and the *code version* (a
digest of every ``repro`` source file) — so results computed by any
producer (a campaign sweep, a serve-tier cache miss, a verifier
re-simulation) land in the same address space and are interchangeable.

Concurrency
-----------
The store is safe under any number of concurrent writers and readers
on one filesystem, without locks:

* every ``put`` writes to a unique temp file in the store directory and
  publishes it with ``os.replace`` — an atomic rename, so a reader
  sees either the complete old payload or the complete new one, never
  a torn write;
* writers of the *same* key race benignly: last rename wins, and both
  payloads were complete;
* a reader that does catch a malformed file (a temp file orphaned by a
  killed writer, manual tampering) treats it as a miss rather than
  poisoning the run.

:class:`repro.campaign.cache.ResultCache` is this class — the campaign
layer's on-disk cache was absorbed into the serving store, so warming
a campaign cache warms the serve tier and vice versa.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Iterator

from repro.sim.hashing import stable_digest

__all__ = ["ResultStore", "code_version", "query_key"]

#: Reserved payload key holding the producing code version.  Stamped by
#: :meth:`ResultStore.put`, stripped by :meth:`ResultStore.get`, consumed
#: by :meth:`ResultStore.prune` — never visible to store clients.
CODE_STAMP = "__code__"


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the installed ``repro`` package's source text.

    Any edit to any module changes the digest, invalidating every store
    entry keyed with it — stale results can never survive a code change.
    """
    import repro  # deferred: the store imports before the package finishes

    root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def query_key(workload: str, config: Any, params: dict[str, Any], seed: int) -> str:
    """The content address of one (workload, config, params, seed) result.

    The config contributes through :func:`repro.sim.hashing.stable_digest`
    canonicalization, so two configs hash equal iff every nested field is
    equal; the code version contributes so results never outlive the
    simulator that produced them.
    """
    return stable_digest(
        {
            "workload": workload,
            "config": config,
            "params": params,
            "seed": seed,
            "code": code_version(),
        }
    )


class ResultStore:
    """A directory of ``<key>.json`` record payloads, concurrency-safe."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Host-side access counters (this handle only, not the directory).
        self.gets = 0
        self.hits = 0
        self.puts = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None."""
        self.gets += 1
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A torn or tampered file must not poison reruns.
            return None
        self.hits += 1
        if isinstance(payload, dict):
            payload.pop(CODE_STAMP, None)
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` atomically (write + rename).

        Concurrent writers of the same key race benignly: each writes a
        complete temp file and the last rename wins.

        The payload is stamped with the producing :func:`code_version`
        (under :data:`CODE_STAMP`, stripped again on read) so a later
        :meth:`prune` can evict entries the current simulator can no
        longer vouch for.  Keys already embed the code version, which
        makes stale entries unreachable — the stamp is what lets the
        garbage collector *find* them.
        """
        path = self._path(key)
        fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(
                    {**payload, CODE_STAMP: code_version()}, handle, sort_keys=True
                )
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.puts += 1

    def prune(self) -> dict[str, Any]:
        """Evict every entry the current code version cannot vouch for.

        Because :func:`code_version` participates in the key, a code
        change makes old entries *unreachable* rather than wrong — they
        sit on disk forever unless collected.  This walks the directory
        and deletes entries whose :data:`CODE_STAMP` differs from the
        running version, plus anything unvouchable at all: malformed
        JSON, entries missing the stamp (pre-stamp producers), and
        orphaned writer temp files.

        Safe to run while producers are active: a concurrent ``put`` of
        a live entry re-publishes it atomically with the current stamp,
        and deletion races are tolerated (a file that vanishes between
        stat and unlink counts as someone else's work).

        Returns ``{"scanned", "kept", "removed", "bytes_reclaimed"}``.
        """
        current = code_version()
        scanned = kept = removed = reclaimed = 0
        candidates = list(self.directory.glob("*.json")) + [
            path for path in self.directory.glob(".*.tmp") if path.is_file()
        ]
        for path in candidates:
            scanned += 1
            stale = True
            if path.suffix == ".json":
                try:
                    with open(path, encoding="utf-8") as handle:
                        payload = json.load(handle)
                    stale = (
                        not isinstance(payload, dict)
                        or payload.get(CODE_STAMP) != current
                    )
                except (json.JSONDecodeError, OSError):
                    stale = True
            if not stale:
                kept += 1
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue  # lost a race with another collector/writer
            removed += 1
            reclaimed += size
        return {
            "scanned": scanned,
            "kept": kept,
            "removed": removed,
            "bytes_reclaimed": reclaimed,
        }

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        """Every key currently present, in no particular order."""
        for path in self.directory.glob("*.json"):
            yield path.stem

    def stats(self) -> dict[str, Any]:
        """This handle's access counters plus the directory's entry count."""
        return {
            "entries": len(self),
            "gets": self.gets,
            "hits": self.hits,
            "misses": self.gets - self.hits,
            "puts": self.puts,
            "hit_rate": self.hits / self.gets if self.gets else 0.0,
        }

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.directory} entries={len(self)}>"
