"""A work-stealing process executor for simulation jobs.

The campaign runner used to deal pending points into one strided chunk
per pool worker.  That amortised the pool's per-task dispatch cost, but
froze the schedule at submission time: a worker that drew the short
chunk idled while another ground through the long one, and ``--jobs``
barely scaled.  Here the schedule is dynamic instead — every pending
task sits in one shared queue and each worker *steals* the next one the
moment it finishes its previous task, so the load balances itself no
matter how uneven the per-task costs are, and the dispatch cost is one
queue operation per task (microseconds) instead of one pool round-trip.

The executor is deliberately small: a picklable top-level function, a
task queue, a result queue and ``jobs`` worker processes.  Tasks are
identified by monotonically increasing tickets, so results can be
collected out of order and reassembled; :meth:`map` returns results in
submission order regardless of which worker ran what.  Exceptions
raised by the function travel back as ``(ticket, None, error_text)``
triples and re-raise (for :meth:`map`) or resolve the corresponding
job (for :class:`repro.serve.queue.JobQueue`).

Used by :func:`repro.campaign.runner.run_campaign` for sweep fan-out
and by :class:`repro.serve.queue.JobQueue` for serving-tier cache
misses.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
import queue as queue_module
import traceback
from collections.abc import Callable, Sequence
from typing import Any

__all__ = ["ExecutorError", "WorkStealingExecutor", "pool_context"]

#: Seconds between liveness checks while waiting on the result queue.
_POLL_S = 0.5


class ExecutorError(RuntimeError):
    """A task raised in a worker, or the worker pool died."""


def pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (fast, shares the loaded registry); else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_loop(fn: Callable[[Any], Any], tasks: Any, results: Any) -> None:
    """Steal tasks until the ``None`` sentinel arrives.

    Top-level so it pickles under the spawn start method.  Every task
    produces exactly one result triple — success or error — so the
    parent can account for completions.
    """
    while True:
        item = tasks.get()
        if item is None:
            return
        ticket, payload = item
        try:
            results.put((ticket, fn(payload), None))
        except BaseException:  # noqa: BLE001 - error travels to the parent
            results.put((ticket, None, traceback.format_exc()))


class WorkStealingExecutor:
    """``jobs`` worker processes pulling tasks from one shared queue.

    Parameters
    ----------
    fn:
        A picklable top-level callable applied to each submitted
        payload in a worker process.
    jobs:
        Worker process count (>= 1).
    context:
        A multiprocessing context; defaults to fork when available.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        jobs: int,
        context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        ctx = context or pool_context()
        self._tasks: Any = ctx.Queue()
        self._results: Any = ctx.Queue()
        self._workers = [
            ctx.Process(
                target=_worker_loop,
                args=(fn, self._tasks, self._results),
                daemon=True,
                name=f"steal-worker-{index}",
            )
            for index in range(jobs)
        ]
        for worker in self._workers:
            worker.start()
        self._next_ticket = 0
        self._outstanding = 0
        self._closed = False

    @property
    def jobs(self) -> int:
        """The worker process count."""
        return len(self._workers)

    # -- submission --------------------------------------------------------
    def submit(self, payload: Any) -> int:
        """Enqueue one task; returns its ticket."""
        if self._closed:
            raise RuntimeError("executor is closed")
        ticket = self._next_ticket
        self._next_ticket += 1
        self._outstanding += 1
        self._tasks.put((ticket, payload))
        return ticket

    # -- collection --------------------------------------------------------
    def next_result(self, timeout: float | None = None) -> tuple[int, Any, str | None]:
        """The next completed ``(ticket, result, error)`` in completion order.

        Blocks until a result arrives (polling worker liveness so a
        dead pool raises instead of hanging forever).  ``timeout`` of
        ``None`` waits indefinitely; otherwise ``queue.Empty`` surfaces
        after roughly that many seconds without a completion.
        """
        if self._outstanding <= 0:
            raise RuntimeError("no outstanding tasks to collect")
        waited = 0.0
        while True:
            try:
                ticket, value, error = self._results.get(timeout=_POLL_S)
            except queue_module.Empty:
                if not any(worker.is_alive() for worker in self._workers):
                    raise ExecutorError(
                        f"all {len(self._workers)} executor workers died with "
                        f"{self._outstanding} task(s) outstanding"
                    ) from None
                waited += _POLL_S
                if timeout is not None and waited >= timeout:
                    raise
                continue
            self._outstanding -= 1
            return ticket, value, error

    def map(self, payloads: Sequence[Any]) -> list[Any]:
        """Run every payload; results in submission order.

        The first task error aborts the batch with :class:`ExecutorError`
        carrying the worker-side traceback.
        """
        tickets = [self.submit(payload) for payload in payloads]
        collected: dict[int, Any] = {}
        while len(collected) < len(tickets):
            ticket, value, error = self.next_result()
            if error is not None:
                raise ExecutorError(error)
            collected[ticket] = value
        return [collected[ticket] for ticket in tickets]

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Send each worker its sentinel and join them."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
        for worker in self._workers:
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5.0)
        self._tasks.close()
        self._results.close()

    def __enter__(self) -> "WorkStealingExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<WorkStealingExecutor jobs={len(self._workers)} "
            f"outstanding={self._outstanding} {state}>"
        )
