"""Sampled verification: keep surrogates honest without paying full price.

A surrogate answer is cheap *because* it skips the simulator — which
means nothing in the answer itself says whether the surrogate has
drifted out of touch with the code it was fitted against.  The
:class:`SampledVerifier` closes that loop: a deterministic fraction of
in-envelope answers is re-simulated, the surrogate's prediction is
compared metric by metric against the fresh simulation, and a
surrogate whose worst relative error exceeds the margin (5% by
default, matching the repo-wide model-vs-simulation acceptance bar) is
**quarantined** — it stops answering, and every subsequent query it
would have served falls back to simulation until it is refitted.

Sampling is counter-based, not random: with ``fraction=0.1`` the 1st,
11th, 21st... sampled decisions verify.  Determinism keeps serve runs
reproducible (the same query batch always verifies the same queries)
and guarantees the *first* answer of every fresh surrogate is audited,
so a badly fitted surrogate is caught on query one, not query N.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

__all__ = ["SampledVerifier", "Verification"]


class _Quarantinable(Protocol):
    name: str
    quarantined: bool


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class Verification:
    """Outcome of one surrogate-vs-simulation comparison."""

    surrogate: str
    #: Worst relative error across the compared metrics.
    max_relative_error: float
    #: ``metric -> (predicted, simulated)`` for every compared metric.
    compared: dict[str, tuple[float, float]]
    passed: bool

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-encodable form (answer provenance)."""
        return {
            "surrogate": self.surrogate,
            "max_relative_error": self.max_relative_error,
            "compared": {k: list(v) for k, v in self.compared.items()},
            "passed": self.passed,
        }


@dataclass
class SampledVerifier:
    """Deterministically re-simulate a fraction of surrogate answers.

    Parameters
    ----------
    fraction:
        Target fraction of surrogate answers to verify, in ``[0, 1]``.
        ``0`` disables verification entirely; ``1`` verifies every
        answer.  Intermediate values verify every ``round(1/fraction)``-th
        answer, starting with the first.
    margin:
        Maximum tolerated relative error per metric; one metric beyond
        the margin quarantines the surrogate.
    """

    fraction: float = 0.1
    margin: float = 0.05
    #: Sampling decisions taken so far (verified or skipped).
    decisions: int = field(default=0, init=False)
    #: Verifications actually performed.
    verifications: int = field(default=0, init=False)
    #: Verifications that exceeded the margin.
    quarantines: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.margin <= 0.0:
            raise ValueError(f"margin must be > 0, got {self.margin}")
        self._stride = round(1.0 / self.fraction) if self.fraction > 0 else 0

    def should_verify(self) -> bool:
        """Take one sampling decision (counter-based, deterministic)."""
        if self._stride == 0:
            return False
        decision = self.decisions % self._stride == 0
        self.decisions += 1
        return decision

    def check(
        self,
        surrogate: _Quarantinable,
        predicted: dict[str, Any],
        simulated: dict[str, Any],
    ) -> Verification:
        """Judge one prediction against a fresh simulation.

        Only metrics present and numeric on *both* sides are compared —
        a surrogate predicts a subset of the workload's measurements
        (e.g. not the echoed parameter values).  A failure flips the
        surrogate's ``quarantined`` flag as a side effect.
        """
        compared: dict[str, tuple[float, float]] = {}
        worst = 0.0
        for metric, guess in predicted.items():
            truth = simulated.get(metric)
            if not (_numeric(guess) and _numeric(truth)):
                continue
            scale = abs(truth) if truth else 1.0
            error = abs(float(guess) - float(truth)) / scale
            compared[metric] = (float(guess), float(truth))
            worst = max(worst, error)
        if not compared:
            raise ValueError(
                f"surrogate {surrogate.name!r} and the simulation share no "
                f"numeric metrics — nothing to verify"
            )
        passed = worst <= self.margin
        self.verifications += 1
        if not passed:
            surrogate.quarantined = True
            self.quarantines += 1
        return Verification(
            surrogate=surrogate.name,
            max_relative_error=worst,
            compared=compared,
            passed=passed,
        )

    def stats(self) -> dict[str, Any]:
        """Counter snapshot for the serve tier's stats block."""
        return {
            "fraction": self.fraction,
            "margin": self.margin,
            "decisions": self.decisions,
            "verifications": self.verifications,
            "quarantines": self.quarantines,
        }
