"""Completion-queue entries and completion moderation.

"UCP reduces the overhead of progress using unsignaled completions,
which means the NIC DMA-writes a completion only every c operations to
indicate the completion of all c operations (c = 64 in UCX)" — §6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.nic.descriptor import Message

__all__ = ["CompletionModeration", "Cqe"]

_cqe_ids = itertools.count(1)


@dataclass(frozen=True)
class Cqe:
    """One completion-queue entry as seen by polling software.

    ``completes`` is the number of posted operations this entry retires
    (1 when every message is signaled; up to the moderation period with
    unsignaled completions — the entry acknowledges itself plus all
    unsignaled predecessors on the queue pair).

    ``status`` is ``"ok"`` for a successful completion and ``"error"``
    when the transport gave up (retry budget exhausted); ``error`` then
    carries the reason.  Error CQEs still retire their TxQ slots, so a
    failed message never wedges the queue pair.
    """

    message: "Message"
    completes: int = 1
    status: str = "ok"
    error: str | None = None
    cqe_id: int = field(default_factory=lambda: next(_cqe_ids))

    def __post_init__(self) -> None:
        if self.completes < 1:
            raise ValueError(f"a CQE must complete >= 1 operation, got {self.completes}")
        if self.status not in ("ok", "error"):
            raise ValueError(f"CQE status must be 'ok' or 'error', got {self.status!r}")
        if (self.error is not None) != (self.status == "error"):
            raise ValueError("CQE error text must accompany exactly the error status")


class CompletionModeration:
    """Decides which posts are signaled, per queue pair.

    Parameters
    ----------
    signal_period:
        Request a CQE every ``signal_period``-th post (1 = every post,
        the raw-UCT ``put_bw`` behaviour; 64 = UCX's UCP default).
    """

    def __init__(self, signal_period: int = 1) -> None:
        if signal_period < 1:
            raise ValueError(f"signal_period must be >= 1, got {signal_period}")
        self.signal_period = signal_period
        self._since_signal = 0

    def on_post(self) -> bool:
        """Register one post; return True if it must be signaled."""
        self._since_signal += 1
        if self._since_signal >= self.signal_period:
            self._since_signal = 0
            return True
        return False

    @property
    def pending_unsignaled(self) -> int:
        """Posts since the last signaled one (retired by the next CQE)."""
        return self._since_signal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompletionModeration period={self.signal_period}"
            f" pending={self._since_signal}>"
        )
