"""Message descriptors (the paper's "MD" / InfiniBand WQE).

A :class:`Message` is the unit the whole stack reasons about: it is
created by the LLP post, carried through PCIe, fabric and target
memory, and carries a timestamp journal that gives the simulation its
ground truth for every stage boundary (the analytical models are
validated against these journals *and* against the analyzer-trace
methodology, independently).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.nic.queues import QueuePair

__all__ = ["Message", "MessageOp"]

_message_ids = itertools.count(1)


class MessageOp(enum.Enum):
    """Operation semantics, mirroring the paper's two benchmark modes."""

    #: RDMA write (UCX ``put``): no target-CPU involvement.
    PUT = "put"
    #: Active message / send-receive (UCX ``am``): target CPU polls.
    AM = "am"
    #: RDMA read (UCX ``get``): the initiator pulls data from the
    #: target's memory; the target CPU is never involved.
    GET = "get"
    #: RDMA atomic (UCX ``atomic_fadd``-style): read-modify-write in
    #: the target's memory, old value returned; target CPU uninvolved.
    ATOMIC = "atomic"


@dataclass
class Message:
    """One message on the critical path.

    Attributes
    ----------
    op:
        PUT (RDMA-write) or AM (send-receive).
    payload_bytes:
        Application payload size (8 bytes throughout the paper).
    inline:
        Payload travels inside the descriptor (no payload DMA-read).
    pio:
        Descriptor written by PIO copy (no descriptor DMA-read).
    signaled:
        Whether the NIC must DMA-write a CQE for this message.  Set by
        completion moderation at post time.
    recv_target:
        Name of the target-side mailbox the payload lands in.
    qp:
        Owning queue pair (initiator side).
    timestamps:
        Journal of stage boundaries, keyed by stage name:
        ``posted`` (LLP post began), ``pio_written`` (descriptor handed
        to the RC), ``nic_arrival`` (descriptor reached the NIC),
        ``wire_out`` (left the initiator NIC), ``target_nic`` (reached
        the target NIC), ``payload_visible`` (target memory updated),
        ``ack_rx`` (initiator NIC got the ACK), ``cqe_visible``
        (completion readable by the initiator CPU).
    """

    op: MessageOp
    payload_bytes: int
    inline: bool = True
    pio: bool = True
    signaled: bool = True
    recv_target: str = "recv"
    #: Name of the destination NIC port; None = the fabric peer (the
    #: two-node fast path).
    dst_nic: str | None = None
    qp: "QueuePair | None" = None
    context: Any = None
    #: Packet sequence number, assigned per queue pair at first
    #: transmission while the IB-RC reliability layer is active; stays
    #: ``None`` on clean runs.
    psn: int | None = None
    timestamps: dict[str, float] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(f"payload_bytes must be >= 0, got {self.payload_bytes}")

    def stamp(self, stage: str, time_ns: float) -> None:
        """Record the first time ``stage`` is reached (idempotent)."""
        self.timestamps.setdefault(stage, time_ns)

    def interval(self, start: str, end: str) -> float:
        """Elapsed ns between two recorded stages.

        Raises
        ------
        KeyError
            If either stage has not been stamped.
        """
        return self.timestamps[end] - self.timestamps[start]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message#{self.msg_id} {self.op.value} {self.payload_bytes}B"
            f"{' inline' if self.inline else ''}{' signaled' if self.signaled else ''}>"
        )
