"""NIC model (ConnectX-4-like) implementing the paper's §2 mechanisms.

The NIC exposes transmit queues (TxQ) and completion queues (CQ) to the
CPU.  Messages are initiated either by:

* **PIO + inlining** (the paper's small-message fast path): the CPU
  writes the whole message descriptor, payload included, into device
  memory in 64-byte chunks; the NIC can transmit immediately — no DMA
  reads; or
* **DoorBell + DMA** (the large-message path): an 8-byte doorbell ring,
  after which the NIC DMA-reads the descriptor and then the payload —
  two PCIe round trips.

On a successful transmission the initiator NIC receives a link-level
ACK from the target NIC and then DMA-writes a 64-byte completion (CQE)
to the CQ.  Completion *moderation* ("unsignaled completions", §6) lets
software request a CQE only every c-th operation, amortising both the
DMA write and the polling cost.
"""

from repro.nic.config import NicConfig
from repro.nic.completion import CompletionModeration, Cqe
from repro.nic.descriptor import Message, MessageOp
from repro.nic.nic import Nic
from repro.nic.queues import CompletionQueue, QueuePair, TransmitQueue

__all__ = [
    "CompletionModeration",
    "CompletionQueue",
    "Cqe",
    "Message",
    "MessageOp",
    "Nic",
    "NicConfig",
    "QueuePair",
    "TransmitQueue",
]
