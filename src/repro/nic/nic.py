"""The NIC: PCIe endpoint on one side, fabric port on the other.

Implements both §2 transmit paths (PIO+inline fast path and the
doorbell + DMA-read path), the receive path (payload DMA-write through
the target RC), link-level ACKs and ACK-gated completion generation
with moderation.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING

from repro.network.fabric import Fabric, FrameKind, NetworkFrame
from repro.network.wire import frame_trace_attrs
from repro.nic.completion import CompletionModeration, Cqe
from repro.nic.config import NicConfig
from repro.nic.descriptor import Message, MessageOp
from repro.nic.queues import CompletionQueue, QueuePair, TransmitQueue
from repro.nic.reliability import Reliability
from repro.pcie.link import Direction, PcieLink
from repro.pcie.packets import Tlp, TlpType
from repro.pcie.root_complex import HostMemory
from repro.sim.engine import Environment, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.inject import FaultInjector
    from repro.nic.offload import OffloadEngine

__all__ = ["Nic"]


class Nic:
    """One simulated InfiniBand adapter."""

    def __init__(
        self,
        env: Environment,
        link: PcieLink,
        config: NicConfig,
        memory: HostMemory,
        name: str = "nic",
        faults: "FaultInjector | None" = None,
    ) -> None:
        self.env = env
        self.link = link
        self.config = config
        self.memory = memory
        self.name = name
        self.fabric: Fabric | None = None
        self._qp_counter = itertools.count(0)
        self._fetch_tags = itertools.count(1)
        #: Outstanding DMA-read segments per in-flight message id.
        self._pending_segments: dict[int, int] = {}
        self._tx_faults = faults.site("nic.tx") if faults is not None else None
        #: IB-RC transport state; None on clean runs, so no timer is
        #: armed and no PSN assigned unless a fault plan is active.
        self.reliability: Reliability | None = (
            Reliability(self) if faults is not None and faults.enabled else None
        )
        self.messages_transmitted = 0
        self.messages_received = 0
        self.frames_discarded = 0
        self.frames_dropped_tx = 0
        self.transport_errors = 0
        #: Collective offload engine, created on first use so runs that
        #: never offload pay nothing (see :mod:`repro.nic.offload`).
        self._offload: "OffloadEngine | None" = None
        link.set_receiver(Direction.DOWNSTREAM, self._on_downstream_tlp)

    # -- topology ----------------------------------------------------------------
    def attach_fabric(self, fabric: Fabric) -> None:
        """Connect this NIC's port to the interconnect."""
        self.fabric = fabric
        fabric.attach(self)

    @property
    def peer_name(self) -> str:
        """Name of the NIC on the other end of the fabric."""
        if self.fabric is None:
            raise SimulationError(f"{self.name}: no fabric attached")
        return self.fabric.peer_of(self.name)

    # -- CPU-facing resources -------------------------------------------------------
    def create_qp(self, signal_period: int = 1, name: str | None = None) -> QueuePair:
        """Create a queue pair with its TxQ and host-memory CQ."""
        index = next(self._qp_counter)
        qp_name = name or f"{self.name}.qp{index}"
        txq = TransmitQueue(self.config.txq_depth, name=f"{qp_name}.txq")
        cq_mailbox = self.memory.mailbox(f"{qp_name}.cq")
        cq = CompletionQueue(cq_mailbox, name=f"{qp_name}.cq")
        moderation = CompletionModeration(signal_period)
        return QueuePair(txq, cq, moderation, name=qp_name)

    @property
    def offload(self) -> "OffloadEngine":
        """The collective offload engine (created on first access)."""
        if self._offload is None:
            from repro.nic.offload import OffloadEngine

            self._offload = OffloadEngine(self)
        return self._offload

    # -- PCIe side (initiator data path) ----------------------------------------------
    def _on_downstream_tlp(self, tlp: Tlp) -> None:
        if tlp.kind is TlpType.MWR:
            if tlp.purpose == "pio_post":
                self._on_pio_post(tlp.message)
            elif tlp.purpose == "doorbell":
                self._on_doorbell(tlp.message)
            elif tlp.purpose == "offload_post":
                self.offload.on_host_post(tlp.message)
            # Other MWr purposes (e.g. config writes) are timing-neutral.
        elif tlp.kind is TlpType.CPLD:
            self._on_completion_data(tlp)

    def _on_pio_post(self, message: Message) -> None:
        """PIO+inline fast path: descriptor and payload already here."""
        message.stamp("nic_arrival", self.env.now)
        if self.env.tracer.enabled:
            self.env.tracer.instant(
                "nic", "nic_arrival", track=self.name, msg=message.msg_id
            )
        self._schedule_transmit(message)

    def _on_doorbell(self, message: Message) -> None:
        """DoorBell path: fetch the descriptor via DMA read (§2 step 2)."""
        message.stamp("nic_arrival", self.env.now)
        self.link.send(
            Direction.UPSTREAM,
            Tlp(
                kind=TlpType.MRD,
                read_bytes=self.config.wqe_fetch_bytes,
                purpose="md_fetch",
                message=message,
                tag=next(self._fetch_tags),
            ),
        )

    def _on_completion_data(self, tlp: Tlp) -> None:
        """A CplD answered one of our DMA reads."""
        message: Message = tlp.message
        if tlp.purpose == "cpld:md_fetch":
            message.stamp("md_fetched", self.env.now)
            if message.inline:
                self._schedule_transmit(message)
            else:
                # §2 step 3: fetch the payload with DMA reads, one per
                # Max_Payload_Size segment.
                self._dma_read_segmented(message, "payload_fetch")
        elif tlp.purpose == "cpld:payload_fetch":
            if self._segment_arrived(message):
                message.stamp("payload_fetched", self.env.now)
                self._schedule_transmit(message)
        elif tlp.purpose == "cpld:read_serve":
            if self._segment_arrived(tlp.message):
                self._serve_read_response(tlp.message)
        elif tlp.purpose == "cpld:atomic_read":
            if self._segment_arrived(tlp.message):
                self._serve_atomic_response(tlp.message)

    def _dma_read_segmented(self, message: Message, purpose: str) -> None:
        """Issue a DMA read as Max_Payload_Size-sized MRd requests."""
        max_payload = self.link.config.max_tlp_payload_bytes
        segments = max(1, math.ceil(message.payload_bytes / max_payload))
        self._pending_segments[message.msg_id] = segments
        for index in range(segments):
            is_last = index == segments - 1
            size = (
                message.payload_bytes - max_payload * index
                if is_last
                else max_payload
            )
            self.link.send(
                Direction.UPSTREAM,
                Tlp(
                    kind=TlpType.MRD,
                    read_bytes=size,
                    purpose=purpose,
                    message=message,
                    tag=next(self._fetch_tags),
                ),
            )

    def _segment_arrived(self, message: Message) -> bool:
        """Account one CplD segment; True when the transfer completed."""
        remaining = self._pending_segments.get(message.msg_id, 1) - 1
        if remaining <= 0:
            self._pending_segments.pop(message.msg_id, None)
            return True
        self._pending_segments[message.msg_id] = remaining
        return False

    def _schedule_transmit(self, message: Message) -> None:
        """Queue the adapter's tx processing, then launch (§2 step 4).

        Fast path: with no tracer, no transport state and no tx faults,
        the tx-processing delay folds into the fabric route's compiled
        calendar entry — one event instead of one per stage.
        """
        if self.fabric is None:
            raise SimulationError(f"{self.name}: no fabric attached")
        tracer = self.env.tracer
        if (
            not tracer.enabled
            and self.reliability is None
            and self._tx_faults is None
        ):
            destination = message.dst_nic or self.peer_name
            size, kind = self._frame_plan(message)
            wire_out = self.env.now + self.config.tx_processing_ns
            if self.fabric.try_send_data_at(
                self.name, destination, message, size, kind, wire_out
            ):
                message.stamp("wire_out", wire_out)
                self.messages_transmitted += 1
                self.env.credit_fast_forwarded(1)
                return
        tspan = (
            tracer.begin("nic", "nic_tx", track=self.name, msg=message.msg_id)
            if tracer.enabled
            else None
        )
        self.env.defer(
            self._transmit, self.config.tx_processing_ns, args=(message, tspan)
        )

    def _transmit(self, message: Message, tspan: object) -> None:
        """Launch the message onto the fabric."""
        if self.fabric is None:  # pragma: no cover - checked at scheduling
            raise SimulationError(f"{self.name}: no fabric attached")
        message.stamp("wire_out", self.env.now)
        if tspan is not None:
            self.env.tracer.end(tspan)
        self.messages_transmitted += 1
        destination = message.dst_nic or self.peer_name
        if self.reliability is not None:
            qp = message.qp
            if qp is not None and message.psn is None:
                message.psn = qp.next_psn
                qp.next_psn += 1
            self.reliability.track(message, destination)
        self._launch_frame(message, destination)

    def _frame_plan(self, message: Message) -> tuple[int, FrameKind]:
        """Frame size and kind for one message, by operation."""
        if message.op is MessageOp.GET:
            # A read request carries only a header; the payload comes
            # back in the response.
            return 0, FrameKind.READ_REQUEST
        if message.op is MessageOp.ATOMIC:
            return message.payload_bytes, FrameKind.ATOMIC_REQUEST
        return message.payload_bytes, FrameKind.DATA

    def _launch_frame(self, message: Message, destination: str) -> None:
        """Send (or resend) the message's frame, subject to tx faults."""
        if self.fabric is None:  # pragma: no cover - checked by callers
            raise SimulationError(f"{self.name}: no fabric attached")
        size, kind = self._frame_plan(message)
        if self._tx_faults is not None:
            action = self._tx_faults.decide(msg=message.msg_id, kind=kind.value)
            if action == "drop":
                self.frames_dropped_tx += 1
                return
            if action == "corrupt":
                frame = self.fabric.send_data(
                    self.name, destination, message, size, kind=kind
                )
                frame.corrupted = True
                return
        self.fabric.send_data(self.name, destination, message, size, kind=kind)

    # -- fabric side --------------------------------------------------------------
    def on_network_frame(self, frame: NetworkFrame) -> None:
        """Fabric delivery entry point: dispatch by frame kind."""
        if frame.corrupted:
            # Link-level CRC failure: the frame is discarded here and
            # recovery is left to the transport (retransmit timer).
            self.frames_discarded += 1
            if self.env.tracer.enabled:
                self.env.tracer.instant(
                    "nic", "frame_discarded", track=self.name,
                    **frame_trace_attrs(frame),
                )
            return
        if frame.kind is FrameKind.DATA:
            self._on_data_frame(frame)
        elif frame.kind is FrameKind.READ_REQUEST:
            self._on_read_request(frame)
        elif frame.kind is FrameKind.ATOMIC_REQUEST:
            self._on_atomic_request(frame)
        elif frame.kind is FrameKind.READ_RESPONSE:
            self._on_read_response(frame)
        elif frame.kind is FrameKind.COLLECTIVE:
            # NIC-resident collectives: match against posted offload
            # descriptors, never wake the host (see repro.nic.offload).
            self.offload.on_frame(frame)
        else:
            self._on_ack_frame(frame)

    def _on_data_frame(self, frame: NetworkFrame) -> None:
        """Target side: ACK the frame, DMA-write the payload to memory."""
        message: Message = frame.message
        if self.reliability is not None and not self.reliability.first_delivery(
            message
        ):
            # Duplicate DATA (our earlier ACK was lost): re-ACK so the
            # initiator settles, but never re-deliver the payload.
            if self.fabric is None:  # pragma: no cover - attach precedes traffic
                raise SimulationError(f"{self.name}: no fabric attached")
            self.env.defer(
                self._emit_fabric_ack,
                self.fabric.config.ack_turnaround_ns,
                args=(frame,),
            )
            return
        message.stamp("target_nic", self.env.now)
        if self.env.tracer.enabled:
            self.env.tracer.instant(
                "nic", "target_nic", track=self.name, msg=message.msg_id
            )
        self.messages_received += 1
        if self.fabric is None:  # pragma: no cover - attach precedes traffic
            raise SimulationError(f"{self.name}: no fabric attached")
        # Fast path: fold the ACK turnaround into the reverse route's
        # compiled entry (one event for turnaround + every return hop).
        if self.fabric.try_send_ack_at(
            frame, self.env.now + self.fabric.config.ack_turnaround_ns
        ):
            self.env.credit_fast_forwarded(1)
        else:
            self.env.defer(
                self._emit_fabric_ack,
                self.fabric.config.ack_turnaround_ns,
                args=(frame,),
            )
        tracer = self.env.tracer
        tspan = (
            tracer.begin("nic", "nic_rx", track=self.name, msg=message.msg_id)
            if tracer.enabled
            else None
        )
        self.env.defer(
            self._deliver_payload, self.config.rx_processing_ns, args=(message, tspan)
        )

    def _emit_fabric_ack(self, frame: NetworkFrame) -> None:
        assert self.fabric is not None
        self.fabric.send_ack(frame)

    def _deliver_payload(self, message: Message, tspan: object) -> None:
        """Write the received payload into host memory via the RC.

        Payloads beyond the PCIe Max_Payload_Size are segmented into
        multiple MWr TLPs; the payload is visible once the last
        segment's RC-to-MEM completes.
        """
        if tspan is not None:
            self.env.tracer.end(tspan)
        mailbox = self.memory.mailbox(message.recv_target)

        def deliver(msg: Message, when: float) -> None:
            msg.stamp("payload_visible", when)
            mailbox.try_put(msg)
            if self.env.tracer.enabled:
                self.env.tracer.instant(
                    "nic", "payload_visible", track=self.name, msg=msg.msg_id
                )

        self._dma_write_segmented(
            message, message.payload_bytes, "payload_write", deliver
        )

    def _dma_write_segmented(
        self, message: Message, nbytes: int, purpose: str, deliver
    ) -> None:
        """Issue an upstream DMA write as Max_Payload_Size segments.

        ``deliver`` is attached to the final segment only: visibility
        follows the last byte.
        """
        max_payload = self.link.config.max_tlp_payload_bytes
        segments = max(1, math.ceil(nbytes / max_payload))
        for index in range(segments):
            is_last = index == segments - 1
            size = nbytes - max_payload * index if is_last else max_payload
            self.link.send(
                Direction.UPSTREAM,
                Tlp(
                    kind=TlpType.MWR,
                    payload_bytes=size,
                    purpose=purpose,
                    message=message,
                    deliver_to=deliver if is_last else None,
                ),
            )

    def _on_read_request(self, frame: NetworkFrame) -> None:
        """Target side of an RDMA read: fetch the data, respond.

        The target CPU is never involved: the NIC DMA-reads the
        requested bytes from host memory (MRd → CplD through the target
        RC) and ships them back in a READ_RESPONSE frame.
        """
        message: Message = frame.message
        if (
            self.reliability is not None
            and message.msg_id in self._pending_segments
        ):
            # A serve for this read is already in flight; its response
            # (or the next retransmitted request) covers this duplicate.
            self.reliability.duplicates_suppressed += 1
            return
        message.stamp("target_nic", self.env.now)
        self.messages_received += 1
        self._dma_read_segmented(message, "read_serve")

    def _on_atomic_request(self, frame: NetworkFrame) -> None:
        """Target side of an RDMA atomic: read-modify-write, respond.

        The NIC DMA-reads the operand location, applies the operation
        in its adapter logic, DMA-writes the new value back, and ships
        the *old* value to the initiator — all without the target CPU.
        """
        message: Message = frame.message
        if self.reliability is not None and not self.reliability.first_delivery(
            message
        ):
            # Responder replay (IB §9.4.5-style): duplicate atomics are
            # answered from the completed execution without re-running
            # the read-modify-write; an execution still in flight will
            # respond on its own.
            if message.msg_id not in self._pending_segments:
                self._send_read_response(message)
            return
        message.stamp("target_nic", self.env.now)
        self.messages_received += 1
        self._pending_segments[message.msg_id] = 1
        self.link.send(
            Direction.UPSTREAM,
            Tlp(
                kind=TlpType.MRD,
                read_bytes=message.payload_bytes,
                purpose="atomic_read",
                message=message,
                tag=next(self._fetch_tags),
            ),
        )

    def _serve_atomic_response(self, message: Message) -> None:
        """Atomic operand fetched: write back the new value, respond."""
        message.stamp("atomic_read", self.env.now)
        # Write the modified value back to target memory (no delivery
        # target: the visibility that matters is the initiator's).
        self.link.send(
            Direction.UPSTREAM,
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=message.payload_bytes,
                purpose="atomic_write",
                message=message,
            ),
        )
        self._send_read_response(message)

    def _serve_read_response(self, message: Message) -> None:
        """The CplD for a served read arrived: send the response."""
        message.stamp("read_served", self.env.now)
        self._send_read_response(message)

    def _send_read_response(self, message: Message) -> None:
        """Ship a READ_RESPONSE frame back to the requester."""
        if self.fabric is None:  # pragma: no cover - attach precedes traffic
            raise SimulationError(f"{self.name}: no fabric attached")
        requester = message.context if isinstance(message.context, str) else None
        self.fabric.send_data(
            self.name,
            requester or self.peer_name,
            message,
            message.payload_bytes,
            kind=FrameKind.READ_RESPONSE,
        )

    def _on_read_response(self, frame: NetworkFrame) -> None:
        """Initiator side: land the pulled data, complete the read.

        The response doubles as the acknowledgement — completion
        generation does not wait for a separate ACK.
        """
        message: Message = frame.message
        if self.reliability is not None and not self.reliability.settle(message):
            return
        message.stamp("response_rx", self.env.now)
        mailbox = self.memory.mailbox(message.recv_target)

        def deliver(msg: Message, when: float) -> None:
            msg.stamp("payload_visible", when)
            mailbox.try_put(msg)

        self._dma_write_segmented(
            message, message.payload_bytes, "read_payload_write", deliver
        )
        self._complete(message)

    def _on_ack_frame(self, frame: NetworkFrame) -> None:
        """Initiator side: ACK gates completion generation (§2 step 5)."""
        message: Message = frame.message
        if self.reliability is not None and not self.reliability.settle(message):
            return
        message.stamp("ack_rx", self.env.now)
        if self.env.tracer.enabled:
            self.env.tracer.instant(
                "nic", "ack_rx", track=self.name, msg=message.msg_id
            )
        self._complete(message)

    def _complete(self, message: Message) -> None:
        """ACK-equivalent received: run completion moderation + CQE."""
        qp = message.qp
        if qp is None:
            raise SimulationError(f"completion without a queue pair: {message!r}")
        completes = qp.on_ack(message)
        if completes == 0:
            return
        self._write_cqe(qp, Cqe(message=message, completes=completes), message)

    def _fail(self, message: Message, reason: str) -> None:
        """Transport gave up: surface a structured error CQE (never hang)."""
        qp = message.qp
        if qp is None:
            raise SimulationError(f"transport error without a queue pair: {message!r}")
        self.transport_errors += 1
        if self.env.tracer.enabled:
            self.env.tracer.instant(
                "nic", "transport_error", track=self.name,
                msg=message.msg_id, error=reason,
            )
            self.env.tracer.counter("nic", "transport_errors")
        completes = qp.on_error(message)
        self._write_cqe(
            qp,
            Cqe(message=message, completes=completes, status="error", error=reason),
            message,
        )

    def _write_cqe(self, qp: QueuePair, cqe: Cqe, message: Message) -> None:
        """DMA-write one CQE into the queue pair's host-memory CQ."""

        def deliver(_cqe: Cqe, when: float) -> None:
            message.stamp("cqe_visible", when)
            qp.cq.mailbox.try_put(_cqe)

        self.link.send(
            Direction.UPSTREAM,
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=self.config.cqe_bytes,
                purpose="cqe_write",
                message=cqe,
                deliver_to=deliver,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Nic {self.name!r} tx={self.messages_transmitted}"
            f" rx={self.messages_received}>"
        )
