"""NIC hardware parameters."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NicConfig"]


@dataclass(frozen=True)
class NicConfig:
    """Parameters of the simulated InfiniBand adapter.

    Attributes
    ----------
    txq_depth:
        Transmit-queue depth per queue pair.  Finite: "the user cannot
        post indefinitely" (§4.2); polling the CQ is the dequeue.
    cqe_bytes:
        Size of a completion-queue entry ("64 bytes in Mellanox
        InfiniBand", §2).
    inline_max_bytes:
        Largest payload that can be inlined into the descriptor; bigger
        payloads force the DMA-read path.
    pio_chunk_bytes:
        PIO copy granularity ("the PIO occurs in 64-byte chunks", §2).
    doorbell_bytes:
        Size of the doorbell MMIO store (8-byte atomic write, §2).
    wqe_fetch_bytes:
        Descriptor size DMA-read on the doorbell path.
    tx_processing_ns / rx_processing_ns:
        NIC pipeline time between PCIe arrival and wire launch (and the
        reverse).  The paper's Wire measurement absorbs these, so they
        default to zero; ablations can make them explicit.
    """

    txq_depth: int = 128
    cqe_bytes: int = 64
    inline_max_bytes: int = 64
    pio_chunk_bytes: int = 64
    doorbell_bytes: int = 8
    wqe_fetch_bytes: int = 64
    #: Descriptor header bytes preceding inline payload in a WQE; an
    #: inline post of x bytes occupies ceil((header + x) / chunk) PIO
    #: chunks.
    wqe_header_bytes: int = 48
    tx_processing_ns: float = 0.0
    rx_processing_ns: float = 0.0
    #: IB-RC transport: time without an ACK/response before the first
    #: retransmission.  The timer exists only while a fault plan is
    #: active — clean runs arm nothing (zero-perturbation guarantee).
    retransmit_timeout_ns: float = 4000.0
    #: Multiplier applied to the timeout per successive retry.
    retransmit_backoff: float = 2.0
    #: Retransmissions before the transport gives up and surfaces an
    #: error CQE (IB's Retry Count is a 3-bit field; 7 is the maximum).
    retry_budget: int = 7
    #: Collective-offload engine: adapter pipeline time to match one
    #: completed descriptor and emit one outgoing frame (or the host
    #: notification DMA).  Well under the host's per-hop LLP_post +
    #: 2×PCIe + RC-to-MEM + CQ-poll cost — that gap is exactly the
    #: host-bypass saving the offloaded collectives quantify.  Elided
    #: from stable hashes at its default so pre-offload cache keys and
    #: goldens are unchanged.
    offload_forward_ns: float = field(
        default=100.0, metadata={"elide_default_from_hash": True}
    )

    def __post_init__(self) -> None:
        if self.txq_depth <= 0:
            raise ValueError("txq_depth must be positive")
        for name in ("cqe_bytes", "inline_max_bytes", "pio_chunk_bytes",
                     "doorbell_bytes", "wqe_fetch_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tx_processing_ns < 0 or self.rx_processing_ns < 0:
            raise ValueError("processing times must be >= 0")
        if self.offload_forward_ns < 0:
            raise ValueError("offload_forward_ns must be >= 0")
        if self.retransmit_timeout_ns <= 0:
            raise ValueError("retransmit_timeout_ns must be positive")
        if self.retransmit_backoff < 1.0:
            raise ValueError("retransmit_backoff must be >= 1")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
