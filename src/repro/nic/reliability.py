"""IB-RC-style reliability at the NIC: retransmission and deduplication.

InfiniBand reliable connections guarantee exactly-once, in-order
delivery: the requester numbers packets (PSNs), runs a transport timer
per outstanding request, retransmits with backoff when the timer fires,
and gives up with a completion error after Retry Count attempts; the
responder acknowledges and silently re-ACKs duplicates.  This module is
that machinery for the simulated fabric.

A :class:`Reliability` instance exists only while a fault plan is
active: clean runs carry ``Nic.reliability is None``, so no timer is
armed, no PSN assigned and no state allocated — the zero-perturbation
guarantee that keeps golden timelines bit-identical.

The initiator side tracks every transmitted message in ``outstanding``
and settles it on the first ACK / READ_RESPONSE; later copies are
suppressed.  The target side records first deliveries so duplicate DATA
frames are re-ACKed but never re-delivered, and duplicate atomics are
answered from the recorded response without re-executing the
read-modify-write (responder replay).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nic.descriptor import Message
    from repro.nic.nic import Nic

__all__ = ["Reliability"]


class _RcState:
    """Requester-side record of one unacknowledged message."""

    __slots__ = ("message", "destination", "retries", "done")

    def __init__(self, message: "Message", destination: str) -> None:
        self.message = message
        self.destination = destination
        self.retries = 0
        self.done = False


class Reliability:
    """Per-NIC transport state machine (requester + responder halves)."""

    def __init__(self, nic: "Nic") -> None:
        self.nic = nic
        #: Requester: msg_id → in-flight state awaiting ACK/response.
        self.outstanding: dict[int, _RcState] = {}
        #: Responder: msg_ids already delivered once.
        self.delivered: set[int] = set()
        self.retransmits = 0
        self.exhausted = 0
        self.duplicates_suppressed = 0

    # -- requester side ----------------------------------------------------
    def track(self, message: "Message", destination: str) -> None:
        """Register a first transmission and arm its retransmit timer."""
        if message.msg_id in self.outstanding:  # pragma: no cover - defensive
            return
        state = _RcState(message, destination)
        self.outstanding[message.msg_id] = state
        self._arm(state)

    def _arm(self, state: _RcState) -> None:
        config = self.nic.config
        delay = config.retransmit_timeout_ns * (
            config.retransmit_backoff ** state.retries
        )
        self.nic.env.defer(self._fire, delay, args=(state,))

    def _fire(self, state: _RcState) -> None:
        if state.done:
            return
        nic = self.nic
        if state.retries >= nic.config.retry_budget:
            state.done = True
            self.outstanding.pop(state.message.msg_id, None)
            self.exhausted += 1
            nic._fail(state.message, "retry budget exhausted")
            return
        state.retries += 1
        self.retransmits += 1
        tracer = nic.env.tracer
        if tracer.enabled:
            tracer.instant(
                "nic",
                "retransmit",
                track=nic.name,
                msg=state.message.msg_id,
                psn=state.message.psn,
                attempt=state.retries,
            )
            tracer.counter("nic", "retransmits")
        nic._launch_frame(state.message, state.destination)
        self._arm(state)

    def settle(self, message: "Message") -> bool:
        """First ACK/response for ``message``?  False suppresses a duplicate."""
        state = self.outstanding.pop(message.msg_id, None)
        if state is None:
            self.duplicates_suppressed += 1
            return False
        state.done = True
        return True

    # -- responder side ----------------------------------------------------
    def first_delivery(self, message: "Message") -> bool:
        """First arrival of ``message``?  False marks a duplicate."""
        if message.msg_id in self.delivered:
            self.duplicates_suppressed += 1
            return False
        self.delivered.add(message.msg_id)
        return True

    # -- reporting ---------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """JSON-encodable transport counters."""
        return {
            "retransmits": self.retransmits,
            "exhausted": self.exhausted,
            "duplicates_suppressed": self.duplicates_suppressed,
            "outstanding": len(self.outstanding),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Reliability {self.nic.name!r} outstanding={len(self.outstanding)}"
            f" retransmits={self.retransmits}>"
        )
