"""NIC-resident collective offload (PAPERS.md: NIC-based barrier/bcast).

The host's per-hop price for a collective step is the full §4.1 path:
LLP_post, a PIO MWr across PCIe, the payload DMA up through the target
RC, and a CQ poll before the rank can even look at the token.  A
collective-aware adapter elides all of it on interior hops: the NIC
matches inbound :class:`~repro.network.fabric.FrameKind.COLLECTIVE`
frames against *offload descriptors* posted ahead of time and forwards
(or combines) them on the callback tier — no doorbell, no CQ poll, no
MMIO until the final result must become host-visible.

The engine is deliberately small:

* an :class:`OffloadDescriptor` waits for ``expected`` credits — one
  per matching frame arrival or local chain credit;
* on completion it forwards tokens to peer NICs (serialised at
  ``NicConfig.offload_forward_ns`` per frame, the adapter pipeline
  cost), optionally credits a local descriptor (round chaining), and
  optionally DMA-writes a host notification (the *only* PCIe traffic
  an offloaded collective generates besides the entry post);
* frames that arrive before their descriptor is posted are buffered as
  early credits, so pipelined iterations cannot race the protocol.

Descriptors are posted by :mod:`repro.collectives.offload` before the
run starts, which costs no simulated time — the model is persistent
descriptors armed once per operation, as in the NIC-based collective
protocols this reproduces.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Hashable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.network.fabric import FrameKind, NetworkFrame
from repro.pcie.link import Direction
from repro.pcie.packets import Tlp, TlpType
from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nic.nic import Nic

__all__ = ["OffloadDescriptor", "OffloadEngine", "OffloadToken"]

_token_ids = itertools.count(1)


@dataclass
class OffloadToken:
    """What a COLLECTIVE frame (or the entry PIO post) carries.

    The ``tag`` routes the token to the matching descriptor at the
    receiving adapter; ``msg_id`` exists so traced frames identify
    themselves like any other message on the fabric.
    """

    tag: Hashable
    payload_bytes: int = 8
    msg_id: int = field(default_factory=lambda: next(_token_ids))


@dataclass
class OffloadDescriptor:
    """One pre-posted match+forward rule in a NIC's offload engine."""

    tag: Hashable
    #: Credits (frame arrivals + local chain credits) to wait for.
    expected: int = 1
    #: ``(destination NIC name, token tag at the destination)`` pairs to
    #: forward to on completion, serialised at ``offload_forward_ns``.
    forward_to: tuple[tuple[str, Hashable], ...] = ()
    #: Payload carried by each forwarded frame.
    payload_bytes: int = 8
    #: Local descriptor tag to credit on completion (round chaining).
    chain_to: Hashable | None = None
    #: Host mailbox to DMA a notification into on completion; None
    #: keeps the result NIC-resident (zero PCIe traffic).
    notify_mailbox: str | None = None
    #: Bookkeeping hook called with the completion time (no simulated
    #: cost; used by the harness to mark per-rank completion).
    on_complete: Callable[[float], None] | None = None

    def __post_init__(self) -> None:
        if self.expected <= 0:
            raise ValueError(f"expected must be positive, got {self.expected}")
        if self.payload_bytes <= 0:
            raise ValueError(
                f"payload_bytes must be positive, got {self.payload_bytes}"
            )


class OffloadEngine:
    """Per-NIC descriptor store and matcher, created lazily by the NIC."""

    def __init__(self, nic: "Nic") -> None:
        self.nic = nic
        self.env = nic.env
        self._descriptors: dict[Hashable, OffloadDescriptor] = {}
        self._remaining: dict[Hashable, int] = {}
        #: Credits that arrived before their descriptor was posted.
        self._early: dict[Hashable, int] = {}
        self.descriptors_posted = 0
        self.descriptors_completed = 0
        self.frames_matched = 0
        self.frames_forwarded = 0
        self.notifications = 0

    # -- posting ------------------------------------------------------------
    def post(self, descriptor: OffloadDescriptor) -> None:
        """Arm one descriptor (host-side setup, no simulated time)."""
        tag = descriptor.tag
        if tag in self._descriptors:
            raise SimulationError(
                f"{self.nic.name}: offload descriptor {tag!r} already posted"
            )
        self._descriptors[tag] = descriptor
        self._remaining[tag] = descriptor.expected
        self.descriptors_posted += 1
        while self._early.get(tag, 0) and tag in self._descriptors:
            self._early[tag] -= 1
            if not self._early[tag]:
                del self._early[tag]
            self.credit(tag)

    # -- credit flow --------------------------------------------------------
    def credit(self, tag: Hashable) -> None:
        """Account one arrival (frame, entry post or chain credit)."""
        remaining = self._remaining.get(tag)
        if remaining is None:
            self._early[tag] = self._early.get(tag, 0) + 1
            return
        remaining -= 1
        if remaining > 0:
            self._remaining[tag] = remaining
            return
        descriptor = self._descriptors.pop(tag)
        del self._remaining[tag]
        self._complete(descriptor)

    def on_frame(self, frame: NetworkFrame) -> None:
        """A COLLECTIVE frame reached this adapter: match, never DMA."""
        token: OffloadToken = frame.message
        self.frames_matched += 1
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                "nic", "offload_match", track=self.nic.name,
                msg=token.msg_id, tag=repr(token.tag),
            )
        self.credit(token.tag)

    def on_host_post(self, token: OffloadToken) -> None:
        """The entry PIO post arrived over PCIe: arm/credit its tag."""
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.instant(
                "nic", "offload_arm", track=self.nic.name,
                msg=token.msg_id, tag=repr(token.tag),
            )
        self.credit(token.tag)

    # -- completion actions -------------------------------------------------
    def _complete(self, descriptor: OffloadDescriptor) -> None:
        self.descriptors_completed += 1
        now = self.env.now
        if descriptor.on_complete is not None:
            descriptor.on_complete(now)
        if descriptor.chain_to is not None:
            self.credit(descriptor.chain_to)
        forward_ns = self.nic.config.offload_forward_ns
        tracer = self.env.tracer
        delay = 0.0
        for destination, tag in descriptor.forward_to:
            token = OffloadToken(tag=tag, payload_bytes=descriptor.payload_bytes)
            if tracer.enabled and forward_ns > 0:
                # Traced runs make the adapter pipeline time visible as
                # one nic-track span per forwarded frame.
                self.env.defer(
                    self._forward_begin, delay, args=(destination, token)
                )
            else:
                self.env.defer(
                    self._forward, delay + forward_ns, args=(destination, token, None)
                )
            delay += forward_ns
        if descriptor.notify_mailbox is not None:
            if tracer.enabled and forward_ns > 0:
                self.env.defer(self._notify_begin, delay, args=(descriptor,))
            else:
                self.env.defer(
                    self._notify, delay + forward_ns, args=(descriptor, None)
                )

    def _forward_begin(self, destination: str, token: OffloadToken) -> None:
        tspan = self.env.tracer.begin(
            "nic", "offload_forward", track=self.nic.name,
            msg=token.msg_id, dst=destination,
        )
        self.env.defer(
            self._forward,
            self.nic.config.offload_forward_ns,
            args=(destination, token, tspan),
        )

    def _forward(self, destination: str, token: OffloadToken, tspan: Any) -> None:
        if tspan is not None:
            self.env.tracer.end(tspan)
        fabric = self.nic.fabric
        if fabric is None:  # pragma: no cover - attach precedes traffic
            raise SimulationError(f"{self.nic.name}: no fabric attached")
        self.frames_forwarded += 1
        fabric.send_data(
            self.nic.name,
            destination,
            token,
            token.payload_bytes,
            kind=FrameKind.COLLECTIVE,
        )

    def _notify_begin(self, descriptor: OffloadDescriptor) -> None:
        tspan = self.env.tracer.begin(
            "nic", "offload_notify", track=self.nic.name, tag=repr(descriptor.tag)
        )
        self.env.defer(
            self._notify,
            self.nic.config.offload_forward_ns,
            args=(descriptor, tspan),
        )

    def _notify(self, descriptor: OffloadDescriptor, tspan: Any) -> None:
        """DMA the completion up to the host (the exit's only MMIO/DMA)."""
        if tspan is not None:
            self.env.tracer.end(tspan)
        assert descriptor.notify_mailbox is not None
        self.notifications += 1
        mailbox = self.nic.memory.mailbox(descriptor.notify_mailbox)
        token = OffloadToken(
            tag=descriptor.tag, payload_bytes=self.nic.config.cqe_bytes
        )

        def deliver(message: OffloadToken, when: float) -> None:
            mailbox.try_put(message)

        self.nic.link.send(
            Direction.UPSTREAM,
            Tlp(
                kind=TlpType.MWR,
                payload_bytes=self.nic.config.cqe_bytes,
                purpose="offload_cqe",
                message=token,
                deliver_to=deliver,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OffloadEngine {self.nic.name!r} posted={self.descriptors_posted}"
            f" matched={self.frames_matched} forwarded={self.frames_forwarded}>"
        )
