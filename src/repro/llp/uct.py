"""UCT-like transport: endpoints, interface, worker (§4.1).

All public operations are generators executed on the owning node's CPU
core: they advance simulated time exactly as the real code paths burn
cycles, and they drive the PCIe/NIC hardware at the right instants.

The §4.1 LLP_post step sequence is reproduced literally:

1. Prepare the message descriptor (``md_setup``, incl. the inline
   payload memcpy);
2. a store memory barrier (``barrier_md``, ``dmb st``);
3. DoorBell-counter increment + its store barrier (``barrier_dbc``);
4. the PIO copy to Device-GRE memory (``pio_copy_64b`` per 64-byte
   chunk), which hands the descriptor to the Root Complex;
5. miscellaneous function-call/branching overhead (``llp_post_misc``).

A post against a full TxQ is a *busy post*: it fails after
``busy_post`` nanoseconds and the caller must progress the CQ first.
"""

from __future__ import annotations

from collections.abc import Callable, Generator
from typing import Any

from repro.llp.profiling import UcsProfiler
from repro.nic.descriptor import Message, MessageOp
from repro.node.node import Node
from repro.transport.base import (
    UCS_ERR_NO_RESOURCE,
    UCS_OK,
    Transport,
    resolve_transport,
)
from repro.transport.nicrail import PcieNicTransport
from repro.transport.shm import ShmTransport

__all__ = [
    "UCS_ERR_NO_RESOURCE",
    "UCS_OK",
    "invoke_callback",
    "UctEndpoint",
    "UctIface",
    "UctWorker",
]

# UCS status codes now live in repro.transport.base (every transport
# returns them); re-exported here for all existing importers.
_ = (UCS_OK, UCS_ERR_NO_RESOURCE)

#: Completion/receive callbacks run inside ``worker.progress``.  A
#: callback may be a plain function (costless bookkeeping) or a
#: generator function (simulated code that burns CPU time).
Callback = Callable[[Any], Any]


def invoke_callback(callback: Callback, argument: Any) -> Generator:
    """Run ``callback`` from simulated code, yielding through generators."""
    result = callback(argument)
    if result is not None and hasattr(result, "__next__"):
        result = yield from result
    return result


class UctWorker:
    """Progress engine over one or more interfaces.

    ``progress()`` is the paper's ``uct_worker_progress``: it polls each
    interface's CQ (retiring at most one CQE per call, the "dequeuing
    one entry" of LLP_prog) and each interface's active-message mailbox,
    running registered callbacks before returning.
    """

    def __init__(
        self,
        node: Node,
        profiler: UcsProfiler | None = None,
        core=None,
    ) -> None:
        self.node = node
        #: The core this worker's software runs on (multi-core studies
        #: pin one worker per core; default is the node's first core).
        self.cpu = core if core is not None else node.cpu
        self.profiler = profiler or UcsProfiler(node.timer, enabled=False)
        self.ifaces: list[UctIface] = []
        self.progress_calls = 0
        self.empty_progress_calls = 0

    def create_iface(self, signal_period: int = 1, name: str | None = None) -> "UctIface":
        """Open an interface (one queue pair + one AM mailbox)."""
        iface = UctIface(self, signal_period=signal_period, name=name)
        self.ifaces.append(iface)
        return iface

    def progress(self) -> Generator:
        """One progress pass; returns the number of events processed."""
        cpu = self.cpu
        tracer = self.node.env.tracer
        self.progress_calls += 1
        events = 0
        start = yield from self.profiler.begin("llp_prog")
        for iface in self.ifaces:
            # One CQ poll per rail (a single-rail iface polls exactly
            # the one CQ it always polled).
            for qp in iface.qps:
                cqe = qp.cq.try_poll()
                if cqe is None:
                    continue
                tspan = None
                if tracer.enabled:
                    tspan = tracer.begin(
                        "llp", "llp_prog", track=cpu.name,
                        msg=cqe.message.msg_id, kind="cqe",
                    )
                yield from cpu.execute("llp_prog")
                qp.consume_cqe(cqe)
                events += 1
                if cqe.status != "ok":
                    # Transport error CQE (retry budget exhausted): the
                    # slot is freed like any completion, software sees a
                    # structured failure instead of a hang.
                    iface.error_completions += 1
                    if tracer.enabled:
                        tracer.counter("llp", "error_completions")
                for callback in iface.completion_callbacks:
                    yield from invoke_callback(callback, cqe)
                if tspan is not None:
                    tracer.end(tspan)
            ok, message = iface.am_mailbox.try_get()
            if ok:
                tspan = None
                if tracer.enabled:
                    tspan = tracer.begin(
                        "llp", "llp_prog", track=cpu.name,
                        msg=message.msg_id, kind="am",
                    )
                yield from cpu.execute("llp_prog")
                iface.messages_delivered += 1
                events += 1
                if iface.am_handler is not None:
                    yield from invoke_callback(iface.am_handler, message)
                if tspan is not None:
                    tracer.end(tspan)
        if events == 0:
            self.empty_progress_calls += 1
            if tracer.enabled:
                tracer.counter("llp", "empty_progress_calls")
            yield from cpu.execute("llp_prog_empty")
        yield from self.profiler.end("llp_prog", start)
        return events

    def progress_until(self, predicate: Callable[[], bool]) -> Generator:
        """Spin ``progress()`` until ``predicate()`` holds."""
        while not predicate():
            yield from self.progress()
        return None

    def wait_am_interrupt(self, iface: "UctIface") -> Generator:
        """Interrupt-driven receive: sleep until an AM arrives (§2).

        "The user could also request to be notified with an interrupt
        regarding the completion.  However, the polling approach is
        latency-oriented since there is no context switch to the kernel
        in the critical path."  The blocked thread burns no CPU, but
        pays ``interrupt_wakeup`` plus the usual dequeue cost once the
        message lands.  Returns the message.
        """
        message = yield iface.am_mailbox.get()
        yield from self.cpu.execute("interrupt_wakeup")
        yield from self.cpu.execute("llp_prog")
        iface.messages_delivered += 1
        if iface.am_handler is not None:
            yield from invoke_callback(iface.am_handler, message)
        return message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UctWorker node={self.node.name} ifaces={len(self.ifaces)}>"


class UctIface:
    """One transport interface: queue pair(s) plus AM receive resources."""

    def __init__(
        self,
        worker: UctWorker,
        signal_period: int = 1,
        name: str | None = None,
    ) -> None:
        node = worker.node
        self.worker = worker
        self.node = node
        self.name = name or f"{node.name}.iface{len(worker.ifaces)}"
        #: One queue pair per NIC rail.  Rail 0 keeps the historical
        #: ``{iface}.qp`` name so single-rail artefacts are unchanged.
        self.qps = [
            rail.nic.create_qp(
                signal_period=signal_period,
                name=f"{self.name}.qp" if index == 0 else f"{self.name}.qp{index}",
            )
            for index, rail in enumerate(node.rails)
        ]
        self.qp = self.qps[0]
        #: The inter-node transport (always available).
        self.nic_transport: Transport = PcieNicTransport(self)
        self._shm_transport: Transport | None = None
        #: Target-side landing zone for active messages sent to this iface.
        self.am_recv_target = f"{self.name}.am"
        self.am_mailbox = node.memory.mailbox(self.am_recv_target)
        self.completion_callbacks: list[Callback] = []
        self.am_handler: Callback | None = None
        self.messages_delivered = 0
        self.busy_posts = 0
        self.successful_posts = 0
        #: Error CQEs observed (transport retry budget exhausted).
        self.error_completions = 0
        #: Journal hook: the most recently posted message (ground truth
        #: for benchmarks; the real UCT API does not return it).
        self.last_message: Message | None = None

    def set_am_handler(self, handler: Callback) -> None:
        """Register the active-message receive callback (generator fn)."""
        self.am_handler = handler

    def add_completion_callback(self, callback: Callback) -> None:
        """Register a send-completion callback (generator fn)."""
        self.completion_callbacks.append(callback)

    @property
    def shm_transport(self) -> Transport:
        """The intra-node shared-memory transport (created on demand)."""
        if self._shm_transport is None:
            self._shm_transport = ShmTransport(self)
        return self._shm_transport

    def create_ep(self, remote: "UctIface") -> "UctEndpoint":
        """Connect an endpoint, resolving the transport for the peer.

        Same-node peers get the shared-memory path (when the config
        enables it); everything else rides the PCIe/NIC rails, with one
        destination NIC per remote rail.
        """
        return UctEndpoint(
            self,
            remote.am_recv_target,
            remote.node.nic.name,
            transport=resolve_transport(self, remote),
            remote_nics=tuple(rail.nic.name for rail in remote.node.rails),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UctIface {self.name!r}>"


class UctEndpoint:
    """A connected endpoint: the object posts are issued on.

    The endpoint is transport-agnostic: every operation delegates to
    the :class:`~repro.transport.base.Transport` resolved for the peer
    at ``create_ep`` time (PCIe/NIC rails inter-node, shared memory
    intra-node).  Posts return ``UCS_OK`` or ``UCS_ERR_NO_RESOURCE``
    exactly as before the transports became pluggable.
    """

    def __init__(
        self,
        iface: UctIface,
        remote_recv_target: str,
        remote_nic: str | None = None,
        transport: "Transport | None" = None,
        remote_nics: tuple[str, ...] | None = None,
    ) -> None:
        self.iface = iface
        self.remote_recv_target = remote_recv_target
        #: Destination NIC port name (None = the two-node fabric peer).
        self.remote_nic = remote_nic
        #: The resolved transport; defaults to the PCIe/NIC path so
        #: directly-constructed endpoints behave as they always did.
        self.transport: Transport = (
            transport if transport is not None else iface.nic_transport
        )
        #: Destination NIC per remote rail (multi-rail peers).
        self.remote_nics = remote_nics
        #: Round-robin rail cursor (advanced by the rail selector).
        self.rail_cursor = 0

    def remote_nic_for(self, rail: int) -> str | None:
        """The destination NIC name for a post leaving on ``rail``."""
        if self.remote_nics:
            return self.remote_nics[min(rail, len(self.remote_nics) - 1)]
        return self.remote_nic

    def can_post(self, payload_bytes: int = 0) -> bool:
        """Whether a post would find transmit resources right now."""
        return self.transport.can_post(self, payload_bytes)

    # -- public data-path operations ------------------------------------------
    def put_short(self, payload_bytes: int) -> Generator:
        """RDMA-write a small payload via PIO+inline (the put_bw op).

        Returns ``UCS_OK`` or ``UCS_ERR_NO_RESOURCE`` (busy post).
        """
        return self.transport.post_short(self, MessageOp.PUT, payload_bytes)

    def am_short(self, payload_bytes: int) -> Generator:
        """Send-receive a small payload via PIO+inline (the am_lat op)."""
        return self.transport.post_short(self, MessageOp.AM, payload_bytes)

    def put_zcopy(self, payload_bytes: int) -> Generator:
        """RDMA-write via the DoorBell + DMA-read path (§2 steps 1-3).

        Used for payloads beyond the inline limit; two PCIe round trips
        replace the PIO copy.
        """
        return self.transport.post_doorbell(self, MessageOp.PUT, payload_bytes)

    def get_bcopy(self, payload_bytes: int, local_buffer: str | None = None) -> Generator:
        """RDMA-read: pull ``payload_bytes`` from the remote memory.

        An extension beyond the paper's put/am benchmarks: the request
        WQE goes out via PIO (it is small), the target NIC DMA-reads the
        data without involving the target CPU, and the response lands in
        ``local_buffer`` on this node (default: this iface's AM mailbox
        namespace with a ``.get`` suffix).  The read response doubles as
        the acknowledgement.
        """
        return self.transport.post_one_sided(
            self, MessageOp.GET, payload_bytes, local_buffer, "get"
        )

    def atomic_fadd(self, payload_bytes: int = 8, local_buffer: str | None = None) -> Generator:
        """RDMA fetch-and-add: atomically update remote memory.

        Extension beyond the paper: the request goes out via PIO, the
        target NIC performs the read-modify-write against its host
        memory (one DMA read + one DMA write, no target CPU), and the
        old value returns like a read response.
        """
        return self.transport.post_one_sided(
            self, MessageOp.ATOMIC, payload_bytes, local_buffer, "atomic"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UctEndpoint {self.iface.name!r} -> {self.remote_recv_target!r}>"
