"""UCS-style region profiling with realistic measurement overhead.

The paper instruments code by wrapping regions with UCX's UCS profiling
infrastructure, "which internally reads the cntvct_el0 register timer
preceded by an isb" (§3).  Each wrapped measurement costs 49.69 ns on
average; the paper reports all software numbers *after removing this
overhead*, and never measures a component while measuring another.

:class:`UcsProfiler` reproduces all three properties:

* entering/leaving an *enabled* region performs two
  :class:`~repro.cpu.timer.VirtualTimer` reads, each costing simulated
  time;
* disabled regions cost nothing (supporting the one-component-at-a-time
  methodology via :meth:`enable_only`);
* :meth:`corrected_mean` subtracts the calibrated overhead, like the
  paper's post-processing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cpu.timer import VirtualTimer

__all__ = ["RegionStats", "UcsProfiler"]


@dataclass
class RegionStats:
    """Raw measurements of one profiled region."""

    samples: list[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Number of recorded measurements."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean raw (overhead-inclusive) duration."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation of the raw durations."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self.samples) / (n - 1))


class UcsProfiler:
    """Region profiler whose measurements perturb the measured system."""

    def __init__(self, timer: VirtualTimer, enabled: bool = True) -> None:
        self.timer = timer
        self.enabled = enabled
        self._regions: dict[str, RegionStats] = {}
        #: When non-None, only these regions are measured.
        self._active_filter: frozenset[str] | None = None

    # -- methodology controls ---------------------------------------------------
    def enable_only(self, regions: set[str] | frozenset[str] | None) -> None:
        """Restrict measurement to ``regions`` (None = measure all).

        This is §3's "while measuring time of a component, we do not
        simultaneously measure time in any other component".
        """
        self._active_filter = None if regions is None else frozenset(regions)

    def is_active(self, region: str) -> bool:
        """Whether entering ``region`` would actually measure."""
        if not self.enabled:
            return False
        return self._active_filter is None or region in self._active_filter

    # -- instrumentation (generators run on the CPU's timeline) -----------------
    def begin(self, region: str):
        """Start a measurement; returns the start timestamp (or None).

        Yield from this inside simulated software.  Costs one timer read
        when the region is active, nothing otherwise.  The start
        timestamp is taken *before* the read cost and the end timestamp
        *after* it, so a raw measurement exceeds the true region
        duration by the full infrastructure overhead (one read on each
        side) — the paper's 49.69 ns, which :meth:`corrected_mean`
        subtracts.
        """
        if not self.is_active(region):
            return None
        start_ns = self.timer.env.now
        yield from self.timer.read()
        return start_ns

    def end(self, region: str, start_ns: float | None):
        """Finish a measurement started by :meth:`begin`."""
        if start_ns is None:
            return None
        yield from self.timer.read()
        elapsed = self.timer.env.now - start_ns
        self._regions.setdefault(region, RegionStats()).samples.append(elapsed)
        return elapsed

    def wrap(self, region: str, inner):
        """Measure around an inner generator, propagating its value."""
        start = yield from self.begin(region)
        result = yield from inner
        yield from self.end(region, start)
        return result

    # -- reporting ------------------------------------------------------------------
    def stats(self, region: str) -> RegionStats:
        """Raw stats for ``region`` (empty if never measured)."""
        return self._regions.get(region, RegionStats())

    def raw_mean(self, region: str) -> float:
        """Mean including the measurement overhead."""
        return self.stats(region).mean

    def corrected_mean(self, region: str) -> float:
        """Mean with the calibrated infrastructure overhead removed.

        "we report software measurements in the rest of the paper after
        removing this overhead" (§3).  Clamped at zero for regions
        shorter than the overhead itself.
        """
        stats = self.stats(region)
        if not stats.samples:
            return 0.0
        return max(0.0, stats.mean - self.timer.measurement_overhead_ns)

    def regions(self) -> list[str]:
        """Names of all regions with at least one sample."""
        return sorted(self._regions)

    def reset(self) -> None:
        """Discard all samples (e.g. after warmup)."""
        self._regions.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UcsProfiler regions={len(self._regions)} enabled={self.enabled}>"
