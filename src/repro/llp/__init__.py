"""The low-level communication protocol (LLP): a UCT-like transport.

This is the paper's §4 layer — "UCX's low-level transport API,
UC-Transports (UCT) ... UCX's implementation of the data-path
operations for modern Mellanox InfiniBand adapters" (rc_mlx5).  It
implements:

* ``ep_put_short`` / ``ep_am_short`` — PIO+inline posts of small
  messages, with the exact §4.1 step sequence (MD prepare, store
  barrier, DoorBell-counter update + barrier, PIO copy);
* ``worker.progress`` — CQ polling (the TxQ dequeue semantic) and
  active-message delivery on the target;
* busy posts when the TxQ is full;
* a UCS-style profiling infrastructure whose measurements cost time,
  mirroring §3's methodology (49.69 ns per wrapped region, subtracted
  during reporting).
"""

from repro.llp.profiling import RegionStats, UcsProfiler
from repro.llp.uct import (
    UCS_ERR_NO_RESOURCE,
    UCS_OK,
    UctEndpoint,
    UctIface,
    UctWorker,
)

__all__ = [
    "RegionStats",
    "UCS_ERR_NO_RESOURCE",
    "UCS_OK",
    "UcsProfiler",
    "UctEndpoint",
    "UctIface",
    "UctWorker",
]
