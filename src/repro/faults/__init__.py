"""``repro.faults``: declarative fault injection with end-to-end recovery.

The paper's component breakdown assumes every layer's reliability
machinery is *idle*; this package lets campaigns exercise it.  A
:class:`FaultPlan` declares drop/corruption triggers at named sites
(network wire/switch, fabric ACKs, NIC egress, PCIe TLPs and DLLPs);
the testbed builds a :class:`FaultInjector` from it and the instrumented
layers consult their site hook per opportunity.  Recovery is then real:
the NIC runs an IB-RC-style retransmission protocol (PSNs, exponential
backoff, retry budget, duplicate suppression, error CQEs), and the PCIe
link arms ACKNAK-latency replay so lost DLLPs heal.

Determinism: each stochastic rule owns a named
:class:`~repro.sim.rng.RandomStreams` stream; a run without a plan
consults no stream and arms no timer, so golden timelines stay
bit-identical.  See ``docs/faults.md``.
"""

from repro.faults.inject import FaultInjector, SiteInjector
from repro.faults.plan import (
    ACTIONS,
    KINDS,
    SITES,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    lossy_network_plan,
)

__all__ = [
    "ACTIONS",
    "KINDS",
    "SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "SiteInjector",
    "lossy_network_plan",
]
