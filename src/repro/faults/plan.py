"""Declarative fault plans: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is a frozen bundle of :class:`FaultRule` entries.
Each rule names one injection **site** (a layer hook such as
``network.wire`` or ``pcie.dllp``), one **action** (``drop`` the unit or
``corrupt`` it so the receiver discards it), and one trigger **kind**:

``probabilistic``
    Fire with independent probability ``probability`` per opportunity.
``nth``
    Fire on exactly the listed ``occurrences`` (1-based, per rule) —
    deterministic, consults no random stream.
``window``
    Fire with ``probability`` while virtual time lies inside
    ``window_ns = (start, end)`` — a brownout.

Determinism contract: every stochastic rule draws from its *own* named
:class:`~repro.sim.rng.RandomStreams` stream (``stream`` or an
auto-derived ``faults.<site>.r<index>`` name), so two rules never share
a sequence and adding a rule cannot perturb another rule's draws.  A
plan with no rules for a site costs that site nothing — see
:mod:`repro.faults.inject`.

This module is deliberately stdlib-only (no ``repro`` imports) so that
:class:`~repro.node.config.SystemConfig` can embed a plan without an
import cycle.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ACTIONS",
    "KINDS",
    "SITES",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "lossy_network_plan",
]

#: Injection sites wired into the simulator, and the unit each one acts on.
SITES: dict[str, str] = {
    "network.wire": "network frame entering a wire segment",
    "network.switch": "network frame entering a switch",
    "network.ack": "fabric-level ACK frame emitted by the target NIC",
    "nic.tx": "frame leaving the initiator NIC (first send and retransmits)",
    "pcie.tlp": "TLP arriving at a PCIe link port",
    "pcie.dllp": "ACK/NACK DLLP returned by a PCIe link port",
}

#: Trigger kinds a rule may use.
KINDS: tuple[str, ...] = ("probabilistic", "nth", "window")

#: What happens to the unit when a rule fires.
ACTIONS: tuple[str, ...] = ("drop", "corrupt")


class FaultPlanError(ValueError):
    """A fault plan (or plan file) violates the schema."""


@dataclass(frozen=True)
class FaultRule:
    """One trigger at one injection site.

    Parameters
    ----------
    site:
        One of :data:`SITES`.
    kind:
        One of :data:`KINDS`.
    action:
        One of :data:`ACTIONS`.  ``drop`` makes the unit vanish;
        ``corrupt`` lets it travel but be rejected at the receiver
        (network frames) or NACKed (PCIe TLPs).  DLLPs and ACK frames
        carry no payload worth corrupting, so their sites treat both
        actions as a loss.
    probability:
        Per-opportunity fire probability (``probabilistic``/``window``).
    occurrences:
        1-based opportunity indices to fire on (``nth``).
    window_ns:
        ``(start, end)`` virtual-time bounds (``window``); ``end`` may be
        ``inf`` only when ``probability < 1`` so recovery can terminate.
    stream:
        Random-stream name override; empty string derives
        ``faults.<site>.r<index>`` from the rule's position in the plan.
    """

    site: str
    kind: str = "probabilistic"
    action: str = "drop"
    probability: float = 0.0
    occurrences: tuple[int, ...] = ()
    window_ns: tuple[float, float] | None = None
    stream: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; expected one of "
                f"{', '.join(sorted(SITES))}"
            )
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown rule kind {self.kind!r}; expected one of {', '.join(KINDS)}"
            )
        if self.action not in ACTIONS:
            raise FaultPlanError(
                f"unknown action {self.action!r}; expected one of {', '.join(ACTIONS)}"
            )
        if self.kind in ("probabilistic", "window"):
            if not 0.0 <= self.probability <= 1.0:
                raise FaultPlanError(
                    f"probability must be in [0, 1], got {self.probability}"
                )
        if self.kind == "nth":
            object.__setattr__(
                self, "occurrences", tuple(sorted(set(self.occurrences)))
            )
            if not self.occurrences:
                raise FaultPlanError("nth rule needs at least one occurrence index")
            if any(
                not isinstance(n, int) or isinstance(n, bool) or n < 1
                for n in self.occurrences
            ):
                raise FaultPlanError(
                    f"occurrences must be integers >= 1, got {self.occurrences}"
                )
        elif self.occurrences:
            raise FaultPlanError(f"occurrences only applies to nth rules ({self.kind})")
        if self.kind == "window":
            if self.window_ns is None:
                raise FaultPlanError("window rule needs window_ns=(start, end)")
            start, end = self.window_ns
            if not (start >= 0 and end > start):
                raise FaultPlanError(
                    f"window_ns must satisfy 0 <= start < end, got {self.window_ns}"
                )
            if math.isinf(end) and self.probability >= 1.0:
                raise FaultPlanError(
                    "an unbounded window with probability 1 would defeat "
                    "recovery forever; bound the window or lower the probability"
                )
        elif self.window_ns is not None:
            raise FaultPlanError(f"window_ns only applies to window rules ({self.kind})")

    @property
    def stochastic(self) -> bool:
        """Whether firing ever consults a random stream."""
        return self.kind != "nth"

    def to_dict(self) -> dict[str, Any]:
        """JSON-encodable form, omitting defaulted fields."""
        payload: dict[str, Any] = {
            "site": self.site,
            "kind": self.kind,
            "action": self.action,
        }
        if self.kind in ("probabilistic", "window"):
            payload["probability"] = self.probability
        if self.kind == "nth":
            payload["occurrences"] = list(self.occurrences)
        if self.window_ns is not None:
            payload["window_ns"] = list(self.window_ns)
        if self.stream:
            payload["stream"] = self.stream
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "FaultRule":
        """Build a rule from a JSON object, with schema-checked fields."""
        if not isinstance(payload, dict):
            raise FaultPlanError(f"rule must be an object, got {type(payload).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown rule field(s) {', '.join(sorted(unknown))}; "
                f"expected a subset of {', '.join(sorted(known))}"
            )
        if "site" not in payload:
            raise FaultPlanError("rule is missing required field 'site'")
        kwargs = dict(payload)
        occurrences = kwargs.get("occurrences")
        if occurrences is not None:
            if not isinstance(occurrences, (list, tuple)):
                raise FaultPlanError(
                    f"occurrences must be a list of integers, got {occurrences!r}"
                )
            kwargs["occurrences"] = tuple(occurrences)
        window = kwargs.get("window_ns")
        if window is not None:
            if not isinstance(window, (list, tuple)) or len(window) != 2:
                raise FaultPlanError(
                    f"window_ns must be a [start, end] pair, got {window!r}"
                )
            try:
                kwargs["window_ns"] = (float(window[0]), float(window[1]))
            except (TypeError, ValueError) as exc:
                raise FaultPlanError(f"window_ns bounds must be numbers: {exc}") from exc
        for name in ("probability",):
            if name in kwargs:
                value = kwargs[name]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise FaultPlanError(f"{name} must be a number, got {value!r}")
                kwargs[name] = float(value)
        try:
            return cls(**kwargs)
        except TypeError as exc:  # e.g. site passed as a list
            raise FaultPlanError(str(exc)) from exc


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, hashable collection of fault rules.

    An empty plan (``FaultPlan()``) is equivalent to no plan at all:
    :attr:`enabled` is False and the injector built from it installs no
    site hooks.
    """

    rules: tuple[FaultRule, ...] = ()
    name: str = "faults"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise FaultPlanError(
                    f"rules must be FaultRule instances, got {type(rule).__name__}"
                )
        if not self.name or not isinstance(self.name, str):
            raise FaultPlanError(f"plan name must be a non-empty string, got {self.name!r}")

    @property
    def enabled(self) -> bool:
        """Whether the plan contains any rule at all."""
        return bool(self.rules)

    def rules_for(self, site: str) -> tuple[tuple[int, FaultRule], ...]:
        """The ``(plan_index, rule)`` pairs targeting ``site``, in order."""
        return tuple(
            (index, rule) for index, rule in enumerate(self.rules) if rule.site == site
        )

    def sites(self) -> tuple[str, ...]:
        """The distinct sites the plan targets, in first-appearance order."""
        seen: dict[str, None] = {}
        for rule in self.rules:
            seen.setdefault(rule.site, None)
        return tuple(seen)

    def to_dict(self) -> dict[str, Any]:
        """JSON-encodable form."""
        return {
            "name": self.name,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "FaultPlan":
        """Build a plan from a JSON object, with schema-checked fields."""
        if not isinstance(payload, dict):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {"name", "rules"}
        if unknown:
            raise FaultPlanError(
                f"unknown plan field(s) {', '.join(sorted(unknown))}; "
                "expected 'name' and 'rules'"
            )
        rules = payload.get("rules", [])
        if not isinstance(rules, list):
            raise FaultPlanError(f"'rules' must be a list, got {type(rules).__name__}")
        return cls(
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
            name=payload.get("name", "faults"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON string."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: Any) -> "FaultPlan":
        """Read and validate a plan file.

        Raises :class:`FaultPlanError` on schema problems and lets
        ``OSError`` propagate for missing/unreadable files.
        """
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def lossy_network_plan(
    drop_prob: float = 0.01,
    corrupt_prob: float = 0.0,
    ack_loss_prob: float = 0.0,
) -> FaultPlan:
    """A convenience plan degrading the network path probabilistically."""
    rules: list[FaultRule] = []
    if drop_prob > 0:
        rules.append(FaultRule(site="network.wire", action="drop", probability=drop_prob))
    if corrupt_prob > 0:
        rules.append(
            FaultRule(site="network.wire", action="corrupt", probability=corrupt_prob)
        )
    if ack_loss_prob > 0:
        rules.append(
            FaultRule(site="network.ack", action="drop", probability=ack_loss_prob)
        )
    return FaultPlan(rules=tuple(rules), name="lossy-network")
