"""Runtime fault injection: evaluating a plan's rules at each site.

The testbed builds one :class:`FaultInjector` per run and hands each
instrumented layer the :class:`SiteInjector` for its site — or ``None``
when the plan has no rules there, in which case the layer keeps its
original zero-cost code path.  That ``None`` contract is the
zero-perturbation guarantee: with no plan (or an empty one) not a single
random stream is opened, no counter exists, and the hot paths execute
exactly the instructions they executed before this subsystem existed.

Rule evaluation is first-match-wins across a site's rules in plan
order.  ``nth`` rules count opportunities without touching randomness;
``probabilistic`` and ``window`` rules draw lazily from their own named
stream on first use, so rules never contend for a sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.faults.plan import FaultPlan, FaultRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.sim.engine import Environment
    from repro.sim.rng import RandomStreams

__all__ = ["FaultInjector", "SiteInjector"]


class _RuleState:
    """Mutable evaluation state for one rule at one site."""

    __slots__ = ("rule", "stream_name", "_rng", "_streams", "opportunities", "fired")

    def __init__(self, rule: FaultRule, stream_name: str, streams: "RandomStreams") -> None:
        self.rule = rule
        self.stream_name = stream_name
        self._streams = streams
        self._rng: "np.random.Generator | None" = None
        self.opportunities = 0
        self.fired = 0

    def _random(self) -> float:
        rng = self._rng
        if rng is None:
            rng = self._streams.get(self.stream_name)
            self._rng = rng
        return float(rng.random())

    def fires(self, now: float) -> bool:
        """Evaluate the trigger for one opportunity at virtual time ``now``."""
        rule = self.rule
        self.opportunities += 1
        if rule.kind == "nth":
            hit = self.opportunities in rule.occurrences
        elif rule.kind == "window":
            window = rule.window_ns
            assert window is not None  # enforced by FaultRule validation
            start, end = window
            hit = start <= now < end and self._random() < rule.probability
        else:  # probabilistic
            hit = self._random() < rule.probability
        if hit:
            self.fired += 1
        return hit


class SiteInjector:
    """All the rules a plan aims at one site, evaluated per opportunity."""

    def __init__(
        self,
        site: str,
        states: list[_RuleState],
        env: "Environment",
    ) -> None:
        self.site = site
        self._states = states
        self._env = env
        self.injected = 0

    def decide(self, **attrs: Any) -> str | None:
        """Evaluate one opportunity; return the firing rule's action or None.

        ``attrs`` (message ids, frame kinds, port names …) are attached
        to the trace instant when a rule fires, so recovery time can be
        attributed to a specific fault afterwards.
        """
        now = self._env._now
        for state in self._states:
            if state.fires(now):
                self.injected += 1
                tracer = self._env.tracer
                if tracer.enabled:
                    tracer.instant(
                        "faults",
                        "fault",
                        track=f"faults.{self.site}",
                        site=self.site,
                        action=state.rule.action,
                        rule_kind=state.rule.kind,
                        stream=state.stream_name if state.rule.stochastic else None,
                        occurrence=state.opportunities,
                        **attrs,
                    )
                    tracer.counter("faults", f"{self.site}.{state.rule.action}")
                return state.rule.action
        return None

    def stats(self) -> dict[str, Any]:
        """Opportunity/fire counts per rule, for reporting."""
        return {
            "site": self.site,
            "injected": self.injected,
            "rules": [
                {
                    "kind": state.rule.kind,
                    "action": state.rule.action,
                    "stream": state.stream_name if state.rule.stochastic else None,
                    "opportunities": state.opportunities,
                    "fired": state.fired,
                }
                for state in self._states
            ],
        }


class FaultInjector:
    """Per-run evaluator for a :class:`FaultPlan`.

    Built once by the testbed/cluster and queried by layers via
    :meth:`site`.  With a ``None`` or empty plan every :meth:`site` call
    returns ``None`` and nothing else is allocated.
    """

    def __init__(
        self,
        plan: FaultPlan | None,
        streams: "RandomStreams",
        env: "Environment",
    ) -> None:
        self.plan = plan if plan is not None and plan.enabled else None
        self._sites: dict[str, SiteInjector] = {}
        if self.plan is not None:
            for site in self.plan.sites():
                states = [
                    _RuleState(
                        rule,
                        rule.stream or f"faults.{site}.r{index}",
                        streams,
                    )
                    for index, rule in self.plan.rules_for(site)
                ]
                self._sites[site] = SiteInjector(site, states, env)

    @property
    def enabled(self) -> bool:
        """Whether any rule exists at all."""
        return bool(self._sites)

    def site(self, name: str) -> SiteInjector | None:
        """The injector for ``name``, or None when the plan ignores it."""
        return self._sites.get(name)

    def stats(self) -> dict[str, Any]:
        """Injection counts per site, for CLI/report output."""
        return {
            "enabled": self.enabled,
            "injected": sum(site.injected for site in self._sites.values()),
            "sites": {name: site.stats() for name, site in sorted(self._sites.items())},
        }
