"""PCIe-trace post-processing, mirroring the paper's Lecroy workflows.

All functions take the list of :class:`TraceRecord` captured by the
simulated analyzer and return arrays of ns deltas; the methodology
module turns those into component times.
"""

from __future__ import annotations

import numpy as np

from repro.pcie.analyzer import TraceRecord
from repro.pcie.link import Direction
from repro.pcie.packets import Dllp, DllpType, Tlp, TlpType

__all__ = [
    "arrival_deltas",
    "mwr_ack_round_trips",
    "ping_completion_deltas",
    "pong_ping_deltas",
]


def arrival_deltas(
    records: list[TraceRecord],
    direction: Direction = Direction.DOWNSTREAM,
    purpose: str = "pio_post",
) -> np.ndarray:
    """Inter-arrival deltas of matching TLPs (Figure 6 → Figure 7).

    "calculating the delta of the timestamp of consecutive transactions
    would result in the observed Inj_overhead" (§4.2).
    """
    times = [
        r.timestamp_ns
        for r in records
        if r.is_tlp and r.direction is direction and r.purpose == purpose
    ]
    return np.diff(np.asarray(times)) if len(times) >= 2 else np.array([])


def mwr_ack_round_trips(
    records: list[TraceRecord], purpose: str = "cqe_write"
) -> np.ndarray:
    """Round trips of NIC-initiated MWr TLPs to their ACK DLLPs (§4.3).

    "we use the MWr transactions initiated by the NIC during the
    DMA-write of completions.  The timestamp in the MWr transaction is
    the start time of the round trip and that in the corresponding ACK
    DLLP is the end time."  Matching is by the link-layer sequence
    number echoed in the ACK.
    """
    pending: dict[int, float] = {}
    round_trips: list[float] = []
    for record in records:
        packet = record.packet
        if (
            isinstance(packet, Tlp)
            and record.direction is Direction.UPSTREAM
            and packet.kind is TlpType.MWR
            and packet.purpose == purpose
            and packet.seq is not None
        ):
            pending[packet.seq] = record.timestamp_ns
        elif (
            isinstance(packet, Dllp)
            and packet.kind is DllpType.ACK
            and record.direction is Direction.DOWNSTREAM
            and packet.acked_seq in pending
        ):
            round_trips.append(record.timestamp_ns - pending.pop(packet.acked_seq))
    return np.asarray(round_trips)


def ping_completion_deltas(records: list[TraceRecord]) -> np.ndarray:
    """Ping-arrival → completion-departure deltas (§4.3 Network).

    "A downstream 64-byte PCIe transaction corresponds to a ping and
    the next upstream 64-byte PCIe transaction corresponds to the
    ping's completion which is generated upon reception of the ACK."
    Each delta spans two network traversals (message out, ACK back).
    """
    deltas: list[float] = []
    ping_time: float | None = None
    for record in records:
        if not record.is_tlp:
            continue
        if record.direction is Direction.DOWNSTREAM and record.purpose == "pio_post":
            ping_time = record.timestamp_ns
        elif (
            record.direction is Direction.UPSTREAM
            and record.purpose == "cqe_write"
            and ping_time is not None
        ):
            deltas.append(record.timestamp_ns - ping_time)
            ping_time = None
    return np.asarray(deltas)


def pong_ping_deltas(records: list[TraceRecord]) -> np.ndarray:
    """Inbound-pong → outbound-ping deltas (§4.3, Figure 9).

    "the time difference between an incoming pong and outgoing ping
    entails an RC-to-MEM(8B), two PCIes, a LLP_prog (successful poll),
    and a LLP_post (the ping)."  The inbound pong is the upstream
    payload-write MWr; the outbound ping is the next downstream PIO
    post.
    """
    deltas: list[float] = []
    pong_time: float | None = None
    for record in records:
        if not record.is_tlp:
            continue
        if record.direction is Direction.UPSTREAM and record.purpose == "payload_write":
            pong_time = record.timestamp_ns
        elif (
            record.direction is Direction.DOWNSTREAM
            and record.purpose == "pio_post"
            and pong_time is not None
        ):
            deltas.append(record.timestamp_ns - pong_time)
            pong_time = None
    return np.asarray(deltas)
