"""The paper's measurement methodology, executed against the simulator.

This package reproduces §§3-5's *method*, not just its numbers: it
re-derives every Table 1 component from noisy benchmark runs using
exactly the paper's techniques —

* software segments via UCS-profiled regions, one component at a time,
  with the 49.69 ns infrastructure overhead subtracted (§3);
* PCIe from NIC-initiated MWr → ACK-DLLP round trips on the analyzer
  trace, halved (§4.3);
* Network from ping-arrival → completion-departure deltas, halved, and
  Switch by differencing switched vs direct runs (§4.3);
* RC-to-MEM(8B) from inbound-pong → outbound-ping deltas minus the
  already-measured components (§4.3, Figure 9);
* the HLP layer split via layered-region subtraction (§5).

The flagship entry point is :func:`measure_component_times`, which runs
the whole campaign and returns a
:class:`~repro.core.components.ComponentTimes` ready for the models.

:mod:`repro.analysis.latency_tolerance` inverts the question the rest
of the package answers: instead of *where did the time go*, *how much
could each component slow down before the total moves* — per-component
slack over the span dependency graph of a recorded trace, validated by
brute-force re-simulation.
"""

from repro.analysis.latency_tolerance import (
    ComponentTolerance,
    LatencyToleranceReport,
    latency_tolerance,
    perturbed_config,
    validate_tolerance,
)
from repro.analysis.stats import DistributionSummary, summarize
from repro.analysis.traces import (
    arrival_deltas,
    mwr_ack_round_trips,
    ping_completion_deltas,
    pong_ping_deltas,
)
from repro.analysis.compare import SystemComparison, compare_systems
from repro.analysis.replication import ReplicationStudy, run_replication_study
from repro.analysis.methodology import (
    MeasurementCampaign,
    measure_component_times,
    measure_hardware,
    measure_hlp_segments,
    measure_llp_segments,
    measure_send_progress,
)

__all__ = [
    "ComponentTolerance",
    "DistributionSummary",
    "LatencyToleranceReport",
    "MeasurementCampaign",
    "ReplicationStudy",
    "SystemComparison",
    "compare_systems",
    "latency_tolerance",
    "perturbed_config",
    "run_replication_study",
    "validate_tolerance",
    "arrival_deltas",
    "measure_component_times",
    "measure_hardware",
    "measure_hlp_segments",
    "measure_llp_segments",
    "measure_send_progress",
    "mwr_ack_round_trips",
    "ping_completion_deltas",
    "pong_ping_deltas",
    "summarize",
]
