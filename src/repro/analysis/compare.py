"""Side-by-side comparison of two systems' component times.

The workflow the paper's conclusion invites — "identify bottlenecks on
their own systems" — usually ends in a comparison: my system vs the
paper's, before vs after an optimization, vendor A vs vendor B.  This
module renders the breakdown deltas, flags insight flips, and ranks the
differing components by end-to-end impact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.components import ComponentTimes
from repro.core.insights import all_insights
from repro.core.models import EndToEndLatencyModel, OverallInjectionModel

__all__ = ["SystemComparison", "compare_systems"]

#: The latency-bearing pieces compared, as (label, extractor).
_LATENCY_PIECES = (
    ("HLP_post", lambda t: t.hlp_post),
    ("LLP_post", lambda t: t.llp_post),
    ("TX PCIe", lambda t: t.pcie),
    ("Wire", lambda t: t.wire),
    ("Switch", lambda t: t.switch),
    ("RX PCIe", lambda t: t.pcie),
    ("RC-to-MEM(8B)", lambda t: t.rc_to_mem_8b),
    ("LLP_prog", lambda t: t.llp_prog),
    ("HLP_rx_prog", lambda t: t.hlp_rx_prog),
)


@dataclass(frozen=True)
class SystemComparison:
    """The comparison of a baseline system against a candidate."""

    baseline: ComponentTimes
    candidate: ComponentTimes
    baseline_name: str = "baseline"
    candidate_name: str = "candidate"

    # -- headline deltas -----------------------------------------------------
    @property
    def latency_delta_ns(self) -> float:
        """Candidate minus baseline end-to-end latency (negative = faster)."""
        return (
            EndToEndLatencyModel(self.candidate).predicted_ns
            - EndToEndLatencyModel(self.baseline).predicted_ns
        )

    @property
    def injection_delta_ns(self) -> float:
        """Candidate minus baseline overall injection overhead."""
        return (
            OverallInjectionModel(self.candidate).predicted_ns
            - OverallInjectionModel(self.baseline).predicted_ns
        )

    @property
    def latency_speedup(self) -> float:
        """Fractional latency improvement of the candidate (may be <0)."""
        base = EndToEndLatencyModel(self.baseline).predicted_ns
        return -self.latency_delta_ns / base if base else 0.0

    # -- per-component attribution ----------------------------------------------
    def component_deltas(self) -> list[tuple[str, float, float, float]]:
        """(label, baseline ns, candidate ns, delta ns), biggest |delta| first."""
        rows = [
            (label, get(self.baseline), get(self.candidate),
             get(self.candidate) - get(self.baseline))
            for label, get in _LATENCY_PIECES
        ]
        return sorted(rows, key=lambda row: -abs(row[3]))

    def insight_flips(self) -> list[tuple[int, bool, bool]]:
        """(insight number, holds on baseline, holds on candidate) where
        the verdict differs."""
        flips = []
        for base, cand in zip(
            all_insights(self.baseline), all_insights(self.candidate)
        ):
            if base.holds != cand.holds:
                flips.append((base.number, base.holds, cand.holds))
        return flips

    def render(self) -> str:
        """A full comparison report."""
        base_latency = EndToEndLatencyModel(self.baseline).predicted_ns
        cand_latency = EndToEndLatencyModel(self.candidate).predicted_ns
        base_inj = OverallInjectionModel(self.baseline).predicted_ns
        cand_inj = OverallInjectionModel(self.candidate).predicted_ns
        lines = [
            f"{self.baseline_name} vs {self.candidate_name}",
            "-" * 64,
            f"end-to-end latency: {base_latency:9.2f} → {cand_latency:9.2f} ns "
            f"({self.latency_speedup * 100:+.1f}%)",
            f"injection overhead: {base_inj:9.2f} → {cand_inj:9.2f} ns",
            "",
            f"{'component':<16} {self.baseline_name:>12} {self.candidate_name:>12}"
            f" {'delta':>10}",
        ]
        for label, base, cand, delta in self.component_deltas():
            lines.append(f"{label:<16} {base:>12.2f} {cand:>12.2f} {delta:>+10.2f}")
        flips = self.insight_flips()
        if flips:
            lines.append("")
            for number, on_base, on_cand in flips:
                lines.append(
                    f"Insight {number} flips: "
                    f"{'holds' if on_base else 'fails'} on {self.baseline_name}, "
                    f"{'holds' if on_cand else 'fails'} on {self.candidate_name}"
                )
        else:
            lines.append("")
            lines.append("all four §6 insights agree across the two systems")
        return "\n".join(lines)


def compare_systems(
    baseline: ComponentTimes,
    candidate: ComponentTimes,
    baseline_name: str = "baseline",
    candidate_name: str = "candidate",
) -> SystemComparison:
    """Build a :class:`SystemComparison`."""
    return SystemComparison(
        baseline=baseline,
        candidate=candidate,
        baseline_name=baseline_name,
        candidate_name=candidate_name,
    )
