"""The full §§3-5 measurement campaign against the simulated testbed.

Every quantity in the paper's Table 1 is *re-measured* here from noisy
benchmark runs — software through profiled regions (one component per
run, overhead subtracted), hardware through analyzer-trace arithmetic —
then assembled into a :class:`ComponentTimes` for the analytical
models.  Comparing that against the simulator's ground-truth
configuration closes the loop on the methodology itself.

Deviations from the paper, by necessity, are documented inline:

* ``RC-to-MEM(64B)`` is extrapolated linearly from the measured 8-byte
  value (the paper uses it in ``gen_completion`` but never reports a
  measurement);
* the MPICH share of ``MPI_Wait`` is measured with direct regions
  around the entry / callback / post-progress segments rather than the
  paper's total-minus-total subtraction — equivalent by construction
  and robust to run-to-run variation in the number of empty progress
  polls while blocked.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import DistributionSummary, robust_mean, summarize
from repro.analysis.traces import (
    arrival_deltas,
    mwr_ack_round_trips,
    ping_completion_deltas,
    pong_ping_deltas,
)
from repro.bench.osu import run_osu_latency, run_osu_message_rate
from repro.bench.perftest import run_am_lat, run_put_bw
from repro.core.components import ComponentTimes
from repro.node.config import SystemConfig

__all__ = [
    "MeasurementCampaign",
    "measure_component_times",
    "measure_hardware",
    "measure_hlp_segments",
    "measure_llp_segments",
]

#: Regions measured with one dedicated put_bw run each (§4.1).
LLP_REGIONS = (
    "md_setup",
    "barrier_md",
    "barrier_dbc",
    "pio_copy",
    "llp_post",
    "llp_prog",
    "busy_post",
    "measurement_update",
)

#: Regions measured with one dedicated osu_latency run each (§5).
HLP_REGIONS = (
    "mpi_isend",
    "ucp_isend",
    "llp_post",
    "ucp_worker_progress",
    "llp_prog",
    "ucp_recv_callback",
    "mpich_recv_callback",
    "mpich_after_progress",
    "mpich_wait_entry",
)


@dataclass
class MeasurementCampaign:
    """Everything one full methodology run produced."""

    config: SystemConfig
    #: Corrected means of the LLP regions (put_bw runs).
    llp: dict[str, float] = field(default_factory=dict)
    #: Corrected means of the HLP regions (osu_latency runs).
    hlp: dict[str, float] = field(default_factory=dict)
    #: Hardware components from trace arithmetic.
    hardware: dict[str, float] = field(default_factory=dict)
    #: Send-progress quantities from the OSU message-rate run.
    send_progress: dict[str, float] = field(default_factory=dict)
    #: NIC-observed injection-overhead distribution (Figure 7).
    injection_distribution: DistributionSummary | None = None
    #: Benchmark-observed headline numbers for validation.
    observed: dict[str, float] = field(default_factory=dict)

    def to_component_times(self) -> ComponentTimes:
        """Assemble the measured values into the models' input."""
        llp, hlp, hw = self.llp, self.hlp, self.hardware
        llp_post_other = max(
            0.0,
            llp["llp_post"]
            - llp["md_setup"]
            - llp["barrier_md"]
            - llp["barrier_dbc"]
            - llp["pio_copy"],
        )
        mpich_isend = max(0.0, hlp["mpi_isend"] - hlp["ucp_isend"])
        ucp_isend = max(0.0, hlp["ucp_isend"] - hlp["llp_post"])
        mpich_recv_cb = hlp["mpich_recv_callback"]
        ucp_recv_cb = max(0.0, hlp["ucp_recv_callback"] - mpich_recv_cb)
        ucp_body = max(0.0, hlp["ucp_worker_progress"] - hlp["llp_prog"])
        return ComponentTimes(
            md_setup=llp["md_setup"],
            barrier_md=llp["barrier_md"],
            barrier_dbc=llp["barrier_dbc"],
            pio_copy=llp["pio_copy"],
            llp_post_other=llp_post_other,
            llp_prog=llp["llp_prog"],
            busy_post=llp["busy_post"],
            measurement_update=llp["measurement_update"],
            pcie=hw["pcie"],
            rc_to_mem_8b=hw["rc_to_mem_8b"],
            rc_to_mem_64b=hw["rc_to_mem_64b"],
            wire=hw["wire"],
            switch=hw["switch"],
            mpich_isend=mpich_isend,
            ucp_isend=ucp_isend,
            mpich_recv_callback=mpich_recv_cb,
            ucp_recv_callback=ucp_recv_cb,
            mpich_after_progress=hlp["mpich_after_progress"],
            mpi_wait_mpich=(
                hlp["mpich_wait_entry"] + mpich_recv_cb + hlp["mpich_after_progress"]
            ),
            mpi_wait_ucp=ucp_body + ucp_recv_cb,
            post_prog=self.send_progress["post_prog"],
            llp_tx_prog=self.send_progress["llp_tx_prog"],
            misc_injection=self.send_progress["misc_injection"],
        )


def measure_llp_segments(
    config: SystemConfig,
    n_messages: int = 600,
    warmup: int = 256,
    seed_offset: int = 0,
) -> dict[str, float]:
    """Measure each LLP region with its own put_bw run (§4.1).

    One region per run honours "while measuring time of a component, we
    do not simultaneously measure time in any other component".
    """
    measured: dict[str, float] = {}
    for index, region in enumerate(LLP_REGIONS):
        run_config = config.evolve(seed=config.seed + seed_offset + index)
        result = run_put_bw(
            config=run_config,
            n_messages=n_messages,
            warmup=warmup,
            profile_regions={region},
        )
        measured[region] = result.profiler.corrected_mean(region)
    return measured


def measure_hlp_segments(
    config: SystemConfig,
    iterations: int = 300,
    warmup: int = 30,
    seed_offset: int = 100,
) -> dict[str, float]:
    """Measure each HLP region with its own osu_latency run (§5)."""
    measured: dict[str, float] = {}
    for index, region in enumerate(HLP_REGIONS):
        run_config = config.evolve(seed=config.seed + seed_offset + index)
        result = run_osu_latency(
            config=run_config,
            iterations=iterations,
            warmup=warmup,
            profile_regions={region},
        )
        measured[region] = result.profiler.corrected_mean(region)
    return measured


def measure_hardware(
    config: SystemConfig,
    llp_post_ns: float,
    llp_prog_ns: float,
    n_messages: int = 600,
    iterations: int = 300,
    rc_to_mem_slope_ns_per_byte: float = 0.27,
) -> tuple[dict[str, float], DistributionSummary]:
    """Measure PCIe, Wire, Switch and RC-to-MEM from analyzer traces (§4.3).

    Parameters
    ----------
    llp_post_ns / llp_prog_ns:
        Already-measured software components, needed to back
        RC-to-MEM(8B) out of the pong-ping delta (Figure 9).
    rc_to_mem_slope_ns_per_byte:
        Assumed linear slope used to extrapolate RC-to-MEM(64B) from
        the 8-byte measurement (documented substitution; the paper
        never reports the 64-byte value).

    Returns
    -------
    (hardware dict, injection-overhead distribution summary)
    """
    # PCIe + the injection distribution come from one put_bw trace.
    # The raw analyzer records are the measurement here, so the run
    # must replay in full — fast-forward synthesizes no trace.
    put_result = run_put_bw(
        config=config.evolve(seed=config.seed + 200),
        n_messages=n_messages,
        fast_forward=False,
    )
    records = put_result.testbed.analyzer.records
    round_trips = mwr_ack_round_trips(records)
    if round_trips.size == 0:
        raise RuntimeError("no MWr→ACK pairs found in the put_bw trace")
    pcie = float(round_trips.mean()) / 2.0
    injection = summarize(arrival_deltas(records))

    # Network (wire + switch) from the switched am_lat trace.
    am_switched = run_am_lat(
        config=config.evolve(seed=config.seed + 201), iterations=iterations
    )
    switched_records = am_switched.testbed.analyzer.records
    network_deltas = ping_completion_deltas(switched_records)
    network = float(network_deltas.mean()) / 2.0

    # Wire alone from a direct (no-switch) am_lat run; Switch is the
    # difference of the two latency setups, exactly the paper's method.
    direct_config = config.evolve(
        network=config.network.without_switch(), seed=config.seed + 202
    )
    am_direct = run_am_lat(config=direct_config, iterations=iterations)
    wire = float(ping_completion_deltas(am_direct.testbed.analyzer.records).mean()) / 2.0
    switch = max(0.0, network - wire)

    # RC-to-MEM(8B) from the pong→ping deltas of the switched run.  The
    # deltas span CPU segments (LLP_prog + LLP_post), so the rare
    # heavy-tail outliers must be rejected before averaging.
    pong_ping = pong_ping_deltas(switched_records)
    rc_to_mem_8b = robust_mean(pong_ping) - 2 * pcie - llp_prog_ns - llp_post_ns
    if rc_to_mem_8b <= 0:
        raise RuntimeError(
            f"RC-to-MEM(8B) back-out produced {rc_to_mem_8b:.2f} ns; "
            "software measurements inconsistent with the trace"
        )
    rc_to_mem_64b = rc_to_mem_8b + rc_to_mem_slope_ns_per_byte * 56.0

    hardware = {
        "pcie": pcie,
        "wire": wire,
        "switch": switch,
        "network": network,
        "rc_to_mem_8b": rc_to_mem_8b,
        "rc_to_mem_64b": rc_to_mem_64b,
    }
    return hardware, injection


def measure_send_progress(
    config: SystemConfig,
    llp_post_ns: float,
    llp_prog_ns: float,
    busy_post_ns: float,
    windows: int = 30,
    window_size: int = 64,
    signal_period: int = 64,
) -> tuple[dict[str, float], float]:
    """Measure Post_prog, LLP_tx_prog and Misc from an OSU MR run (§6).

    Post_prog follows the paper's accounting: the MPI_Waitall time per
    operation minus the LLP_posts re-executed for busy posts.  Returns
    the dict plus the observed overall injection overhead (inverse
    message rate) for validation.
    """
    result = run_osu_message_rate(
        config=config.evolve(seed=config.seed + 300),
        windows=windows,
        window_size=window_size,
        signal_period=signal_period,
    )
    ops = result.n_measured
    post_prog = (result.waitall_ns - result.waitall_llp_post_ns) / ops
    send_progress = {
        "post_prog": post_prog,
        # "Less than a nanosecond of Post_prog occurs in the LLP":
        # one CQ dequeue amortised over the unsignaled period.
        "llp_tx_prog": llp_prog_ns / signal_period,
        "misc_injection": result.busy_posts * busy_post_ns / ops,
    }
    return send_progress, result.cpu_side_injection_overhead_ns


def measure_component_times(
    config: SystemConfig | None = None,
    quick: bool = False,
) -> MeasurementCampaign:
    """Run the entire measurement campaign (the paper's §§3-6 workflow).

    Parameters
    ----------
    config:
        System to measure; defaults to the paper testbed with noise.
    quick:
        Shrink sample counts for fast test runs.

    Returns
    -------
    A :class:`MeasurementCampaign`; call
    :meth:`MeasurementCampaign.to_component_times` to feed the models.
    """
    cfg = config or SystemConfig.paper_testbed()
    n_messages = 300 if quick else 1000
    iterations = 120 if quick else 400
    windows = 12 if quick else 30

    campaign = MeasurementCampaign(config=cfg)
    campaign.llp = measure_llp_segments(cfg, n_messages=n_messages)
    campaign.hlp = measure_hlp_segments(cfg, iterations=iterations)
    campaign.hardware, campaign.injection_distribution = measure_hardware(
        cfg,
        llp_post_ns=campaign.llp["llp_post"],
        llp_prog_ns=campaign.llp["llp_prog"],
        n_messages=n_messages,
        iterations=iterations,
    )
    campaign.send_progress, observed_injection = measure_send_progress(
        cfg,
        llp_post_ns=campaign.llp["llp_post"],
        llp_prog_ns=campaign.llp["llp_prog"],
        busy_post_ns=campaign.llp["busy_post"],
        windows=windows,
    )

    # Headline observations for model validation.
    campaign.observed["llp_injection_overhead"] = (
        campaign.injection_distribution.mean
    )
    am = run_am_lat(config=cfg.evolve(seed=cfg.seed + 400), iterations=iterations)
    # §4.3: deduct half a measurement update from the reported latency.
    campaign.observed["llp_latency"] = (
        am.observed_latency_ns - campaign.llp["measurement_update"] / 2.0
    )
    campaign.observed["overall_injection_overhead"] = observed_injection
    osu = run_osu_latency(config=cfg.evolve(seed=cfg.seed + 401), iterations=iterations)
    campaign.observed["end_to_end_latency"] = osu.observed_latency_ns
    return campaign
