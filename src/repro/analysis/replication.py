"""Multi-seed replication of the paper's validation claims.

The paper reports one testbed's numbers.  A reproduction can do better:
re-run the whole measurement-and-validation pipeline under many
independent noise seeds and report the *distribution* of model errors —
checking that the "within 5%" headline is a property of the method, not
of one lucky run.

Each replication is one sweep point of a :mod:`repro.campaign` campaign
(workload ``"replication"``, one seed per point), so studies
parallelise across a worker pool and completed seeds are served from
the result cache on re-runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.methodology import measure_component_times
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
)
from repro.node.config import SystemConfig

__all__ = ["ReplicationStudy", "replication_workload", "run_replication_study"]

#: The four validations, keyed by the observation name they compare to.
MODELS = {
    "llp_injection_overhead": InjectionModelLlp,
    "llp_latency": LatencyModelLlp,
    "overall_injection_overhead": OverallInjectionModel,
    "end_to_end_latency": EndToEndLatencyModel,
}


@dataclass
class ReplicationStudy:
    """Errors of each model across independent replications."""

    seeds: list[int]
    #: model name → list of |relative error| per seed.
    errors: dict[str, list[float]] = field(default_factory=dict)

    def error_array(self, name: str) -> np.ndarray:
        """Per-seed |relative errors| of one model."""
        return np.asarray(self.errors[name])

    def worst_error(self, name: str) -> float:
        """Largest |relative error| seen for one model."""
        return float(self.error_array(name).max())

    def mean_error(self, name: str) -> float:
        """Mean |relative error| across replications."""
        return float(self.error_array(name).mean())

    def fraction_within(self, name: str, margin: float = 0.05) -> float:
        """Share of replications with |error| ≤ margin."""
        array = self.error_array(name)
        return float((array <= margin).mean())

    def all_within(self, margin: float = 0.05) -> bool:
        """True when every model validates in every replication."""
        return all(
            self.fraction_within(name, margin) == 1.0 for name in self.errors
        )

    def render(self) -> str:
        """A per-model summary table."""
        lines = [
            f"{'model':<28} {'mean err':>9} {'worst err':>10} {'within 5%':>10}"
        ]
        lines.append("-" * len(lines[0]))
        for name in self.errors:
            lines.append(
                f"{name:<28} {self.mean_error(name) * 100:>8.2f}% "
                f"{self.worst_error(name) * 100:>9.2f}% "
                f"{self.fraction_within(name) * 100:>9.0f}%"
            )
        return "\n".join(lines)


def replication_workload(config: SystemConfig, quick: bool = True) -> dict[str, float]:
    """Campaign workload: one full measure-then-validate replication.

    Runs the §§3-6 methodology on ``config`` and returns, per model,
    the |relative error| of the prediction against that replication's
    own benchmark observation — flat scalars, one record per seed.
    """
    campaign = measure_component_times(config, quick=quick)
    times = campaign.to_component_times()
    measurements: dict[str, float] = {}
    for name, model_cls in MODELS.items():
        modeled = model_cls(times).predicted_ns
        observed = campaign.observed[name]
        measurements[f"err_{name}"] = abs(modeled - observed) / observed
        measurements[f"modeled_{name}"] = modeled
        measurements[f"observed_{name}"] = observed
    return measurements


def run_replication_study(
    n_replications: int = 5,
    base_seed: int = 40_000,
    quick: bool = True,
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
) -> ReplicationStudy:
    """Run the full pipeline under ``n_replications`` independent seeds.

    Each replication re-measures every component through the §§3-6
    methodology and validates all four models against its own benchmark
    observations.  The seeds execute as one campaign: ``jobs`` fans
    them across worker processes and ``cache_dir`` reuses completed
    replications across invocations.
    """
    if n_replications < 1:
        raise ValueError(f"n_replications must be >= 1, got {n_replications}")
    from repro.campaign import CampaignSpec, run_campaign

    seeds = [base_seed + 1000 * index for index in range(n_replications)]
    spec = CampaignSpec(
        name=f"replication-{n_replications}x",
        workload="replication",
        base_config=SystemConfig.paper_testbed(),
        params={"quick": quick},
        seeds=tuple(seeds),
    )
    result = run_campaign(spec, jobs=jobs, cache_dir=cache_dir)
    if result.failures:
        first = result.failures[0]
        raise RuntimeError(
            f"{len(result.failures)} replication(s) failed; seed {first.seed}: "
            f"{first.error_type}: {first.error}"
        )
    study = ReplicationStudy(seeds=seeds)
    study.errors = {
        name: result.values(f"err_{name}") for name in MODELS
    }
    return study
