"""Distribution summaries for benchmark samples (the Figure 7 numbers)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DistributionSummary", "robust_mean", "summarize"]


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of one sample set (all in ns).

    Mirrors the annotations of the paper's Figure 7: mean, median, min,
    max and standard deviation.
    """

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.2f} median={self.median:.2f} "
            f"min={self.minimum:.2f} max={self.maximum:.2f} std={self.std:.4f}"
        )


def robust_mean(
    samples: np.ndarray | list[float], cutoff_multiple: float = 3.0
) -> float:
    """Mean after rejecting samples beyond ``cutoff_multiple`` × median.

    Deltas that include CPU segments occasionally absorb a
    multi-microsecond OS-noise outlier (the heavy tail of Figure 7); a
    plain mean over a few hundred samples is visibly biased by them.
    Rejecting the far tail before averaging is the standard treatment
    and leaves the estimate unbiased for the paper's component
    back-outs.
    """
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot average an empty sample set")
    if cutoff_multiple <= 1.0:
        raise ValueError(f"cutoff_multiple must exceed 1, got {cutoff_multiple}")
    median = float(np.median(array))
    kept = array[array <= cutoff_multiple * median] if median > 0 else array
    return float(kept.mean()) if kept.size else median


def summarize(samples: np.ndarray | list[float]) -> DistributionSummary:
    """Summarise a sample set; raises on empty input."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarise an empty sample set")
    return DistributionSummary(
        count=int(array.size),
        mean=float(array.mean()),
        median=float(np.median(array)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        std=float(array.std(ddof=1)) if array.size > 1 else 0.0,
    )
