"""Latency-tolerance analysis: per-component slack from a recorded trace.

The paper's breakdown says where one message's nanoseconds *went*; this
module answers the follow-on question LLAMP poses for MPI programs: how
much could each component's latency **grow** before the end-to-end time
moves?  A component whose spans sit on the critical dependency chain
has zero slack — every added nanosecond surfaces at the finish line —
while one hidden behind overlap can absorb latency for free.

The analysis is purely structural, over spans recorded by
:mod:`repro.trace`:

1. **Nodes.**  Hardware spans become nodes whole (network ``wire`` /
   ``switch``, PCIe ``tlp`` / ``rc_to_mem``, ``nic``-layer engine
   spans).  CPU tracks (``*.cpu*``) are sliced at every span boundary
   into non-overlapping segments attributed to the innermost covering
   span — component ``"host"`` — so nested LLP/HLP instrumentation
   never double-counts time.  Network ACK spans are excluded: fabric
   acknowledgements are reliability traffic, not completion
   dependencies.
2. **Edges.**  Program order chains consecutive segments of each CPU
   track.  Message order connects same-``msg`` nodes ``u → v``
   whenever ``u`` ends before ``v`` starts — the launch
   (CPU → PCIe → wire → switch → … → RC-to-MEM → CPU) chain every
   traced layer tags with the message id.
3. **Sensitivity.**  The longest weighted path through that DAG is the
   structural critical path ``L(0)``.  Inflating every span of
   component *c* by ``δ`` and re-running the longest-path DP gives
   ``L_c(δ)``; the *slack* is the largest ``δ`` with
   ``L_c(δ) = L(0)`` (found by bisection — growth is piecewise-linear
   and convex, so bisection is exact to tolerance), and the
   *sensitivity* ``L_c(1) − L(0)`` counts how many of the component's
   spans sit on the perturbed critical path.

Predictions are **delta-based**: ``predicted_total_ns`` adds the
modelled growth to the *measured* baseline, so any structural
under-coverage of the DAG cancels out.  :func:`validate_tolerance`
closes the loop by re-simulating the same workload with the matching
config knob raised (:data:`COMPONENT_OVERRIDES`) and comparing.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.node.config import SystemConfig
from repro.trace.tracer import Span, Tracer

__all__ = [
    "COMPONENT_OVERRIDES",
    "ComponentTolerance",
    "LatencyGraph",
    "LatencyToleranceReport",
    "build_dependency_graph",
    "latency_tolerance",
    "perturbed_config",
    "tolerance_report_text",
    "validate_tolerance",
]

_EPS = 1e-6

#: Component → ``(config section, additive latency attribute)`` — the
#: knob whose increase by ``δ`` inflates every span of that component
#: by ``δ``, which is exactly the perturbation the DAG models.  ``nic``
#: and ``host`` have no single additive knob (NIC processing defaults
#: to 0 and host time is split across cost constants), so they are
#: analysed but not brute-force validated.
COMPONENT_OVERRIDES: dict[str, tuple[str, str]] = {
    "wire": ("network", "wire_latency_ns"),
    "switch": ("network", "switch_latency_ns"),
    "pcie": ("pcie", "base_latency_ns"),
    "rc_to_mem": ("pcie", "rc_to_mem_base_ns"),
}


def _hardware_component(span: Span) -> str | None:
    """The latency component a non-CPU span belongs to, or ``None``."""
    if span.layer == "network":
        if span.attrs.get("kind") == "ack":
            return None
        if span.name == "wire":
            return "wire"
        if span.name == "switch":
            return "switch"
        return None
    if span.layer == "pcie":
        if span.name == "tlp":
            return "pcie"
        if span.name == "rc_to_mem":
            return "rc_to_mem"
        return None
    if span.layer == "nic":
        return "nic"
    return None


def _is_cpu_track(track: str | None) -> bool:
    return track is not None and ".cpu" in track


@dataclass(frozen=True)
class _Node:
    """One unit of attributable time in the dependency graph."""

    component: str
    t0: float
    t1: float
    msg: Any
    track: str | None
    label: str

    @property
    def duration_ns(self) -> float:
        return self.t1 - self.t0


def _cpu_segments(track: str, spans: list[Span]) -> list[_Node]:
    """Slice one CPU track into innermost-attributed segments.

    Boundary points are every span start/end on the track; each
    inter-boundary interval covered by at least one span becomes a
    segment owned by the innermost (latest-starting) covering span.
    Gaps — the CPU blocked on an event — become no node at all, which
    is what gives downstream components their slack.
    """
    points = sorted({s.t0 for s in spans} | {s.t1 for s in spans})
    segments: list[_Node] = []
    for a, b in zip(points, points[1:]):
        if b - a <= _EPS:
            continue
        covering = [s for s in spans if s.t0 <= a + _EPS and s.t1 >= b - _EPS]
        if not covering:
            continue
        covering.sort(key=lambda s: (s.t0, -s.t1))
        inner = covering[-1]
        msg = next(
            (
                s.attrs.get("msg")
                for s in reversed(covering)
                if s.attrs.get("msg") is not None
            ),
            None,
        )
        segments.append(
            _Node(
                component="host",
                t0=a,
                t1=b,
                msg=msg,
                track=track,
                label=inner.name,
            )
        )
    return segments


@dataclass
class LatencyGraph:
    """The span dependency DAG, ready for longest-path queries.

    ``nodes`` are in topological (time) order; ``preds[i]`` lists the
    indices of node ``i``'s dependency predecessors.
    """

    nodes: list[_Node]
    preds: list[list[int]]
    makespan_ns: float

    def longest_path_ns(self, component: str | None = None, delta_ns: float = 0.0) -> float:
        """Longest weighted path; spans of ``component`` inflated by ``delta_ns``."""
        best = 0.0
        dist = [0.0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            weight = node.duration_ns
            if component is not None and node.component == component:
                weight += delta_ns
            arrive = max((dist[p] for p in self.preds[i]), default=0.0)
            dist[i] = arrive + weight
            best = max(best, dist[i])
        return best


def build_dependency_graph(spans: Iterable[Span]) -> LatencyGraph:
    """Nodes + edges from closed spans (see the module docstring)."""
    closed = [s for s in spans if s.t1 is not None]
    nodes: list[_Node] = []
    by_track: dict[str, list[Span]] = {}
    for span in closed:
        if _is_cpu_track(span.track):
            by_track.setdefault(span.track or "", []).append(span)
            continue
        component = _hardware_component(span)
        if component is None:
            continue
        nodes.append(
            _Node(
                component=component,
                t0=span.t0,
                t1=span.t1,
                msg=span.attrs.get("msg"),
                track=span.track,
                label=span.name,
            )
        )
    track_segments: dict[str, list[int]] = {}
    for track, track_spans in by_track.items():
        segments = _cpu_segments(track, track_spans)
        base = len(nodes)
        nodes.extend(segments)
        track_segments[track] = list(range(base, base + len(segments)))

    order = sorted(range(len(nodes)), key=lambda i: (nodes[i].t0, nodes[i].t1))
    rank = {old: new for new, old in enumerate(order)}
    nodes = [nodes[i] for i in order]
    preds: list[list[int]] = [[] for _ in nodes]

    # Program order: consecutive segments of one CPU track.
    for indices in track_segments.values():
        for u, v in zip(indices, indices[1:]):
            preds[rank[v]].append(rank[u])

    # Message order: u → v whenever u ends before v starts.  All-pairs
    # within a message's (small) span group, so a perturbation that
    # promotes a different predecessor to critical is still modelled.
    by_msg: dict[Any, list[int]] = {}
    for i, node in enumerate(nodes):
        if node.msg is not None:
            by_msg.setdefault(node.msg, []).append(i)
    for group in by_msg.values():
        for vi, v in enumerate(group):
            for u in group[:vi]:
                if nodes[u].t1 <= nodes[v].t0 + _EPS and u != v:
                    preds[v].append(u)

    makespan = max((n.t1 for n in nodes), default=0.0) - min(
        (n.t0 for n in nodes), default=0.0
    )
    return LatencyGraph(nodes=nodes, preds=preds, makespan_ns=makespan)


@dataclass
class ComponentTolerance:
    """One component's exposure to added latency."""

    component: str
    span_count: int
    total_ns: float
    #: End-to-end growth per nanosecond of component growth (the number
    #: of the component's spans on the perturbed critical path); 0 means
    #: fully hidden by overlap at current latencies.
    sensitivity: float
    #: Largest per-span latency increase that leaves the end-to-end time
    #: unchanged; ``inf`` when no perturbation within the search bound
    #: reaches the critical path, 0 when the component is already on it.
    slack_ns: float


@dataclass
class LatencyToleranceReport:
    """Per-component slack plus the graph it was computed from."""

    graph: LatencyGraph
    critical_path_ns: float
    components: dict[str, ComponentTolerance]

    @property
    def makespan_ns(self) -> float:
        return self.graph.makespan_ns

    @property
    def coverage(self) -> float:
        """Fraction of the traced makespan the critical path explains."""
        if self.graph.makespan_ns <= 0:
            return 0.0
        return self.critical_path_ns / self.graph.makespan_ns

    def growth_ns(self, component: str, delta_ns: float) -> float:
        """Modelled end-to-end growth when ``component`` gains ``delta_ns``/span."""
        return (
            self.graph.longest_path_ns(component, delta_ns) - self.critical_path_ns
        )

    def predicted_total_ns(
        self, component: str, delta_ns: float, baseline_ns: float | None = None
    ) -> float:
        """Predicted end-to-end time at the perturbed latency.

        Delta-based: modelled growth on top of the measured baseline
        (default: the traced makespan), so structural under-coverage of
        the DAG cancels instead of biasing the prediction.
        """
        base = self.makespan_ns if baseline_ns is None else baseline_ns
        return base + self.growth_ns(component, delta_ns)

    def to_dict(self) -> dict[str, Any]:
        return {
            "makespan_ns": self.makespan_ns,
            "critical_path_ns": self.critical_path_ns,
            "coverage": self.coverage,
            "components": {
                name: {
                    "span_count": tol.span_count,
                    "total_ns": tol.total_ns,
                    "sensitivity": tol.sensitivity,
                    "slack_ns": None if math.isinf(tol.slack_ns) else tol.slack_ns,
                }
                for name, tol in sorted(self.components.items())
            },
        }


def latency_tolerance(
    source: Tracer | Iterable[Span],
    msg_id: Any = None,
    tol_ns: float = 1e-3,
    max_delta_ns: float = 1e7,
) -> LatencyToleranceReport:
    """Per-component latency slack of one traced run.

    ``source`` is a tracer or spans reloaded from an exported trace
    (:func:`repro.trace.perfetto.spans_from_chrome`).  ``msg_id``
    restricts the analysis to one message's spans.  ``tol_ns`` is the
    end-to-end growth treated as "unchanged" by the slack bisection;
    ``max_delta_ns`` bounds the search (beyond it slack reports ∞).
    """
    spans = source.spans() if isinstance(source, Tracer) else list(source)
    if msg_id is not None:
        spans = [s for s in spans if s.attrs.get("msg") == msg_id]
    graph = build_dependency_graph(spans)
    base = graph.longest_path_ns()
    components: dict[str, ComponentTolerance] = {}
    present = sorted({node.component for node in graph.nodes})
    for component in present:
        count = sum(1 for n in graph.nodes if n.component == component)
        total = sum(n.duration_ns for n in graph.nodes if n.component == component)
        sensitivity = graph.longest_path_ns(component, 1.0) - base
        if graph.longest_path_ns(component, max_delta_ns) - base <= tol_ns:
            slack = math.inf
        else:
            lo, hi = 0.0, max_delta_ns
            while hi - lo > tol_ns:
                mid = (lo + hi) / 2.0
                if graph.longest_path_ns(component, mid) - base <= tol_ns:
                    lo = mid
                else:
                    hi = mid
            slack = lo
        components[component] = ComponentTolerance(
            component=component,
            span_count=count,
            total_ns=total,
            sensitivity=sensitivity,
            slack_ns=slack,
        )
    return LatencyToleranceReport(
        graph=graph, critical_path_ns=base, components=components
    )


def perturbed_config(
    config: SystemConfig, component: str, delta_ns: float
) -> SystemConfig:
    """The config with ``component``'s additive latency raised by ``delta_ns``."""
    try:
        section, attr = COMPONENT_OVERRIDES[component]
    except KeyError:
        raise ValueError(
            f"component {component!r} has no config override; "
            f"registered: {', '.join(sorted(COMPONENT_OVERRIDES))}"
        ) from None
    sub = getattr(config, section)
    replaced = dataclasses.replace(sub, **{attr: getattr(sub, attr) + delta_ns})
    return config.evolve(**{section: replaced})


def validate_tolerance(
    report: LatencyToleranceReport,
    simulate: Callable[[SystemConfig], float],
    config: SystemConfig,
    component: str,
    deltas_ns: Iterable[float],
) -> list[dict[str, float]]:
    """Brute-force check: re-simulate at perturbed latencies and compare.

    ``simulate(config)`` must re-run the traced workload and return its
    measured end-to-end time.  For each ``δ`` the report's delta-based
    prediction (graph growth on top of the *simulated* baseline) is
    compared against the re-simulated total; ``error`` is the relative
    disagreement.  The CI smoke and the tests assert ``error < 0.05``.
    """
    baseline = simulate(config)
    rows: list[dict[str, float]] = []
    for delta in deltas_ns:
        predicted = report.predicted_total_ns(component, delta, baseline_ns=baseline)
        simulated = simulate(perturbed_config(config, component, delta))
        rows.append(
            {
                "delta_ns": delta,
                "predicted_ns": predicted,
                "simulated_ns": simulated,
                "error": abs(predicted - simulated) / simulated if simulated else 0.0,
            }
        )
    return rows


def tolerance_report_text(report: LatencyToleranceReport) -> str:
    """Human-readable per-component table (CLI output)."""
    lines = [
        f"critical path {report.critical_path_ns:.2f} ns over "
        f"{len(report.graph.nodes)} dependency nodes "
        f"(coverage {report.coverage * 100.0:.1f}% of "
        f"{report.makespan_ns:.2f} ns makespan)",
        f"  {'component':<10} {'spans':>6} {'total ns':>11} "
        f"{'sensitivity':>11} {'slack ns':>11}",
    ]
    for name, tol in sorted(report.components.items()):
        slack = "inf" if math.isinf(tol.slack_ns) else f"{tol.slack_ns:.2f}"
        lines.append(
            f"  {name:<10} {tol.span_count:>6} {tol.total_ns:>11.2f} "
            f"{tol.sensitivity:>11.2f} {slack:>11}"
        )
    return "\n".join(lines)
