"""Analytic predictions for the collectives.

All predictions compose the paper's §6 end-to-end latency model — the
per-message critical path ``HLP_post + LLP_post + 2·PCIe + Network +
RC-to-MEM + LLP_prog + HLP_rx_prog`` — over the algorithm's dependency
chain, substituting each hop's routed network time for the paper's
one-switch Network term.  On a uniform fabric the ring prediction
reduces to the familiar ``2(N−1) × (end-to-end + reduce)``; on a
routed topology the recurrence walks the actual per-link latencies, so
a ring crossing pod boundaries is predicted slower than one inside an
edge switch — which is what the simulation measures.

Contention is *not* modelled here: predictions are zero-load. Comparing
them against measured completion times is how the experiments expose
queueing on shared links.
"""

from __future__ import annotations

import math

from repro.core.components import ComponentTimes
from repro.core.models import EndToEndLatencyModel
from repro.network.topology import Topology
from repro.node.config import SystemConfig

__all__ = [
    "path_end_to_end_ns",
    "predicted_barrier_ns",
    "predicted_nic_barrier_ns",
    "predicted_nic_tree_broadcast_ns",
    "predicted_recursive_doubling_ns",
    "predicted_ring_allreduce_ns",
    "predicted_tree_broadcast_ns",
]


def _network_ns(
    config: SystemConfig, topology: Topology | None, src: str | None, dst: str | None
) -> float:
    if topology is None or src is None or dst is None:
        return config.network.one_way_latency()
    return topology.path_network_latency_ns(src, dst, config.network)


def path_end_to_end_ns(
    config: SystemConfig,
    topology: Topology | None = None,
    src: str | None = None,
    dst: str | None = None,
    times: ComponentTimes | None = None,
) -> float:
    """End-to-end MPI latency of one small message over one routed path.

    The §6 model with its Network term (one wire + one switch, 382.81 ns)
    replaced by the routed path's wires × wire + switches × switch.
    With no topology the configured point-to-point
    :meth:`~repro.network.config.NetworkConfig.one_way_latency` is used,
    so direct (switchless) configs predict correctly too.
    """
    times = times or ComponentTimes.paper()
    base = EndToEndLatencyModel(times).predicted_ns
    return base - times.network + _network_ns(config, topology, src, dst)


def _ring_links(
    hosts: tuple[str, ...] | list[str] | None, n_nodes: int
) -> list[tuple[str | None, str | None]]:
    if hosts is None:
        return [(None, None)] * n_nodes
    return [(hosts[i], hosts[(i + 1) % n_nodes]) for i in range(n_nodes)]


def predicted_ring_allreduce_ns(
    n_nodes: int,
    config: SystemConfig,
    topology: Topology | None = None,
    reduce_compute_ns: float = 20.0,
    iterations: int = 1,
    times: ComponentTimes | None = None,
) -> float:
    """The 2(N−1)-step ring model over the actual per-link latencies.

    Completion follows the lockstep recurrence

    .. code-block:: text

        C(r, s) = max(C(r, s-1), C(r-1, s-1) + e2e(r-1 → r)) + reduce

    — rank r finishes step s once its own step s-1 is done *and* the
    chunk its left neighbour sent at the start of step s-1 has crossed
    the link.  On a uniform fabric every e2e is equal and the
    recurrence collapses to ``steps × (e2e + reduce)``.
    """
    hosts = topology.hosts if topology is not None else None
    e2e = [
        path_end_to_end_ns(config, topology, src, dst, times=times)
        for src, dst in _ring_links(hosts, n_nodes)
    ]
    steps = 2 * (n_nodes - 1) * iterations
    done = [0.0] * n_nodes
    for _step in range(steps):
        previous = done
        done = [
            max(previous[r], previous[(r - 1) % n_nodes] + e2e[(r - 1) % n_nodes])
            + reduce_compute_ns
            for r in range(n_nodes)
        ]
    return done[0]


def predicted_recursive_doubling_ns(
    n_nodes: int,
    config: SystemConfig,
    topology: Topology | None = None,
    reduce_compute_ns: float = 20.0,
    iterations: int = 1,
    times: ComponentTimes | None = None,
) -> float:
    """log2(N) exchange rounds, each costing the round's slowest path."""
    if n_nodes & (n_nodes - 1):
        raise ValueError(f"recursive doubling needs a power of two, got {n_nodes}")
    rounds = n_nodes.bit_length() - 1
    hosts = topology.hosts if topology is not None else None
    total = 0.0
    for r in range(rounds):
        worst = 0.0
        for i in range(n_nodes):
            j = i ^ (1 << r)
            src = hosts[j] if hosts is not None else None
            dst = hosts[i] if hosts is not None else None
            worst = max(worst, path_end_to_end_ns(config, topology, src, dst, times=times))
        total += worst + reduce_compute_ns
    return total * iterations


def predicted_tree_broadcast_ns(
    n_nodes: int,
    config: SystemConfig,
    topology: Topology | None = None,
    root: int = 0,
    times: ComponentTimes | None = None,
) -> float:
    """Binomial-tree depth: the latest leaf's arrival time, one operation.

    Each rank receives once, then forwards to its children one after
    another; a child spawned in round r has waited for its parent's
    earlier sends, so arrival(child) = arrival(parent) + (sends before
    it + 1) × e2e along its path.  Unlike the lockstep collectives this
    prediction is per *single* broadcast: back-to-back broadcasts
    pipeline down the tree (leaves repost receives while the root is
    still sending), so N iterations finish in less than N× this.
    """
    hosts = topology.hosts if topology is not None else None
    arrival = {0: 0.0}
    latest = 0.0
    for rel in range(1, n_nodes):
        recv_round = rel.bit_length() - 1
        parent_rel = rel - (1 << recv_round)
        parent_abs = (parent_rel + root) % n_nodes
        child_abs = (rel + root) % n_nodes
        src = hosts[parent_abs] if hosts is not None else None
        dst = hosts[child_abs] if hosts is not None else None
        e2e = path_end_to_end_ns(config, topology, src, dst, times=times)
        parent_recv_round = parent_rel.bit_length() - 1 if parent_rel else -1
        sends_before = recv_round - parent_recv_round - 1
        arrival[rel] = arrival[parent_rel] + (sends_before + 1) * e2e
        latest = max(latest, arrival[rel])
    return latest


def _offload_entry_ns(config: SystemConfig, payload_bytes: int) -> float:
    """Host arm to NIC arrival: the §4.1 entry without a queue pair.

    MD setup + two store barriers + the chunked PIO copy on the CPU,
    then the MWr's RC processing and link transit.  Built from the
    config's own costs (not the paper constants) so ablated configs
    predict correctly.
    """
    nic = config.nic
    costs = config.costs
    chunks = math.ceil((nic.wqe_header_bytes + payload_bytes) / nic.pio_chunk_bytes)
    cpu_ns = (
        costs.md_setup
        + costs.barrier_md
        + costs.barrier_dbc
        + chunks * costs.pio_copy_64b
    )
    return (
        cpu_ns
        + config.pcie.rc_mmio_processing_ns
        + config.pcie.tlp_latency(chunks * nic.pio_chunk_bytes)
    )


def _offload_exit_ns(config: SystemConfig) -> float:
    """Final descriptor completion to host visibility: the notify DMA."""
    cqe = config.nic.cqe_bytes
    return (
        config.nic.offload_forward_ns
        + config.pcie.tlp_latency(cqe)
        + config.pcie.rc_to_mem(cqe)
    )


def predicted_nic_barrier_ns(
    n_nodes: int,
    config: SystemConfig,
    topology: Topology | None = None,
    iterations: int = 1,
) -> float:
    """NIC-resident dissemination barrier (zero-load, exact recurrence).

    Per rank and round: the round-``r`` descriptor completes once its
    own round ``r-1`` is done *and* the peer's token — sent
    ``offload_forward_ns`` after the peer finished round ``r-1`` — has
    crossed the routed network path.  Entry and exit each pay one PCIe
    crossing; interior hops pay only forward + network, which is the
    entire host-bypass saving.
    """
    rounds = (n_nodes - 1).bit_length()
    hosts = topology.hosts if topology is not None else None
    entry = _offload_entry_ns(config, 8)
    exit_ns = _offload_exit_ns(config)
    forward = config.nic.offload_forward_ns

    def net(src: int, dst: int) -> float:
        if topology is None or hosts is None:
            return config.network.one_way_latency()
        return topology.path_network_latency_ns(
            hosts[src], hosts[dst], config.network
        )

    start = [0.0] * n_nodes
    total = 0.0
    for _ in range(iterations):
        done = [start[i] + entry for i in range(n_nodes)]
        for r in range(rounds):
            previous = done
            done = [
                max(
                    previous[i],
                    previous[(i - (1 << r)) % n_nodes]
                    + forward
                    + net((i - (1 << r)) % n_nodes, i),
                )
                for i in range(n_nodes)
            ]
        start = [done[i] + exit_ns for i in range(n_nodes)]
        total = max(start)
    return total


def predicted_nic_tree_broadcast_ns(
    n_nodes: int,
    config: SystemConfig,
    topology: Topology | None = None,
    payload_bytes: int = 8,
    root: int = 0,
    iterations: int = 1,
) -> float:
    """NIC-forwarded binomial tree: latest payload-at-NIC time.

    The root's entry post seeds the tree; each NIC forwards to its
    children serially at ``offload_forward_ns`` per frame, so a child
    spawned after ``p`` earlier sends waits ``(p+1) × forward`` plus
    its routed path.  Iterations serialise on global completion (the
    harness's measurement barrier), matching the simulation.
    """
    rounds = (n_nodes - 1).bit_length()
    hosts = topology.hosts if topology is not None else None
    entry = _offload_entry_ns(config, payload_bytes)
    forward = config.nic.offload_forward_ns

    def net(src: int, dst: int) -> float:
        if topology is None or hosts is None:
            return config.network.one_way_latency()
        return topology.path_network_latency_ns(
            hosts[src], hosts[dst], config.network
        )

    start = 0.0
    for _ in range(iterations):
        arrival = {0: start + entry}
        latest = arrival[0]
        for rel in range(1, n_nodes):
            recv_round = rel.bit_length() - 1
            parent_rel = rel - (1 << recv_round)
            parent_recv_round = parent_rel.bit_length() - 1 if parent_rel else -1
            sends_before = recv_round - parent_recv_round - 1
            src = (parent_rel + root) % n_nodes
            dst = (rel + root) % n_nodes
            arrival[rel] = (
                arrival[parent_rel]
                + (sends_before + 1) * forward
                + net(src, dst)
            )
            latest = max(latest, arrival[rel])
        start = latest
    return start


def predicted_barrier_ns(
    n_nodes: int,
    config: SystemConfig,
    topology: Topology | None = None,
    iterations: int = 1,
    times: ComponentTimes | None = None,
) -> float:
    """Dissemination barrier: each round costs its slowest token path."""
    rounds = (n_nodes - 1).bit_length()
    hosts = topology.hosts if topology is not None else None
    total = 0.0
    for r in range(rounds):
        worst = 0.0
        for i in range(n_nodes):
            j = (i - (1 << r)) % n_nodes
            src = hosts[j] if hosts is not None else None
            dst = hosts[i] if hosts is not None else None
            worst = max(worst, path_end_to_end_ns(config, topology, src, dst, times=times))
        total += worst
    return total * iterations
