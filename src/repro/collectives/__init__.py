"""Collective algorithms over the simulated MPI stack.

The paper breaks down one point-to-point message; collectives are where
those per-message overheads compound — every allreduce step pays the
full HLP/LLP/PCIe/network critical path again.  This package runs the
classic algorithms (ring and recursive-doubling allreduce, binomial
tree broadcast, dissemination barrier) across an N-node
:class:`~repro.node.cluster.Cluster`, over either the point-to-point
fabric or a routed, contended topology (see
:mod:`repro.network.topology`).

Each algorithm returns a :class:`CollectiveResult`; the matching
analytic predictions built from the paper's per-message latency
components live in :mod:`repro.collectives.model`.

:func:`run_collective` is the single dispatch surface — op name plus
``algorithm=`` and ``offload=`` keywords — and is what the workloads,
:meth:`repro.api.Experiment.run` and the CLI call.  The named
functions (:func:`ring_allreduce` etc.) remain as thin wrappers over
it.  ``offload="nic"`` selects the NIC-resident barrier/broadcast from
:mod:`repro.collectives.offload`, which run their interior hops
entirely on the adapters.

Quickstart::

    from repro.api import Experiment

    exp = Experiment(nodes=64, topology="fat_tree:4", deterministic=True)
    run = exp.run("allreduce", algorithm="ring", payload_bytes=8)
    print(run.measurements["time_per_iteration_ns"])
"""

from repro.collectives.algorithms import (
    CollectiveResult,
    barrier,
    recursive_doubling_allreduce,
    ring_allreduce,
    run_collective,
    tree_broadcast,
)
from repro.collectives.model import (
    path_end_to_end_ns,
    predicted_barrier_ns,
    predicted_nic_barrier_ns,
    predicted_nic_tree_broadcast_ns,
    predicted_recursive_doubling_ns,
    predicted_ring_allreduce_ns,
    predicted_tree_broadcast_ns,
)

__all__ = [
    "CollectiveResult",
    "barrier",
    "path_end_to_end_ns",
    "predicted_barrier_ns",
    "predicted_nic_barrier_ns",
    "predicted_nic_tree_broadcast_ns",
    "predicted_recursive_doubling_ns",
    "predicted_ring_allreduce_ns",
    "predicted_tree_broadcast_ns",
    "recursive_doubling_allreduce",
    "ring_allreduce",
    "run_collective",
    "tree_broadcast",
]
