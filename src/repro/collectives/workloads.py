"""Campaign-registry wrappers for the collectives.

Uniform ``workload(config, **params) -> dict`` entry points so
collectives are sweepable like any other workload — node count,
topology, payload and algorithm are all plain parameters (axes), which
is what makes ``CampaignSpec(axes=[SweepAxis("n_nodes", (8, 16, 64))])``
scale-out sweeps declarative.

Registered in :mod:`repro.campaign.workloads` as ``allreduce``,
``bcast`` and ``barrier``.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.collectives import algorithms, model
from repro.network.topology import Topology, TopologySpec
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

__all__ = ["allreduce_workload", "barrier_workload", "bcast_workload"]


def _with_topology(
    config: SystemConfig, topology: str | TopologySpec | None
) -> SystemConfig:
    """Fold a topology request (spec or ``"fat_tree:4"`` string) in."""
    if topology is None:
        return config
    spec = TopologySpec.parse(topology) if isinstance(topology, str) else topology
    return config.evolve(
        network=dataclasses.replace(config.network, topology=spec)
    )


def _common(result: algorithms.CollectiveResult, predicted_ns: float) -> dict[str, Any]:
    measured = result.time_per_iteration_ns
    return {
        "algorithm": result.algorithm,
        "offload": result.offload,
        "n_nodes": result.n_nodes,
        "processes_per_node": result.processes_per_node,
        "steps": result.steps,
        "iterations": result.iterations,
        "total_ns": result.total_ns,
        "time_per_iteration_ns": measured,
        "time_per_step_ns": result.time_per_step_ns,
        "model_ns": predicted_ns,
        "model_error": abs(measured - predicted_ns) / predicted_ns
        if predicted_ns
        else 0.0,
    }


def allreduce_workload(
    config: SystemConfig,
    algorithm: str = "ring",
    n_nodes: int = 8,
    topology: str | None = None,
    payload_bytes: int = 8,
    reduce_compute_ns: float = 20.0,
    iterations: int = 1,
    signal_period: int = 64,
    processes_per_node: int = 1,
    offload: str = "host",
) -> dict[str, Any]:
    """N-node allreduce (``algorithm`` = ``ring`` | ``recursive_doubling``).

    With ``processes_per_node > 1`` the rank count is
    ``n_nodes × processes_per_node`` and same-node neighbour pairs ride
    the shared-memory transport; the closed-form model only covers the
    one-rank-per-node case, so ``model_ns`` is reported as 0 otherwise.
    Allreduce has no NIC-offloaded variant (the engine forwards, it
    does not yet reduce), so ``offload`` must stay ``"host"``.
    """
    config = _with_topology(config, topology)
    cluster = Cluster(n_nodes, config=config, processes_per_node=processes_per_node)
    built: Topology | None = cluster.topology
    result = algorithms.run_collective(
        "allreduce",
        cluster,
        algorithm=algorithm,
        offload=offload,
        payload_bytes=payload_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        signal_period=signal_period,
    )
    if processes_per_node != 1:
        predicted = 0.0
    elif algorithm == "ring":
        predicted = model.predicted_ring_allreduce_ns(
            n_nodes, config, built,
            reduce_compute_ns=reduce_compute_ns, iterations=iterations,
        ) / iterations
    else:
        predicted = model.predicted_recursive_doubling_ns(
            n_nodes, config, built,
            reduce_compute_ns=reduce_compute_ns, iterations=iterations,
        ) / iterations
    return {**_common(result, predicted), "payload_bytes": payload_bytes}


def bcast_workload(
    config: SystemConfig,
    n_nodes: int = 8,
    topology: str | None = None,
    payload_bytes: int = 8,
    root: int = 0,
    iterations: int = 1,
    signal_period: int = 64,
    processes_per_node: int = 1,
    offload: str = "host",
) -> dict[str, Any]:
    """Binomial-tree broadcast across N nodes (× processes_per_node ranks).

    ``offload="nic"`` forwards NIC-to-NIC
    (:func:`repro.collectives.offload.nic_tree_broadcast`): non-root
    hosts never wake and the model check extends via
    :func:`repro.collectives.model.predicted_nic_tree_broadcast_ns`.
    """
    config = _with_topology(config, topology)
    cluster = Cluster(n_nodes, config=config, processes_per_node=processes_per_node)
    result = algorithms.run_collective(
        "bcast",
        cluster,
        offload=offload,
        payload_bytes=payload_bytes,
        iterations=iterations,
        root=root,
        signal_period=signal_period,
    )
    # Host prediction is per single operation (iterations > 1 pipeline
    # below it); the offloaded variant serialises on completion, so its
    # prediction is exact per iteration.
    if processes_per_node != 1:
        predicted = 0.0
    elif offload == "nic":
        predicted = model.predicted_nic_tree_broadcast_ns(
            n_nodes, config, cluster.topology,
            payload_bytes=payload_bytes, root=root, iterations=iterations,
        ) / iterations
    else:
        predicted = model.predicted_tree_broadcast_ns(
            n_nodes, config, cluster.topology, root=root
        )
    return {**_common(result, predicted), "payload_bytes": payload_bytes, "root": root}


def barrier_workload(
    config: SystemConfig,
    n_nodes: int = 8,
    topology: str | None = None,
    iterations: int = 1,
    signal_period: int = 64,
    processes_per_node: int = 1,
    offload: str = "host",
) -> dict[str, Any]:
    """Dissemination barrier across N nodes (× processes_per_node ranks).

    ``offload="nic"`` runs every token round on the adapters
    (:func:`repro.collectives.offload.nic_barrier`); hosts touch PCIe
    once to enter and once to learn the result.
    """
    config = _with_topology(config, topology)
    cluster = Cluster(n_nodes, config=config, processes_per_node=processes_per_node)
    result = algorithms.run_collective(
        "barrier",
        cluster,
        offload=offload,
        iterations=iterations,
        signal_period=signal_period,
    )
    if processes_per_node != 1:
        predicted = 0.0
    elif offload == "nic":
        predicted = model.predicted_nic_barrier_ns(
            n_nodes, config, cluster.topology, iterations=iterations
        ) / iterations
    else:
        predicted = model.predicted_barrier_ns(
            n_nodes, config, cluster.topology, iterations=iterations
        ) / iterations
    return _common(result, predicted)
