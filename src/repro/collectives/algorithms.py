"""The collective algorithms themselves.

Every algorithm runs one MPI process per *rank* (a full MPICH→UCP→UCT
stack, busy-poll progress loops and all) and drives real messages
through the fabric — contention on shared topology links is observed,
not modelled.  With ``processes_per_node > 1`` ranks are block-placed
(rank r on node r // ppn, pinned to core r % ppn) and same-node pairs
resolve the shared-memory transport automatically.  Communicators are created up front in a fixed
order so runs are deterministic regardless of process interleaving.

A node's receives share its UCP worker mailbox, so concurrent messages
from different partners match in arrival order (FIFO), exactly like
unexpected-message handling in a real tag-matching engine with one
source wildcard.  The algorithms below only overlap one outstanding
receive per rank per step, which keeps that ambiguity timing-neutral.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass

from repro.hlp.mpi import MpiComm, MpiStack
from repro.node.cluster import Cluster

__all__ = [
    "CollectiveResult",
    "barrier",
    "recursive_doubling_allreduce",
    "ring_allreduce",
    "run_collective",
    "tree_broadcast",
]


@dataclass
class CollectiveResult:
    """Outcome of one collective run."""

    cluster: Cluster
    algorithm: str
    #: Total rank count (nodes × processes_per_node).
    n_nodes: int
    payload_bytes: int
    reduce_compute_ns: float
    iterations: int
    #: Virtual time at which the collective (all iterations) completed.
    total_ns: float
    #: Point-to-point exchanges on the longest dependency chain of one
    #: iteration (2(N-1) for ring, ceil(log2 N) for the log algorithms).
    steps: int
    #: Ranks per node the run was placed with.
    processes_per_node: int = 1
    #: Where the algorithm ran: "host" (the MPI stack drives every
    #: hop) or "nic" (interior hops are NIC-resident, see
    #: :mod:`repro.collectives.offload`).
    offload: str = "host"

    @property
    def time_per_iteration_ns(self) -> float:
        """Mean wall time of one complete collective operation."""
        return self.total_ns / self.iterations if self.iterations else 0.0

    @property
    def time_per_step_ns(self) -> float:
        """Mean time per chain step (≈ one end-to-end latency)."""
        return self.time_per_iteration_ns / self.steps if self.steps else 0.0


class _Runtime:
    """Per-run MPI plumbing: one stack per rank, cached communicators.

    One process per rank, block placement.  At one process per node
    the stack/core objects are exactly the per-node ones of old runs.
    """

    def __init__(self, cluster: Cluster, signal_period: int) -> None:
        self.cluster = cluster
        self.nodes = [cluster.node_for_rank(r) for r in range(cluster.n_ranks)]
        self.cores = [cluster.core_for_rank(r) for r in range(cluster.n_ranks)]
        self.stacks = [
            MpiStack(node, signal_period=signal_period, core=core)
            for node, core in zip(self.nodes, self.cores)
        ]
        self._comms: dict[tuple[int, int], MpiComm] = {}

    def comm(self, src: int, dst: int) -> MpiComm:
        """Rank ``src``'s communicator towards rank ``dst`` (cached)."""
        key = (src, dst)
        comm = self._comms.get(key)
        if comm is None:
            comm = self.stacks[src].connect(self.stacks[dst])
            self._comms[key] = comm
        return comm


def _validate(n_nodes: int, iterations: int, reduce_compute_ns: float) -> None:
    if n_nodes < 2:
        raise ValueError(f"collectives need at least two ranks, got {n_nodes}")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if reduce_compute_ns < 0:
        raise ValueError(f"reduce_compute_ns must be >= 0, got {reduce_compute_ns}")


def _ring_allreduce_impl(
    cluster: Cluster,
    payload_bytes: int = 8,
    reduce_compute_ns: float = 20.0,
    iterations: int = 20,
    signal_period: int = 64,
) -> CollectiveResult:
    """Ring allreduce: 2(N−1) lockstep steps, one chunk right per step.

    Each step receives a chunk from the left neighbour, sends one right
    and reduces — the reduce-scatter + allgather schedule.  With every
    rank advancing in lockstep the per-step time is one end-to-end
    latency, so the §6 model composes to
    ``2(N−1) × (end-to-end + reduce)`` on a uniform fabric (see
    :func:`repro.collectives.model.predicted_ring_allreduce_ns` for the
    per-link generalisation).
    """
    n_nodes = cluster.n_ranks
    _validate(n_nodes, iterations, reduce_compute_ns)
    runtime = _Runtime(cluster, signal_period)
    to_right = [runtime.comm(i, (i + 1) % n_nodes) for i in range(n_nodes)]
    env = cluster.env
    steps = 2 * (n_nodes - 1)
    marks: dict[str, float] = {}

    def rank(index: int) -> Generator:
        comm = to_right[index]
        core = runtime.cores[index]
        for _ in range(iterations):
            for _step in range(steps):
                incoming = yield from comm.irecv(payload_bytes)
                yield from comm.isend(payload_bytes)
                yield from comm.wait(incoming)
                if reduce_compute_ns > 0:
                    yield from core.execute("reduce_op", mean=reduce_compute_ns)
        if index == 0:
            marks["t_end"] = env.now

    processes = [
        env.process(rank(index), name=f"allreduce.rank{index}")
        for index in range(n_nodes)
    ]
    env.run(until=env.all_of(processes))
    return CollectiveResult(
        cluster=cluster,
        algorithm="ring_allreduce",
        n_nodes=n_nodes,
        payload_bytes=payload_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        total_ns=marks["t_end"],
        steps=steps,
        processes_per_node=cluster.processes_per_node,
    )


def _recursive_doubling_allreduce_impl(
    cluster: Cluster,
    payload_bytes: int = 8,
    reduce_compute_ns: float = 20.0,
    iterations: int = 1,
    signal_period: int = 64,
) -> CollectiveResult:
    """Recursive-doubling allreduce: log2(N) pairwise exchange rounds.

    Round r pairs rank i with ``i XOR 2^r``; both exchange the full
    vector and reduce.  Requires a power-of-two rank count.
    """
    n_nodes = cluster.n_ranks
    _validate(n_nodes, iterations, reduce_compute_ns)
    if n_nodes & (n_nodes - 1):
        raise ValueError(
            f"recursive doubling needs a power-of-two rank count, got {n_nodes}"
        )
    rounds = n_nodes.bit_length() - 1
    runtime = _Runtime(cluster, signal_period)
    for r in range(rounds):
        for i in range(n_nodes):
            runtime.comm(i, i ^ (1 << r))
    env = cluster.env

    def rank(index: int) -> Generator:
        core = runtime.cores[index]
        for _ in range(iterations):
            for r in range(rounds):
                comm = runtime.comm(index, index ^ (1 << r))
                incoming = yield from comm.irecv(payload_bytes)
                yield from comm.isend(payload_bytes)
                yield from comm.wait(incoming)
                if reduce_compute_ns > 0:
                    yield from core.execute("reduce_op", mean=reduce_compute_ns)

    processes = [
        env.process(rank(index), name=f"rd_allreduce.rank{index}")
        for index in range(n_nodes)
    ]
    env.run(until=env.all_of(processes))
    return CollectiveResult(
        cluster=cluster,
        algorithm="recursive_doubling_allreduce",
        n_nodes=n_nodes,
        payload_bytes=payload_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        total_ns=env.now,
        steps=rounds,
        processes_per_node=cluster.processes_per_node,
    )


def _bcast_rounds(n_nodes: int) -> int:
    return (n_nodes - 1).bit_length()


def _tree_broadcast_impl(
    cluster: Cluster,
    payload_bytes: int = 8,
    iterations: int = 1,
    root: int = 0,
    signal_period: int = 64,
) -> CollectiveResult:
    """Binomial-tree broadcast from ``root``.

    In round r the ranks that already hold the payload each forward it
    to one new rank, doubling coverage; rank i (relative to the root)
    receives in round ``floor(log2 i)`` from ``i - 2^floor(log2 i)``.
    The chain depth is ``ceil(log2 N)`` rounds.
    """
    n_nodes = cluster.n_ranks
    _validate(n_nodes, iterations, 0.0)
    if not 0 <= root < n_nodes:
        raise ValueError(f"root {root} out of range for {n_nodes} ranks")
    rounds = _bcast_rounds(n_nodes)
    runtime = _Runtime(cluster, signal_period)
    # Relative rank r talks to parent/children computed in rank space
    # shifted so the root is 0.
    for rel in range(1, n_nodes):
        parent_rel = rel - (1 << (rel.bit_length() - 1))
        child = (rel + root) % n_nodes
        parent = (parent_rel + root) % n_nodes
        runtime.comm(parent, child)
        runtime.comm(child, parent)
    env = cluster.env

    def rank(index: int) -> Generator:
        rel = (index - root) % n_nodes
        recv_round = rel.bit_length() - 1 if rel else -1
        parent = ((rel - (1 << recv_round)) + root) % n_nodes if rel else -1
        children = [
            ((rel + (1 << r)) + root) % n_nodes
            for r in range(recv_round + 1, rounds)
            if rel + (1 << r) < n_nodes
        ]
        for _ in range(iterations):
            if rel:
                comm = runtime.comm(index, parent)
                incoming = yield from comm.irecv(payload_bytes)
                yield from comm.wait(incoming)
            for child in children:
                comm = runtime.comm(index, child)
                request = yield from comm.isend(payload_bytes)
                yield from comm.wait(request)

    processes = [
        env.process(rank(index), name=f"bcast.rank{index}")
        for index in range(n_nodes)
    ]
    env.run(until=env.all_of(processes))
    return CollectiveResult(
        cluster=cluster,
        algorithm="tree_broadcast",
        n_nodes=n_nodes,
        payload_bytes=payload_bytes,
        reduce_compute_ns=0.0,
        iterations=iterations,
        total_ns=env.now,
        steps=rounds,
        processes_per_node=cluster.processes_per_node,
    )


def _barrier_impl(
    cluster: Cluster,
    iterations: int = 1,
    signal_period: int = 64,
) -> CollectiveResult:
    """Dissemination barrier: ``ceil(log2 N)`` token rounds.

    In round r every rank sends an 8-byte token to ``(i + 2^r) mod N``
    and waits for the token from ``(i - 2^r) mod N`` — after the last
    round every rank has (transitively) heard from every other.
    """
    n_nodes = cluster.n_ranks
    _validate(n_nodes, iterations, 0.0)
    rounds = _bcast_rounds(n_nodes)
    token_bytes = 8
    runtime = _Runtime(cluster, signal_period)
    for r in range(rounds):
        for i in range(n_nodes):
            runtime.comm(i, (i + (1 << r)) % n_nodes)
    env = cluster.env

    def rank(index: int) -> Generator:
        for _ in range(iterations):
            for r in range(rounds):
                to = (index + (1 << r)) % n_nodes
                frm = (index - (1 << r)) % n_nodes
                out = runtime.comm(index, to)
                inc = runtime.comm(index, frm)
                incoming = yield from inc.irecv(token_bytes)
                yield from out.isend(token_bytes)
                yield from inc.wait(incoming)

    processes = [
        env.process(rank(index), name=f"barrier.rank{index}")
        for index in range(n_nodes)
    ]
    env.run(until=env.all_of(processes))
    return CollectiveResult(
        cluster=cluster,
        algorithm="barrier",
        n_nodes=n_nodes,
        payload_bytes=token_bytes,
        reduce_compute_ns=0.0,
        iterations=iterations,
        total_ns=env.now,
        steps=rounds,
        processes_per_node=cluster.processes_per_node,
    )

# -- the unified call surface ------------------------------------------------

#: Default algorithm per operation (what MPI implementations pick for
#: small messages at these scales).
_DEFAULT_ALGORITHM = {
    "allreduce": "ring",
    "bcast": "binomial_tree",
    "barrier": "dissemination",
}


def _nic_barrier(cluster: Cluster, **params: object) -> CollectiveResult:
    from repro.collectives.offload import nic_barrier

    return nic_barrier(cluster, **params)  # type: ignore[arg-type]


def _nic_tree_broadcast(cluster: Cluster, **params: object) -> CollectiveResult:
    from repro.collectives.offload import nic_tree_broadcast

    return nic_tree_broadcast(cluster, **params)  # type: ignore[arg-type]


#: (op, algorithm, offload) -> implementation.  The offloaded variants
#: import lazily so the host-only path never loads the offload engine.
_IMPLEMENTATIONS = {
    ("allreduce", "ring", "host"): _ring_allreduce_impl,
    ("allreduce", "recursive_doubling", "host"): _recursive_doubling_allreduce_impl,
    ("bcast", "binomial_tree", "host"): _tree_broadcast_impl,
    ("barrier", "dissemination", "host"): _barrier_impl,
    ("bcast", "binomial_tree", "nic"): _nic_tree_broadcast,
    ("barrier", "dissemination", "nic"): _nic_barrier,
}


def run_collective(
    op: str,
    cluster: Cluster,
    *,
    algorithm: str | None = None,
    offload: str = "host",
    **params: object,
) -> CollectiveResult:
    """Run one collective operation — the single entry point.

    ``op`` is ``"allreduce"``, ``"bcast"`` or ``"barrier"``;
    ``algorithm`` defaults per operation (ring / binomial_tree /
    dissemination); ``offload="nic"`` selects the NIC-resident variants
    of barrier and bcast (:mod:`repro.collectives.offload`).  Remaining
    keyword arguments (``payload_bytes``, ``iterations``,
    ``reduce_compute_ns``, ``signal_period``, ``root``) pass through to
    the implementation.  The legacy per-algorithm functions
    (:func:`ring_allreduce` and friends) are thin wrappers over this.
    """
    if op not in _DEFAULT_ALGORITHM:
        raise ValueError(
            f"unknown collective op {op!r}; registered: "
            f"{', '.join(sorted(_DEFAULT_ALGORITHM))}"
        )
    if offload not in ("host", "nic"):
        raise ValueError(
            f"unknown offload mode {offload!r}; choose 'host' or 'nic'"
        )
    chosen = algorithm if algorithm is not None else _DEFAULT_ALGORITHM[op]
    impl = _IMPLEMENTATIONS.get((op, chosen, offload))
    if impl is None:
        available = sorted(
            a for (o, a, f) in _IMPLEMENTATIONS if o == op and f == offload
        )
        if not available:
            raise ValueError(
                f"{op!r} has no offload={offload!r} implementation — "
                f"NIC offload covers 'barrier' and 'bcast'"
            )
        raise ValueError(
            f"unknown {op} algorithm {chosen!r} for offload={offload!r}; "
            f"registered: {', '.join(available)}"
        )
    return impl(cluster, **params)  # type: ignore[arg-type]


# -- legacy entry points (thin wrappers over run_collective) -----------------

def ring_allreduce(
    cluster: Cluster,
    payload_bytes: int = 8,
    reduce_compute_ns: float = 20.0,
    iterations: int = 20,
    signal_period: int = 64,
) -> CollectiveResult:
    """Ring allreduce (see :func:`run_collective`, ``algorithm="ring"``)."""
    return run_collective(
        "allreduce",
        cluster,
        algorithm="ring",
        payload_bytes=payload_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        signal_period=signal_period,
    )


def recursive_doubling_allreduce(
    cluster: Cluster,
    payload_bytes: int = 8,
    reduce_compute_ns: float = 20.0,
    iterations: int = 1,
    signal_period: int = 64,
) -> CollectiveResult:
    """Recursive-doubling allreduce (``algorithm="recursive_doubling"``)."""
    return run_collective(
        "allreduce",
        cluster,
        algorithm="recursive_doubling",
        payload_bytes=payload_bytes,
        reduce_compute_ns=reduce_compute_ns,
        iterations=iterations,
        signal_period=signal_period,
    )


def tree_broadcast(
    cluster: Cluster,
    payload_bytes: int = 8,
    iterations: int = 1,
    root: int = 0,
    signal_period: int = 64,
) -> CollectiveResult:
    """Binomial-tree broadcast (see :func:`run_collective`, op ``bcast``)."""
    return run_collective(
        "bcast",
        cluster,
        payload_bytes=payload_bytes,
        iterations=iterations,
        root=root,
        signal_period=signal_period,
    )


def barrier(
    cluster: Cluster,
    iterations: int = 1,
    signal_period: int = 64,
) -> CollectiveResult:
    """Dissemination barrier (see :func:`run_collective`, op ``barrier``)."""
    return run_collective(
        "barrier",
        cluster,
        iterations=iterations,
        signal_period=signal_period,
    )
