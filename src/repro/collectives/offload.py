"""NIC-offloaded barrier and broadcast (``offload="nic"``).

The host-based PR-5 algorithms pay the full §4.1/§6 per-message path on
every hop of every round: LLP_post, two PCIe crossings, RC-to-MEM and
a CQ poll.  The offloaded variants arm persistent
:class:`~repro.nic.offload.OffloadDescriptor` chains on each rank's NIC
before the run starts, so the protocol's interior hops are entirely
NIC-resident — a rank's host CPU touches PCIe exactly once to enter
(one PIO post) and, for the barrier, once to learn the result (one
notification DMA).  Broadcast payloads stay on the NIC: non-root ranks
run no host process at all and record zero PCIe or CQ-poll spans,
which is the trace-level proof of the host bypass.

Protocol sketches (tags are ``(op, iteration, round)`` tuples):

* **barrier** — dissemination on NICs.  The entry post completes an
  ``("bar", k, "entry")`` descriptor whose completion sends the round-0
  token to rank ``i+1`` and chains a local credit; round ``r``'s
  descriptor waits for two credits (peer token + own previous round),
  then forwards the round ``r+1`` token to ``(i + 2^(r+1)) mod N``.
  The final round's completion DMAs a notification to the host.
* **bcast** — binomial tree on NICs.  Every rank posts one descriptor
  per iteration expecting the payload once; on arrival the NIC
  forwards serially to its children's NICs.  The root's host enters
  via PIO; completion is payload-at-NIC (no notification), marked by
  zero-cost harness bookkeeping.

Iterations of the barrier pipeline naturally (each rank re-enters
after its own notification); broadcasts serialise on global completion
— a harness choice that keeps one iteration's frames from overtaking
the measurement, documented in ``docs/collectives.md``.
"""

from __future__ import annotations

import math
from collections.abc import Generator

from repro.collectives.algorithms import CollectiveResult, _bcast_rounds, _validate
from repro.cpu.core import CpuCore
from repro.nic.offload import OffloadDescriptor, OffloadToken
from repro.node.cluster import Cluster
from repro.node.node import Node
from repro.pcie.packets import Tlp, TlpType
from repro.sim.engine import Event

__all__ = ["nic_barrier", "nic_tree_broadcast"]

_TOKEN_BYTES = 8


def _require_one_rank_per_node(cluster: Cluster, op: str) -> None:
    if cluster.processes_per_node != 1:
        raise ValueError(
            f"NIC-offloaded {op} needs one rank per node (the offload "
            f"engine is per-adapter); got processes_per_node="
            f"{cluster.processes_per_node}"
        )


def _post_offload(node: Node, core: CpuCore, token: OffloadToken) -> Generator:
    """The §4.1 entry sequence for one offload arm (PIO+inline post).

    Identical cost structure to the transport's ``post_short`` — MD
    setup, two store barriers, the chunked PIO copy, then the MMIO —
    but the MWr is an ``offload_post`` routed to the NIC's offload
    engine instead of a queue-pair descriptor.
    """
    nic_cfg = node.config.nic
    tracer = node.env.tracer
    tspan = tracer.begin(
        "llp", "llp_post", track=core.name,
        msg=token.msg_id, op="offload_arm", bytes=token.payload_bytes,
    )
    with tracer.span("llp", "md_setup", track=core.name, msg=token.msg_id):
        yield from core.execute("md_setup")
    with tracer.span("llp", "barrier_md", track=core.name, msg=token.msg_id):
        yield from core.execute("barrier_md")
    with tracer.span("llp", "barrier_dbc", track=core.name, msg=token.msg_id):
        yield from core.execute("barrier_dbc")
    wqe_bytes = nic_cfg.wqe_header_bytes + token.payload_bytes
    chunks = math.ceil(wqe_bytes / nic_cfg.pio_chunk_bytes)
    with tracer.span(
        "llp", "pio_copy", track=core.name, msg=token.msg_id, chunks=chunks
    ):
        yield from core.execute("pio_copy_64b", mean=chunks * core.costs.pio_copy_64b)
    node.rails[0].rc.mmio_write(
        Tlp(
            kind=TlpType.MWR,
            payload_bytes=chunks * nic_cfg.pio_chunk_bytes,
            purpose="offload_post",
            message=token,
        )
    )
    yield from core.execute("llp_post_misc")
    tracer.end(tspan)


def nic_barrier(
    cluster: Cluster, iterations: int = 1, signal_period: int = 64
) -> CollectiveResult:
    """Dissemination barrier with every round resident on the NICs.

    Same ``ceil(log2 N)``-round token schedule as the host barrier;
    each hop costs ``offload_forward_ns`` + the routed network path
    instead of the host's full per-message critical path.
    ``signal_period`` is accepted for signature parity with the host
    algorithm and ignored — there is no CQ to moderate.
    """
    del signal_period
    n_nodes = cluster.n_ranks
    _validate(n_nodes, iterations, 0.0)
    _require_one_rank_per_node(cluster, "barrier")
    rounds = _bcast_rounds(n_nodes)
    env = cluster.env
    nodes = [cluster.node_for_rank(i) for i in range(n_nodes)]
    nics = [node.rails[0].nic for node in nodes]

    for i in range(n_nodes):
        engine = nics[i].offload
        for k in range(iterations):
            engine.post(
                OffloadDescriptor(
                    tag=("bar", k, "entry"),
                    expected=1,
                    forward_to=((nics[(i + 1) % n_nodes].name, ("bar", k, 0)),),
                    payload_bytes=_TOKEN_BYTES,
                    chain_to=("bar", k, 0),
                )
            )
            for r in range(rounds):
                if r + 1 < rounds:
                    peer = nics[(i + (1 << (r + 1))) % n_nodes].name
                    engine.post(
                        OffloadDescriptor(
                            tag=("bar", k, r),
                            expected=2,
                            forward_to=((peer, ("bar", k, r + 1)),),
                            payload_bytes=_TOKEN_BYTES,
                            chain_to=("bar", k, r + 1),
                        )
                    )
                else:
                    engine.post(
                        OffloadDescriptor(
                            tag=("bar", k, r),
                            expected=2,
                            notify_mailbox="offload.barrier",
                        )
                    )

    def rank(index: int) -> Generator:
        node = nodes[index]
        core = cluster.core_for_rank(index)
        mailbox = node.memory.mailbox("offload.barrier")
        for k in range(iterations):
            token = OffloadToken(tag=("bar", k, "entry"), payload_bytes=_TOKEN_BYTES)
            yield from _post_offload(node, core, token)
            yield mailbox.get()

    processes = [
        env.process(rank(index), name=f"nic_barrier.rank{index}")
        for index in range(n_nodes)
    ]
    env.run(until=env.all_of(processes))
    return CollectiveResult(
        cluster=cluster,
        algorithm="barrier",
        n_nodes=n_nodes,
        payload_bytes=_TOKEN_BYTES,
        reduce_compute_ns=0.0,
        iterations=iterations,
        total_ns=env.now,
        steps=rounds,
        processes_per_node=cluster.processes_per_node,
        offload="nic",
    )


def nic_tree_broadcast(
    cluster: Cluster,
    payload_bytes: int = 8,
    iterations: int = 1,
    root: int = 0,
    signal_period: int = 64,
) -> CollectiveResult:
    """Binomial-tree broadcast forwarded NIC-to-NIC.

    Completion is payload-at-NIC on every rank — non-root hosts never
    wake, so their nodes record zero PCIe and zero CQ-poll spans.
    ``signal_period`` is accepted for signature parity and ignored.
    """
    del signal_period
    n_nodes = cluster.n_ranks
    _validate(n_nodes, iterations, 0.0)
    _require_one_rank_per_node(cluster, "bcast")
    if not 0 <= root < n_nodes:
        raise ValueError(f"root {root} out of range for {n_nodes} ranks")
    rounds = _bcast_rounds(n_nodes)
    env = cluster.env
    nodes = [cluster.node_for_rank(i) for i in range(n_nodes)]
    nics = [node.rails[0].nic for node in nodes]

    done: list[Event] = [Event(env) for _ in range(iterations)]
    remaining = [n_nodes] * iterations

    def make_mark(k: int):
        def mark(_when: float) -> None:
            remaining[k] -= 1
            if remaining[k] == 0:
                done[k].succeed(env.now)

        return mark

    for i in range(n_nodes):
        rel = (i - root) % n_nodes
        recv_round = rel.bit_length() - 1 if rel else -1
        children = [
            ((rel + (1 << r)) + root) % n_nodes
            for r in range(recv_round + 1, rounds)
            if rel + (1 << r) < n_nodes
        ]
        engine = nics[i].offload
        for k in range(iterations):
            engine.post(
                OffloadDescriptor(
                    tag=("bcast", k),
                    expected=1,
                    forward_to=tuple(
                        (nics[child].name, ("bcast", k)) for child in children
                    ),
                    payload_bytes=payload_bytes,
                    on_complete=make_mark(k),
                )
            )

    def root_rank() -> Generator:
        node = nodes[root]
        core = cluster.core_for_rank(root)
        for k in range(iterations):
            token = OffloadToken(tag=("bcast", k), payload_bytes=payload_bytes)
            yield from _post_offload(node, core, token)
            yield done[k]

    process = env.process(root_rank(), name=f"nic_bcast.rank{root}")
    env.run(until=env.all_of([process]))
    return CollectiveResult(
        cluster=cluster,
        algorithm="tree_broadcast",
        n_nodes=n_nodes,
        payload_bytes=payload_bytes,
        reduce_compute_ns=0.0,
        iterations=iterations,
        total_ns=env.now,
        steps=rounds,
        processes_per_node=cluster.processes_per_node,
        offload="nic",
    )
