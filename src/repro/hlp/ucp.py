"""UCP-like protocol layer over UCT.

Implements ``tag_send_nb``, ``tag_recv_nb`` and ``worker_progress``
with the completion-callback chain the paper measures in §5, plus the
two §6 caveats: busy posts are pended and re-posted during progress,
and the NIC is asked for a completion only every ``signal_period``
operations (unsignaled completions).
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Callable, Generator
from dataclasses import dataclass, field
from typing import Any

from repro.llp.profiling import UcsProfiler
from repro.llp.uct import (
    UCS_OK,
    UctEndpoint,
    UctIface,
    UctWorker,
    invoke_callback,
)
from repro.nic.completion import Cqe
from repro.nic.descriptor import Message
from repro.node.node import Node

__all__ = ["UcpEndpoint", "UcpRequest", "UcpWorker"]

_request_ids = itertools.count(1)

#: UCX's default unsignaled-completion period ("c = 64 in UCX", §6).
DEFAULT_SIGNAL_PERIOD = 64


@dataclass
class UcpRequest:
    """A non-blocking operation handle (send or receive)."""

    kind: str  # "send" | "recv"
    payload_bytes: int
    completed: bool = False
    #: "ok", or "error" when the transport gave up on the operation.
    status: str = "ok"
    #: Failure reason accompanying an error status.
    error: str | None = None
    #: The message that satisfied a recv (for journal access).
    message: Message | None = None
    #: Upper-layer (MPICH) completion callback; may be a generator fn.
    upper_callback: Callable[["UcpRequest"], Any] | None = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"<UcpRequest#{self.request_id} {self.kind} {state}>"


class UcpWorker:
    """One UCP worker: owns a UCT worker/iface pair and request state."""

    def __init__(
        self,
        node: Node,
        profiler: UcsProfiler | None = None,
        signal_period: int = DEFAULT_SIGNAL_PERIOD,
        core=None,
    ) -> None:
        self.node = node
        self.cpu = core if core is not None else node.cpu
        self.profiler = profiler or UcsProfiler(node.timer, enabled=False)
        self.uct_worker = UctWorker(node, self.profiler, core=self.cpu)
        self.iface: UctIface = self.uct_worker.create_iface(signal_period=signal_period)
        self.iface.add_completion_callback(self._on_send_cqe)
        self.iface.set_am_handler(self._on_am_message)
        #: Sends posted to the NIC, oldest first, awaiting completion.
        self.inflight_sends: deque[UcpRequest] = deque()
        #: Sends that hit a busy post, awaiting re-post during progress.
        self.pending_sends: deque[tuple[UcpRequest, UctEndpoint]] = deque()
        #: Posted receives awaiting a message (FIFO matching).
        self.posted_recvs: deque[UcpRequest] = deque()
        #: Messages that arrived before their receive was posted.
        self.unexpected: deque[Message] = deque()
        #: LLP_posts executed on behalf of pended sends during progress
        #: (the §6 caveat-1 accounting: deducted from Post_prog).
        self.progress_llp_posts = 0
        #: Simulated ns spent on those re-posts (for the deduction).
        self.progress_llp_post_ns = 0.0
        self.busy_posts_encountered = 0
        #: Transport error CQEs observed (structured failures, not hangs).
        self.transport_errors = 0
        self._recv_side_events = 0

    # -- endpoints -----------------------------------------------------------------
    def create_ep(self, remote: "UcpWorker") -> "UcpEndpoint":
        """Connect to a remote UCP worker."""
        return UcpEndpoint(self, self.iface.create_ep(remote.iface))

    # -- send path ---------------------------------------------------------------------
    def tag_send_nb(
        self,
        ep: "UcpEndpoint",
        payload_bytes: int,
        upper_callback: Callable[[UcpRequest], Any] | None = None,
    ) -> Generator:
        """``ucp_tag_send_nb``: non-blocking eager send (generator).

        Charges the UCP initiation cost, then attempts the LLP post.  On
        a busy post the request is pended and completes via progress.
        Returns the :class:`UcpRequest`.
        """
        cpu = self.cpu
        request = UcpRequest(
            kind="send", payload_bytes=payload_bytes, upper_callback=upper_callback
        )
        tracer = self.node.env.tracer
        tspan = tracer.begin(
            "hlp", "ucp_isend", track=cpu.name,
            request=request.request_id, bytes=payload_bytes,
        )
        start = yield from self.profiler.begin("ucp_isend")
        yield from cpu.execute("ucp_isend")
        status = yield from ep.uct_ep.am_short(payload_bytes)
        if status == UCS_OK:
            # Inline send: the PIO copy consumed the user buffer, so the
            # request is complete immediately (UCX returns NULL from
            # ucp_tag_send_nb in this case).  The TxQ slot stays
            # occupied until a CQE retires it, but that is transport
            # state, not request state.
            request.completed = True
        else:
            self.busy_posts_encountered += 1
            self.pending_sends.append((request, ep.uct_ep))
        yield from self.profiler.end("ucp_isend", start)
        tracer.end(tspan)
        return request

    def _on_send_cqe(self, cqe: Cqe) -> None:
        """UCT completion callback: retire in-flight *non-inline* sends.

        Inline sends complete at post time; only zcopy-style sends (the
        user buffer is pinned until the NIC has read it) wait for the
        CQE.  One CQE retires up to ``cqe.completes`` of them.

        An error CQE still retires requests (the TxQ accounting is
        identical) but marks the *signaled* one — the message the
        transport gave up on — as failed; its banked unsignaled
        predecessors were ACKed before the failure.
        """
        failed = cqe.status != "ok"
        if failed:
            self.transport_errors += 1
        retire = min(cqe.completes, len(self.inflight_sends))
        for index in range(retire):
            request = self.inflight_sends.popleft()
            request.completed = True
            if failed and index == retire - 1:
                request.status = "error"
                request.error = cqe.error

    # -- receive path --------------------------------------------------------------------
    def tag_recv_nb(
        self,
        payload_bytes: int,
        upper_callback: Callable[[UcpRequest], Any] | None = None,
    ) -> Generator:
        """``ucp_tag_recv_nb``: post a receive (generator).

        The paper treats receive initiation as overlapped (§6), so no
        cost table entry is charged; matching is FIFO, with an
        unexpected-message queue for early arrivals.
        """
        request = UcpRequest(
            kind="recv", payload_bytes=payload_bytes, upper_callback=upper_callback
        )
        if self.unexpected:
            message = self.unexpected.popleft()
            yield from self._complete_recv(request, message)
        else:
            self.posted_recvs.append(request)
        return request

    def _on_am_message(self, message: Message) -> Generator:
        """UCT AM handler: run the UCP→MPICH callback chain (§5).

        Executed inside ``uct_worker_progress`` *before it returns*,
        exactly as the paper describes.
        """
        if not self.posted_recvs:
            self.unexpected.append(message)
            return None
        request = self.posted_recvs.popleft()
        yield from self._complete_recv(request, message)
        return None

    def _complete_recv(self, request: UcpRequest, message: Message) -> Generator:
        cpu = self.cpu
        tracer = self.node.env.tracer
        tspan = tracer.begin(
            "hlp", "ucp_recv_callback", track=cpu.name,
            msg=message.msg_id, request=request.request_id,
        )
        start = yield from self.profiler.begin("ucp_recv_callback")
        yield from cpu.execute("ucp_recv_callback")
        request.message = message
        request.completed = True
        self._recv_side_events += 1
        if request.upper_callback is not None:
            inner = yield from self.profiler.begin("mpich_recv_callback")
            with tracer.span(
                "hlp", "mpich_recv_callback", track=cpu.name, msg=message.msg_id
            ):
                yield from invoke_callback(request.upper_callback, request)
            yield from self.profiler.end("mpich_recv_callback", inner)
        yield from self.profiler.end("ucp_recv_callback", start)
        tracer.end(tspan)
        return None

    # -- progress ------------------------------------------------------------------------
    def worker_progress(self) -> Generator:
        """``ucp_worker_progress``: one pass of the progress engine.

        Order matches UCX: re-post pended sends while resources allow,
        then progress the transport (which runs completion and receive
        callbacks inline).  Returns the number of transport events.
        """
        cpu = self.cpu
        env = self.node.env
        if env.tracer.enabled:
            env.tracer.counter("hlp", "worker_progress_calls")
        start = yield from self.profiler.begin("ucp_worker_progress")
        yield from cpu.execute("ucp_prog_body")
        repost_start = env.now
        while self.pending_sends:
            # Ask the pended send's own transport/rail for space — the
            # single-rail NIC path reads the same txq.has_space bit it
            # always did; shm never blocks.
            request, uct_ep = self.pending_sends[0]
            if not uct_ep.can_post(request.payload_bytes):
                break
            self.pending_sends.popleft()
            status = yield from uct_ep.am_short(request.payload_bytes)
            if status == UCS_OK:
                self.progress_llp_posts += 1
                request.completed = True
            else:  # pragma: no cover - has_space raced; retry later
                self.pending_sends.appendleft((request, uct_ep))
                break
        self.progress_llp_post_ns += env.now - repost_start
        events = yield from self.uct_worker.progress()
        yield from self.profiler.end("ucp_worker_progress", start)
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<UcpWorker node={self.node.name} inflight={len(self.inflight_sends)}"
            f" pending={len(self.pending_sends)}>"
        )


class UcpEndpoint:
    """A UCP endpoint bound to a remote worker."""

    def __init__(self, worker: UcpWorker, uct_ep: UctEndpoint) -> None:
        self.worker = worker
        self.uct_ep = uct_ep

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UcpEndpoint via {self.worker.node.name}>"
