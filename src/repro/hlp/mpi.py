"""MPICH-like MPI layer over UCP (§5).

``MPI_Isend`` decides how to execute the operation and calls
``ucp_tag_send_nb``; ``MPI_Wait`` runs the progress engine —
``ucp_worker_progress`` in a loop — until the request completes, with
MPICH's registered callback executed from inside the UCP callback chain.
``MPI_Waitall`` batch-progresses a whole window, re-posting pended busy
posts along the way (§6).
"""

from __future__ import annotations

import itertools
from collections.abc import Generator
from dataclasses import dataclass, field

from repro.llp.profiling import UcsProfiler
from repro.hlp.ucp import UcpEndpoint, UcpRequest, UcpWorker
from repro.node.node import Node

__all__ = ["MpiComm", "MpiRequest", "MpiStack"]

_mpi_request_ids = itertools.count(1)


@dataclass
class MpiRequest:
    """An ``MPI_Request``: wraps the underlying UCP request."""

    ucp_request: UcpRequest
    request_id: int = field(default_factory=lambda: next(_mpi_request_ids))

    @property
    def completed(self) -> bool:
        """Whether the operation has finished."""
        return self.ucp_request.completed

    @property
    def kind(self) -> str:
        """"send" or "recv"."""
        return self.ucp_request.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.completed else "pending"
        return f"<MpiRequest#{self.request_id} {self.kind} {state}>"


class MpiStack:
    """One MPI process: the full MPICH→UCP→UCT stack on a node."""

    def __init__(
        self,
        node: Node,
        profiler: UcsProfiler | None = None,
        signal_period: int = 64,
        core=None,
    ) -> None:
        self.node = node
        self.cpu = core if core is not None else node.cpu
        self.profiler = profiler or UcsProfiler(node.timer, enabled=False)
        self.ucp = UcpWorker(
            node, self.profiler, signal_period=signal_period, core=self.cpu
        )

    def connect(self, remote: "MpiStack") -> "MpiComm":
        """Build the communicator towards a remote process."""
        return MpiComm(self, self.ucp.create_ep(remote.ucp))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiStack node={self.node.name}>"


class MpiComm:
    """A point-to-point communicator between two MPI processes.

    All operations are generators executed on the owning node's CPU.
    """

    def __init__(self, stack: MpiStack, ep: UcpEndpoint) -> None:
        self.stack = stack
        self.ep = ep

    # -- initiation -----------------------------------------------------------------
    def isend(self, payload_bytes: int) -> Generator:
        """``MPI_Isend``: returns an :class:`MpiRequest`.

        Charges the MPICH initiation cost (datatype checks, interface
        selection — 24.37 ns) and then calls into UCP (2.19 ns) which
        executes the LLP post.
        """
        cpu = self.stack.cpu
        profiler = self.stack.profiler
        tracer = self.stack.node.env.tracer
        tspan = tracer.begin(
            "mpi", "mpi_isend", track=cpu.name, bytes=payload_bytes
        )
        start = yield from profiler.begin("mpi_isend")
        yield from cpu.execute("mpich_isend")
        ucp_request = yield from self.stack.ucp.tag_send_nb(self.ep, payload_bytes)
        yield from profiler.end("mpi_isend", start)
        tracer.end(tspan)
        return MpiRequest(ucp_request)

    def irecv(self, payload_bytes: int) -> Generator:
        """``MPI_Irecv``: post a receive.

        The paper assumes receive initiation overlaps the transfer (§6)
        and attributes no cost to it; the MPICH completion callback it
        registers (47.99 ns) is charged when the message lands.
        """
        cpu = self.stack.cpu

        def mpich_callback(_request: UcpRequest) -> Generator:
            yield from cpu.execute("mpich_recv_callback")

        ucp_request = yield from self.stack.ucp.tag_recv_nb(
            payload_bytes, upper_callback=mpich_callback
        )
        return MpiRequest(ucp_request)

    # -- progress -----------------------------------------------------------------------
    def wait(self, request: MpiRequest) -> Generator:
        """``MPI_Wait``: block until ``request`` completes.

        Structure per §5/§6: MPICH blocking-entry overhead, then a loop
        on ``ucp_worker_progress`` (inside which the UCP→MPICH callback
        chain runs when the operation completes), then the remaining
        MPICH work after a successful progress (36.89 ns).
        """
        cpu = self.stack.cpu
        profiler = self.stack.profiler
        tracer = self.stack.node.env.tracer
        tspan = tracer.begin(
            "mpi", "mpi_wait", track=cpu.name, request=request.request_id
        )
        start = yield from profiler.begin("mpi_wait")
        entry = yield from profiler.begin("mpich_wait_entry")
        yield from cpu.execute("mpich_wait_entry")
        yield from profiler.end("mpich_wait_entry", entry)
        while not request.completed:
            yield from self.stack.ucp.worker_progress()
        after = yield from profiler.begin("mpich_after_progress")
        yield from cpu.execute("mpich_after_progress")
        yield from profiler.end("mpich_after_progress", after)
        yield from profiler.end("mpi_wait", start)
        tracer.end(tspan)
        return None

    def waitall(self, requests: list[MpiRequest]) -> Generator:
        """``MPI_Waitall``: batch-progress a window of operations.

        Loops the progress engine until every request completes,
        charging the per-request finalisation work as requests retire.
        Busy-posted sends are re-posted by UCP from inside the progress
        loop (their LLP_post time lands here, the §6 caveat-1 effect).
        """
        cpu = self.stack.cpu
        profiler = self.stack.profiler
        tracer = self.stack.node.env.tracer
        tspan = tracer.begin(
            "mpi", "mpi_waitall", track=cpu.name, requests=len(requests)
        )
        start = yield from profiler.begin("mpi_waitall")
        remaining = [r for r in requests if not r.completed]
        # Already-completed requests still need their finalisation pass.
        for _ in range(len(requests) - len(remaining)):
            yield from cpu.execute("mpich_request_finalize")
        while remaining:
            yield from self.stack.ucp.worker_progress()
            still = []
            for request in remaining:
                if request.completed:
                    yield from cpu.execute("mpich_request_finalize")
                else:
                    still.append(request)
            remaining = still
        yield from profiler.end("mpi_waitall", start)
        tracer.end(tspan)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MpiComm on {self.stack.node.name}>"
