"""High-level protocols (§5): a UCP-like layer under an MPICH-like MPI.

The layering mirrors the paper's software stack: MPI (MPICH/CH4) calls
UCP (``ucp_tag_send_nb`` / ``ucp_worker_progress``), which drives the
UCT transport of :mod:`repro.llp`.  Completion flows *upward* through
registered callbacks executed before ``uct_worker_progress`` returns:
UCT → UCP callback → MPICH callback, exactly the §5 measurement
structure.

Key behaviours reproduced:

* unsignaled completions: the UCP iface requests a CQE only every
  c = 64 operations, amortising send-progress cost;
* busy-post pending: a send that hits a full TxQ is queued inside UCP
  and its LLP_post is re-executed during progress (§6 caveat 1);
* batch progress: ``MPI_Waitall`` loops the progress engine until every
  listed operation completes (§6 caveat 2).
"""

from repro.hlp.mpi import MpiComm, MpiRequest, MpiStack
from repro.hlp.ucp import UcpEndpoint, UcpRequest, UcpWorker

__all__ = [
    "MpiComm",
    "MpiRequest",
    "MpiStack",
    "UcpEndpoint",
    "UcpRequest",
    "UcpWorker",
]
