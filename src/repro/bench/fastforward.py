"""Analytic fast-forward for the ``put_bw`` steady state (kernel tier 3).

The ``put_bw`` sender is a closed loop: post → (busy-spin on progress
when the TxQ is full) → occasional poll → measurement update.  On a
fault-free, uncontended, untraced testbed every hardware leg of a post
is a fixed left-to-right float fold (PCIe TLP latency, compiled fabric
route, RC-to-MEM), so the whole run can be advanced by a scalar state
machine instead of the event calendar — the §6 composition models,
executed directly.

The model is *replay-exact by construction and by verification*:

* construction — it performs the identical floating-point additions, in
  the identical order, that the event-driven stack performs (including
  per-draw jitter sampling from the same named RNG stream), so every
  timestamp it produces is bit-identical to full replay;
* verification — before trusting the model for a large run, the driver
  replays two small *probe* runs through the real event kernel and
  compares them against the model **bitwise**: measured window, busy
  posts, every per-message stamp journal, per-segment CPU accounts and
  the final virtual time.  Any mismatch (or any credit stall observed
  in a probe) falls back to full replay of the real run.

What a fast-forwarded run does *not* synthesize: PCIe-analyzer records
(the trace is empty; the arrival timestamps the benchmark derives from
it are computed directly), target-side mailbox contents, wire
``peak_inflight`` statistics, and per-event journal entries.  In the
exact-mean regime the model also skips the per-draw RNG round-trip a
replay performs (the draws are bit-identical either way), so the
sender core's generator may end in a different state.  Event counts
are credited as a replay-equivalent *estimate* calibrated from the
probes — virtual times are exact, the ``events_fast_forwarded`` tally
is an extrapolation.

Fallback triggers (any one forces full replay): a fault plan armed, a
tracer installed, profiling regions active, finite PCIe or network
bandwidth, multi-rail transport, TLP corruption, a non-compiled fabric
route, degenerate benchmark parameters, or a probe mismatch.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.cpu.core import SegmentAccount
from repro.nic.descriptor import Message, MessageOp
from repro.sim.rng import JitterModel, RandomStreams
from repro.transport.nicrail import PcieNicTransport

__all__ = [
    "PutBwTrajectory",
    "RouteFolds",
    "apply_trajectory",
    "plan_put_bw",
    "simulate_put_bw",
    "trajectory_matches_replay",
]

#: The CPU segments a put_bw sender executes, in steady-state order.
#: Used to cross-check the model's accounting against probe replays.
SENDER_SEGMENTS = (
    "md_setup",
    "barrier_md",
    "barrier_dbc",
    "pio_copy_64b",
    "llp_post_misc",
    "busy_post",
    "llp_prog",
    "llp_prog_empty",
    "measurement_update",
)


@dataclass(frozen=True)
class RouteFolds:
    """Pre-extracted constants for one eligible put_bw configuration.

    Every field is a term of the left-to-right float folds the event
    kernel would perform; the model adds them in the same order.
    """

    chunks: int
    pio_mean_ns: float
    rc_mmio_ns: float
    l_pio_ns: float
    tx_processing_ns: float
    fwd_deltas: tuple[float, ...]
    ack_turnaround_ns: float
    rev_deltas: tuple[float, ...]
    l_cqe_ns: float
    rc_mem_cqe_ns: float
    rx_processing_ns: float
    l_payload_ns: float
    rc_mem_payload_ns: float
    txq_depth: int
    #: Compiled fabric routes (kept for endpoint-stat mirroring).
    fwd_route: Any
    rev_route: Any


@dataclass
class PutBwTrajectory:
    """Everything a fast-forwarded put_bw run needs to synthesize."""

    t_start: float
    t_end: float
    final_ns: float
    busy_posts: int
    total_posts: int
    progress_calls: int
    empty_progress_calls: int
    cq_consumed: int
    #: Stamp journals for the posts whose analyzer records survive the
    #: warmup clear (what ``PutBwResult.messages`` is built from).
    survivor_stamps: list[dict[str, float]]
    #: Survivor arrival timestamps within the measured window.
    measured_arrivals: np.ndarray
    #: Per-segment (count, total_ns) as the sender CPU would account.
    segment_totals: dict[str, tuple[int, float]]
    #: Total CPU busy time, accumulated in global draw order (the
    #: same float-addition sequence ``CpuCore.busy_ns`` performs).
    busy_ns: float


def _compiled_route(fabric: Any, src: str, dst: str) -> Any:
    try:
        return fabric._compiled[(src, dst)]
    except KeyError:
        return fabric._compile_path(src, dst)


def plan_put_bw(tb: Any, iface: Any, ep: Any, payload_bytes: int) -> RouteFolds | None:
    """Extract the fold constants, or None when the run must replay.

    ``tb`` must be a freshly built testbed that has executed nothing:
    fast-forward synthesizes its terminal state from t=0.
    """
    config = tb.config
    env = tb.env
    if config.faults is not None or tb.faults.enabled:
        return None
    if env.tracer.enabled:
        return None
    if env.now != 0.0 or env.events_executed or env.events_fast_forwarded:
        return None
    node1, node2 = tb.initiator, tb.target
    if len(node1.rails) != 1 or len(node2.rails) != 1 or len(iface.qps) != 1:
        return None
    if not isinstance(ep.transport, PcieNicTransport):
        return None
    if iface.qp.moderation.signal_period != 1:
        return None
    if iface.completion_callbacks or iface.am_handler is not None:
        return None
    if node1.nic.reliability is not None or node2.nic.reliability is not None:
        return None
    pcie = config.pcie
    if not math.isinf(pcie.bandwidth_bytes_per_ns) or pcie.tlp_corruption_prob > 0:
        return None
    nic_cfg = config.nic
    if not 0 <= payload_bytes <= nic_cfg.inline_max_bytes:
        return None  # put_short would raise; let the replay path do it
    fwd = _compiled_route(tb.fabric, node1.nic.name, node2.nic.name)
    rev = _compiled_route(tb.fabric, node2.nic.name, node1.nic.name)
    if fwd is None or rev is None:
        return None
    chunks = math.ceil(
        (nic_cfg.wqe_header_bytes + payload_bytes) / nic_cfg.pio_chunk_bytes
    )
    return RouteFolds(
        chunks=chunks,
        pio_mean_ns=chunks * config.costs.pio_copy_64b,
        rc_mmio_ns=pcie.rc_mmio_processing_ns,
        l_pio_ns=pcie.tlp_latency(chunks * nic_cfg.pio_chunk_bytes),
        tx_processing_ns=nic_cfg.tx_processing_ns,
        fwd_deltas=tuple(fwd.deltas),
        ack_turnaround_ns=tb.fabric.config.ack_turnaround_ns,
        rev_deltas=tuple(rev.deltas),
        l_cqe_ns=pcie.tlp_latency(nic_cfg.cqe_bytes),
        rc_mem_cqe_ns=pcie.rc_to_mem(nic_cfg.cqe_bytes),
        rx_processing_ns=nic_cfg.rx_processing_ns,
        l_payload_ns=pcie.tlp_latency(payload_bytes),
        rc_mem_payload_ns=pcie.rc_to_mem(payload_bytes),
        txq_depth=nic_cfg.txq_depth,
        fwd_route=fwd,
        rev_route=rev,
    )


def simulate_put_bw(
    folds: RouteFolds,
    config: Any,
    n_messages: int,
    warmup: int,
    poll_interval: int,
    jitter: JitterModel | None = None,
    rng: np.random.Generator | None = None,
    cpu: Any = None,
) -> PutBwTrajectory | None:
    """Run the scalar put_bw model; None means "regime not modelled".

    ``jitter``/``rng`` default to the sender-core stream a fresh testbed
    of ``config`` would use (``node1.cpu0``), so a validation pass draws
    the exact noise sequence a replay would.  Pass ``cpu`` (the fresh
    testbed's sender core) on the synthesis pass to mirror its
    per-segment accounts and ``busy_ns``.

    The only unmodelled regime is a warmup clear that leaves analyzer
    records from posts *before* the final warmup post alive — possible
    when the post's misc/jitter tail exceeds the PCIe latency — which
    returns None (full replay handles it).
    """
    if warmup < 1 or n_messages < 1 or poll_interval < 1:
        return None
    if jitter is None:
        jitter = config.effective_jitter()
    if rng is None:
        rng = RandomStreams(config.seed).child("node1").get("cpu0")
    # In the exact-mean regime every sample equals its mean bit-for-bit
    # (unit body gain, no tails), so the RNG round-trip is skippable.
    exact = (
        jitter.cv == 0.0 and jitter.medium_prob == 0.0 and jitter.outlier_prob == 0.0
    )
    sample = jitter.sample
    costs = config.costs
    means = {
        "md_setup": costs.md_setup,
        "barrier_md": costs.barrier_md,
        "barrier_dbc": costs.barrier_dbc,
        "pio_copy_64b": folds.pio_mean_ns,
        "llp_post_misc": costs.llp_post_misc,
        "busy_post": costs.busy_post,
        "llp_prog": costs.llp_prog,
        "llp_prog_empty": costs.llp_prog_empty,
        "measurement_update": costs.measurement_update,
    }
    counts = {segment: 0 for segment in means}
    totals = {segment: 0.0 for segment in means}
    record_samples = cpu is not None and cpu.record_samples
    busy_acc = 0.0

    def draw(segment: str) -> float:
        nonlocal busy_acc
        mean = means[segment]
        duration = mean if exact else sample(mean, rng)
        counts[segment] += 1
        totals[segment] += duration
        busy_acc += duration
        if record_samples:
            cpu.accounts.setdefault(segment, SegmentAccount()).samples.append(
                duration
            )
        return duration

    depth = folds.txq_depth
    rc_mmio = folds.rc_mmio_ns
    total = warmup + n_messages
    t = 0.0
    txq_occ = 0
    pending: deque[float] = deque()
    busy = 0
    progress_calls = 0
    empty_calls = 0
    consumed = 0
    arrivals_all: list[float] = []
    stamps: list[dict[str, float]] = []
    t_clear = 0.0

    def progress() -> int:
        nonlocal t, txq_occ, progress_calls, empty_calls, consumed
        progress_calls += 1
        events = 0
        if pending and pending[0] <= t:
            pending.popleft()
            consumed += 1
            t += draw("llp_prog")
            txq_occ -= 1
            events = 1
        if events == 0:
            empty_calls += 1
            t += draw("llp_prog_empty")
        return events

    posted = 0
    while posted < total:
        while True:
            if txq_occ < depth:
                # Successful post: the §4.1 cost sequence, then the
                # hardware folds the event kernel would schedule.
                txq_occ += 1
                posted_at = t
                t += draw("md_setup")
                t += draw("barrier_md")
                t += draw("barrier_dbc")
                t += draw("pio_copy_64b")
                p = t
                a = p
                if rc_mmio > 0:
                    a = a + rc_mmio
                a = a + folds.l_pio_ns
                wire_out = a + folds.tx_processing_ns
                w = wire_out
                for delta in folds.fwd_deltas:
                    w = w + delta
                x = w + folds.ack_turnaround_ns
                for delta in folds.rev_deltas:
                    x = x + delta
                v = (x + folds.l_cqe_ns) + folds.rc_mem_cqe_ns
                pv = (
                    (w + folds.rx_processing_ns) + folds.l_payload_ns
                ) + folds.rc_mem_payload_ns
                arrivals_all.append(a)
                pending.append(v)
                if posted >= warmup - 1:
                    stamps.append(
                        {
                            "posted": posted_at,
                            "pio_written": p,
                            "nic_arrival": a,
                            "wire_out": wire_out,
                            "target_nic": w,
                            "payload_visible": pv,
                            "ack_rx": x,
                            "cqe_visible": v,
                        }
                    )
                t += draw("llp_post_misc")
                break
            busy += 1
            t += draw("busy_post")
            while progress() == 0:
                pass
        posted += 1
        if posted == warmup:
            t_clear = t
            if posted >= 2 and arrivals_all[posted - 2] > t_clear:
                # A pre-warmup arrival would outlive the analyzer clear:
                # the survivor set is no longer a suffix starting at the
                # final warmup post.  Rare (a jittered misc tail beyond
                # the PCIe latency); not worth modelling.
                return None
        if posted % poll_interval == 0:
            progress()
        t += draw("measurement_update")
    t_end = t
    while txq_occ > 0:
        progress()

    # The analyzer clear wipes records timestamped <= t_clear (a record
    # exactly at the clear instant was appended before the clear ran).
    survivors = [s for s in stamps if s["nic_arrival"] > t_clear]
    measured = np.array(
        [s["nic_arrival"] for s in survivors if s["nic_arrival"] <= t_end]
    )
    if cpu is not None:
        for segment in SENDER_SEGMENTS:
            if counts[segment] == 0:
                continue
            account = cpu.accounts.setdefault(segment, SegmentAccount())
            account.count += counts[segment]
            account.total_ns += totals[segment]
        cpu.busy_ns += busy_acc
    return PutBwTrajectory(
        t_start=t_clear,
        t_end=t_end,
        final_ns=t,
        busy_posts=busy,
        total_posts=total,
        progress_calls=progress_calls,
        empty_progress_calls=empty_calls,
        cq_consumed=consumed,
        survivor_stamps=survivors,
        measured_arrivals=measured,
        segment_totals={s: (counts[s], totals[s]) for s in SENDER_SEGMENTS},
        busy_ns=busy_acc,
    )


def trajectory_matches_replay(traj: PutBwTrajectory, result: Any) -> bool:
    """Bitwise comparison of a model trajectory against a replayed run.

    Checks the measured window, busy posts, inter-arrival deltas, every
    per-message stamp journal, the sender core's per-segment accounts
    and the final virtual time.  Also rejects any run that saw a PCIe
    credit stall (a regime the model does not cover).
    """
    tb = result.testbed
    for link in (tb.initiator.link, tb.target.link):
        for direction in link.tlps_delivered:
            if link.credit_stalls(direction):
                return False
    if result.total_ns != traj.t_end - traj.t_start:
        return False
    if result.busy_posts != traj.busy_posts:
        return False
    if tb.env.now != traj.final_ns:
        return False
    expected_deltas = (
        np.diff(traj.measured_arrivals)
        if traj.measured_arrivals.size >= 2
        else np.array([])
    )
    if not np.array_equal(result.observed_injection_overheads_ns, expected_deltas):
        return False
    if len(result.messages) != len(traj.survivor_stamps):
        return False
    for message, stamps in zip(result.messages, traj.survivor_stamps):
        if message.timestamps != stamps:
            return False
    cpu = tb.initiator.cpu
    for segment in SENDER_SEGMENTS:
        count, total_ns = traj.segment_totals[segment]
        account = cpu.accounts.get(segment)
        if account is None:
            if count:
                return False
            continue
        if account.count != count or account.total_ns != total_ns:
            return False
    if cpu.busy_ns != traj.busy_ns:
        return False
    return True


def apply_trajectory(
    tb: Any,
    worker: Any,
    iface: Any,
    ep: Any,
    traj: PutBwTrajectory,
    folds: RouteFolds,
    payload_bytes: int,
    skipped_events: int,
) -> list[Message]:
    """Install a validated trajectory onto a fresh testbed.

    Jumps the clock, mirrors every counter the event-driven run would
    have advanced (queues, NICs, RCs, links, fabric endpoints, worker
    stats), and returns the synthesized survivor messages.  CPU
    accounts were already mirrored by the synthesis model pass.
    """
    from repro.pcie.link import Direction

    total = traj.total_posts
    qp = iface.qp
    messages = [
        Message(
            op=MessageOp.PUT,
            payload_bytes=payload_bytes,
            inline=True,
            pio=True,
            signaled=True,
            recv_target=ep.remote_recv_target,
            dst_nic=ep.remote_nic_for(0),
            qp=qp,
            timestamps=dict(stamps),
        )
        for stamps in traj.survivor_stamps
    ]
    iface.busy_posts += traj.busy_posts
    iface.successful_posts += total
    if messages:
        iface.last_message = messages[-1]
    worker.progress_calls += traj.progress_calls
    worker.empty_progress_calls += traj.empty_progress_calls
    qp.txq.total_posts += total
    qp.cq.consumed += traj.cq_consumed
    qp.cqes_written += total
    ep.rail_cursor += total
    initiator, target = tb.initiator, tb.target
    initiator.nic.messages_transmitted += total
    target.nic.messages_received += total
    initiator.rc.mmio_writes += total
    initiator.rc.dma_writes += total  # CQE writes into the sender CQ
    target.rc.dma_writes += total  # payload writes into target memory
    initiator.link.tlps_delivered[Direction.DOWNSTREAM] += total
    initiator.link.tlps_delivered[Direction.UPSTREAM] += total
    target.link.tlps_delivered[Direction.UPSTREAM] += total
    tb.fabric.frames_delivered += total
    tb.fabric.acks_delivered += total
    for route in (folds.fwd_route, folds.rev_route):
        for wire in route.wires:
            wire.frames_carried += total
        for switch in route.switches:
            switch.frames_forwarded += total
    tb.env.fast_forward(to=traj.final_ns, skipped_events=skipped_events)
    return messages
