"""A uni-directional bandwidth benchmark (osu_bw / put_bw large-message).

The paper's §1 dichotomy in benchmark form: windows of RDMA writes of a
given size are kept in flight and the achieved rate is measured.  Small
messages are CPU-rate-bound (the paper's whole story); large messages
saturate the slowest serialisation stage (wire or PCIe).

Requires a finite-bandwidth configuration to be meaningful at large
sizes; with the paper's latency-only constants everything pipelines
infinitely and the curve has no knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llp.uct import UCS_OK, UctWorker
from repro.network.config import NetworkConfig
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed
from repro.pcie.config import PcieConfig

__all__ = ["BandwidthResult", "bandwidth_workload", "realistic_bandwidth_config", "run_uct_bandwidth"]


def realistic_bandwidth_config(
    pcie_bytes_per_ns: float = 15.75,   # PCIe Gen3 x16
    network_bytes_per_ns: float = 12.5,  # 100 Gb/s EDR
    deterministic: bool = True,
) -> SystemConfig:
    """The paper testbed with finite serialisation bandwidths."""
    base = SystemConfig.paper_testbed(deterministic=deterministic)
    return base.evolve(
        pcie=PcieConfig(bandwidth_bytes_per_ns=pcie_bytes_per_ns),
        network=NetworkConfig(bandwidth_bytes_per_ns=network_bytes_per_ns),
    )


@dataclass
class BandwidthResult:
    """Outcome of one bandwidth run at one message size."""

    testbed: Testbed
    message_bytes: int
    n_measured: int
    total_ns: float

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """Achieved uni-directional bandwidth (B/ns == GB/s)."""
        if not self.total_ns:
            return 0.0
        return self.message_bytes * self.n_measured / self.total_ns

    @property
    def message_rate_per_s(self) -> float:
        """Messages per second at this size."""
        return self.n_measured / (self.total_ns * 1e-9) if self.total_ns else 0.0


def run_uct_bandwidth(
    message_bytes: int,
    config: SystemConfig | None = None,
    n_messages: int = 128,
    warmup: int = 32,
    window: int = 16,
) -> BandwidthResult:
    """Measure achieved bandwidth with ``window`` messages in flight.

    Small messages go PIO+inline (put_short); larger ones take the
    DoorBell+DMA path (put_zcopy).  The sender keeps up to ``window``
    operations outstanding, progressing for completions as needed —
    the osu_bw structure.
    """
    if message_bytes < 1:
        raise ValueError(f"message_bytes must be >= 1, got {message_bytes}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    tb = Testbed(config or realistic_bandwidth_config())
    env = tb.env
    worker = UctWorker(tb.initiator)
    iface = worker.create_iface(signal_period=1)
    remote = UctWorker(tb.target).create_iface()
    ep = iface.create_ep(remote)
    inline_limit = tb.config.nic.inline_max_bytes
    marks: dict[str, float] = {}

    def post():
        if message_bytes <= inline_limit:
            return ep.put_short(message_bytes)
        return ep.put_zcopy(message_bytes)

    def sender():
        total = warmup + n_messages
        posted = 0
        completed_mark = 0
        while posted < total:
            # Keep at most `window` operations outstanding.
            while iface.qp.txq.occupied >= window:
                yield from worker.progress()
            while True:
                status = yield from post()
                if status == UCS_OK:
                    break
                while (yield from worker.progress()) == 0:
                    pass
            posted += 1
            if posted == warmup:
                # Start timing once the pipeline is primed; the window
                # is drained again at the end so the measured interval
                # covers exactly n_messages' worth of data.
                while iface.qp.txq.occupied > 0:
                    yield from worker.progress()
                marks["t_start"] = env.now
                completed_mark = posted
        while iface.qp.txq.occupied > 0:
            yield from worker.progress()
        marks["t_end"] = env.now
        marks["measured"] = posted - completed_mark

    env.run(until=env.process(sender(), name="uct_bw"))
    return BandwidthResult(
        testbed=tb,
        message_bytes=message_bytes,
        n_measured=int(marks["measured"]),
        total_ns=marks["t_end"] - marks["t_start"],
    )


def bandwidth_workload(
    config: SystemConfig,
    message_bytes: int = 8,
    n_messages: int = 128,
    warmup: int = 32,
    window: int = 16,
) -> dict[str, float]:
    """Campaign workload: :func:`run_uct_bandwidth` as scalar measurements."""
    result = run_uct_bandwidth(
        message_bytes,
        config=config,
        n_messages=n_messages,
        warmup=warmup,
        window=window,
    )
    return {
        "bandwidth_bytes_per_ns": result.bandwidth_bytes_per_ns,
        "message_rate_per_s": result.message_rate_per_s,
        "message_bytes": result.message_bytes,
        "n_measured": result.n_measured,
    }
