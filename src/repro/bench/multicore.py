"""Many-core fine-grained injection — the paper's motivating scenario.

The introduction argues that at the limits of strong scaling "each core
participates in communication ... independently of the others", sending
small messages.  The paper measures a single core and explicitly leaves
the credit-exhausted regime unmodelled ("a single core does not exhaust
the credits for MWr transactions").

This benchmark runs N independent put_bw senders, one per core, each
with its own queue pair, sharing the node's one PCIe link.  It exposes
both regimes: near-linear aggregate message-rate scaling while posted
credits suffice, then the flow-control wall when the link's credit
return cannot keep up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.llp.uct import UCS_OK, UctWorker
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed
from repro.pcie.link import Direction

__all__ = ["MulticoreResult", "multicore_workload", "run_multicore_put_bw"]


@dataclass
class MulticoreResult:
    """Outcome of one multi-core injection run."""

    testbed: Testbed
    n_cores: int
    n_messages_per_core: int
    total_ns: float
    #: Downstream posted-credit stalls during the measured window.
    credit_stalls: int
    #: PIO posts observed arriving at the NIC inside the window.
    nic_arrivals: int = 0
    per_core_message_counts: list[int] = field(repr=False, default_factory=list)

    @property
    def aggregate_rate_per_s(self) -> float:
        """Total messages per second across all cores."""
        total = self.n_cores * self.n_messages_per_core
        return total / (self.total_ns * 1e-9) if self.total_ns else 0.0

    @property
    def per_core_rate_per_s(self) -> float:
        """Mean per-core message rate."""
        return self.aggregate_rate_per_s / self.n_cores if self.n_cores else 0.0

    @property
    def mean_injection_overhead_ns(self) -> float:
        """Per-core mean time between that core's posts."""
        return 1e9 / self.per_core_rate_per_s if self.per_core_rate_per_s else 0.0

    @property
    def nic_rate_per_s(self) -> float:
        """Aggregate arrival rate *at the NIC* — the injection the
        fabric actually sees.  Falls below the CPU-side rate once the
        posted-credit pool saturates and TLPs queue at the RC."""
        return self.nic_arrivals / (self.total_ns * 1e-9) if self.total_ns else 0.0


def run_multicore_put_bw(
    n_cores: int,
    config: SystemConfig | None = None,
    n_messages_per_core: int = 300,
    warmup_per_core: int = 128,
    payload_bytes: int = 8,
    poll_interval: int = 16,
) -> MulticoreResult:
    """Run N concurrent put_bw senders, one per core, on node 1.

    Each sender owns a queue pair (its own TxQ and CQ) and never
    synchronises with the others — the paper's fine-grained model.  The
    shared resource is the PCIe link and its posted-credit pool.
    """
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    cfg = config or SystemConfig.paper_testbed()
    tb = Testbed(cfg)
    node1 = tb.initiator
    while len(node1.cores) < n_cores:
        node1.add_core()

    target_worker = UctWorker(tb.target)
    target_iface = target_worker.create_iface()

    total_per_core = warmup_per_core + n_messages_per_core
    done_warmup = {"count": 0}
    marks: dict[str, float] = {}
    finish_times: list[float] = []
    counts: list[int] = [0] * n_cores
    stall_mark = {"start": 0}
    env = tb.env

    def sender(core_index: int):
        core = node1.cores[core_index]
        worker = UctWorker(node1, core=core)
        iface = worker.create_iface(signal_period=1)
        ep = iface.create_ep(target_iface)
        posted = 0
        while posted < total_per_core:
            while True:
                status = yield from ep.put_short(payload_bytes)
                if status == UCS_OK:
                    break
                while (yield from worker.progress()) == 0:
                    pass
            posted += 1
            if posted == warmup_per_core:
                done_warmup["count"] += 1
                if done_warmup["count"] == n_cores:
                    # All cores warmed up: the measured window begins.
                    marks["t_start"] = env.now
                    tb.analyzer.clear()
                    stall_mark["start"] = node1.link.credit_stalls(
                        Direction.DOWNSTREAM
                    )
            if posted % poll_interval == 0:
                yield from worker.progress()
            yield from core.execute("measurement_update")
            counts[core_index] = posted
        finish_times.append(env.now)
        # Drain so the run ends cleanly.
        while iface.qp.txq.occupied > 0:
            yield from worker.progress()

    processes = [
        env.process(sender(index), name=f"mc_put_bw.core{index}")
        for index in range(n_cores)
    ]
    env.run(until=env.all_of(processes))
    marks["t_end"] = float(np.max(finish_times))

    nic_arrivals = sum(
        1
        for r in tb.analyzer.tlps(Direction.DOWNSTREAM)
        if r.purpose == "pio_post" and r.timestamp_ns <= marks["t_end"]
    )
    return MulticoreResult(
        testbed=tb,
        n_cores=n_cores,
        n_messages_per_core=n_messages_per_core,
        total_ns=marks["t_end"] - marks["t_start"],
        credit_stalls=node1.link.credit_stalls(Direction.DOWNSTREAM)
        - stall_mark["start"],
        nic_arrivals=nic_arrivals,
        per_core_message_counts=counts,
    )


def multicore_workload(
    config: SystemConfig,
    n_cores: int = 1,
    n_messages_per_core: int = 300,
    warmup_per_core: int = 128,
    payload_bytes: int = 8,
    poll_interval: int = 16,
) -> dict[str, float]:
    """Campaign workload: :func:`run_multicore_put_bw` as scalar measurements."""
    result = run_multicore_put_bw(
        n_cores,
        config=config,
        n_messages_per_core=n_messages_per_core,
        warmup_per_core=warmup_per_core,
        payload_bytes=payload_bytes,
        poll_interval=poll_interval,
    )
    return {
        "aggregate_rate_per_s": result.aggregate_rate_per_s,
        "per_core_rate_per_s": result.per_core_rate_per_s,
        "mean_injection_overhead_ns": result.mean_injection_overhead_ns,
        "nic_rate_per_s": result.nic_rate_per_s,
        "credit_stalls": result.credit_stalls,
        "n_cores": result.n_cores,
    }
