"""OSU micro-benchmark equivalents, run over the full MPI stack (§6).

* Message rate: windows of ``MPI_Isend`` closed by ``MPI_Waitall``,
  with the per-window send-receive sync removed (the paper's footnote:
  "We remove the send-receive sync after every window of posts for a
  clear analysis").  The inverse of the message rate is the observed
  overall injection overhead.
* Point-to-point latency: MPI_Irecv / MPI_Isend / MPI_Wait ping-pong,
  reported as round-trip / 2 — the observed end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hlp.mpi import MpiStack
from repro.llp.profiling import UcsProfiler
from repro.nic.descriptor import Message
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed
from repro.pcie.link import Direction

__all__ = [
    "OsuLatencyResult",
    "OsuMessageRateResult",
    "OsuMultiPairResult",
    "osu_latency_workload",
    "osu_message_rate_workload",
    "run_osu_latency",
    "run_osu_message_rate",
    "run_osu_multi_pair_message_rate",
]


@dataclass
class OsuMessageRateResult:
    """Outcome of the OSU message-rate run."""

    testbed: Testbed
    profiler: UcsProfiler
    n_measured: int
    total_ns: float
    #: Cumulative MPI_Isend-phase time (Post measurements).
    isend_phase_ns: float
    #: Cumulative MPI_Waitall time.
    waitall_ns: float
    #: LLP_post time executed inside progress on behalf of busy posts
    #: (the §6 caveat-1 deduction).
    waitall_llp_post_ns: float
    #: Busy posts encountered during initiation.
    busy_posts: int
    observed_injection_overheads_ns: np.ndarray = field(repr=False)

    @property
    def message_rate_per_s(self) -> float:
        """Messages per second over the measured window."""
        return self.n_measured / (self.total_ns * 1e-9) if self.total_ns else 0.0

    @property
    def cpu_side_injection_overhead_ns(self) -> float:
        """Inverse message rate: the paper's observed overall injection
        overhead (263.91 ns on the real testbed)."""
        return self.total_ns / self.n_measured if self.n_measured else 0.0

    @property
    def mean_injection_overhead_ns(self) -> float:
        """NIC-observed mean inter-arrival delta from the PCIe trace."""
        return float(self.observed_injection_overheads_ns.mean())

    @property
    def post_prog_ns_per_op(self) -> float:
        """The paper's Post_prog: waitall time per op, minus the busy
        posts' re-executed LLP_posts (§6 accounting)."""
        if not self.n_measured:
            return 0.0
        return (self.waitall_ns - self.waitall_llp_post_ns) / self.n_measured


@dataclass
class OsuLatencyResult:
    """Outcome of the OSU point-to-point latency run."""

    testbed: Testbed
    profiler: UcsProfiler
    iterations: int
    total_ns: float
    pings: list[Message]

    @property
    def observed_latency_ns(self) -> float:
        """Half the mean round trip: the observed end-to-end latency
        (1336 ns on the paper's testbed)."""
        return self.total_ns / (2 * self.iterations) if self.iterations else 0.0


def run_osu_message_rate(
    testbed: Testbed | None = None,
    config: SystemConfig | None = None,
    windows: int = 40,
    window_size: int = 64,
    warmup_windows: int = 8,
    payload_bytes: int = 8,
    signal_period: int = 64,
    profile_regions: frozenset[str] | set[str] | None = frozenset(),
) -> OsuMessageRateResult:
    """Run the OSU message-rate test (sync-free variant, §6)."""
    tb = testbed or Testbed(config or SystemConfig.paper_testbed())
    env = tb.env
    node1 = tb.initiator
    profiler = UcsProfiler(node1.timer, enabled=True)
    profiler.enable_only(profile_regions)

    sender_stack = MpiStack(node1, profiler, signal_period=signal_period)
    recver_stack = MpiStack(tb.target, signal_period=signal_period)
    comm = sender_stack.connect(recver_stack)
    rcomm = recver_stack.connect(sender_stack)

    total_messages = (warmup_windows + windows) * window_size
    marks: dict[str, float] = {}
    phase = {"isend_ns": 0.0, "waitall_ns": 0.0, "llp_post_ns0": 0.0, "busy0": 0}

    def sender():
        ucp = sender_stack.ucp
        for w in range(warmup_windows + windows):
            if w == warmup_windows:
                tb.analyzer.clear()
                profiler.reset()
                marks["t_start"] = env.now
                phase["isend_ns"] = 0.0
                phase["waitall_ns"] = 0.0
                phase["llp_post_ns0"] = ucp.progress_llp_post_ns
                phase["busy0"] = ucp.busy_posts_encountered
            t0 = env.now
            requests = []
            for _ in range(window_size):
                request = yield from comm.isend(payload_bytes)
                requests.append(request)
            t1 = env.now
            yield from comm.waitall(requests)
            t2 = env.now
            phase["isend_ns"] += t1 - t0
            phase["waitall_ns"] += t2 - t1
        marks["t_end"] = env.now

    def receiver():
        # Window sync is removed: the receiver just posts receives and
        # progresses; its pace never gates the sender.
        for _ in range(warmup_windows + windows):
            requests = []
            for _ in range(window_size):
                request = yield from rcomm.irecv(payload_bytes)
                requests.append(request)
            yield from rcomm.waitall(requests)

    env.process(receiver(), name="osu_mr.receiver")
    env.run(until=env.process(sender(), name="osu_mr.sender"))

    arrivals = np.array(
        [
            r.timestamp_ns
            for r in tb.analyzer.tlps(Direction.DOWNSTREAM)
            if r.purpose == "pio_post" and r.timestamp_ns <= marks["t_end"]
        ]
    )
    deltas = np.diff(arrivals) if arrivals.size >= 2 else np.array([])
    ucp = sender_stack.ucp
    return OsuMessageRateResult(
        testbed=tb,
        profiler=profiler,
        n_measured=windows * window_size,
        total_ns=marks["t_end"] - marks["t_start"],
        isend_phase_ns=phase["isend_ns"],
        waitall_ns=phase["waitall_ns"],
        waitall_llp_post_ns=ucp.progress_llp_post_ns - phase["llp_post_ns0"],
        busy_posts=ucp.busy_posts_encountered - phase["busy0"],
        observed_injection_overheads_ns=deltas,
    )


def run_osu_latency(
    testbed: Testbed | None = None,
    config: SystemConfig | None = None,
    iterations: int = 300,
    warmup: int = 30,
    payload_bytes: int = 8,
    signal_period: int = 64,
    profile_regions: frozenset[str] | set[str] | None = frozenset(),
) -> OsuLatencyResult:
    """Run the OSU point-to-point latency test over MPI (§6)."""
    tb = testbed or Testbed(config or SystemConfig.paper_testbed())
    env = tb.env
    node1, node2 = tb.initiator, tb.target
    profiler = UcsProfiler(node1.timer, enabled=True)
    profiler.enable_only(profile_regions)

    stack1 = MpiStack(node1, profiler, signal_period=signal_period)
    stack2 = MpiStack(node2, signal_period=signal_period)
    comm1 = stack1.connect(stack2)
    comm2 = stack2.connect(stack1)

    total = warmup + iterations
    marks: dict[str, float] = {}
    pings: list[Message] = []

    def initiator():
        for i in range(total):
            if i == warmup:
                tb.analyzer.clear()
                profiler.reset()
                marks["t_start"] = env.now
            recv_req = yield from comm1.irecv(payload_bytes)
            yield from comm1.isend(payload_bytes)
            if stack1.ucp.iface.last_message is not None:
                pings.append(stack1.ucp.iface.last_message)
            yield from comm1.wait(recv_req)
        marks["t_end"] = env.now

    def responder():
        for _ in range(total):
            recv_req = yield from comm2.irecv(payload_bytes)
            yield from comm2.wait(recv_req)
            yield from comm2.isend(payload_bytes)

    env.process(responder(), name="osu_lat.responder")
    env.run(until=env.process(initiator(), name="osu_lat.initiator"))

    return OsuLatencyResult(
        testbed=tb,
        profiler=profiler,
        iterations=iterations,
        total_ns=marks["t_end"] - marks["t_start"],
        pings=pings[warmup:],
    )


@dataclass
class OsuMultiPairResult:
    """Outcome of the OSU multi-pair message-rate run."""

    testbed: Testbed
    pairs: int
    n_measured_per_pair: int
    total_ns: float

    @property
    def aggregate_rate_per_s(self) -> float:
        """Total messages per second across all pairs."""
        total = self.pairs * self.n_measured_per_pair
        return total / (self.total_ns * 1e-9) if self.total_ns else 0.0

    @property
    def per_pair_rate_per_s(self) -> float:
        """Mean rate of one pair."""
        return self.aggregate_rate_per_s / self.pairs if self.pairs else 0.0


def run_osu_multi_pair_message_rate(
    pairs: int,
    testbed: Testbed | None = None,
    config: SystemConfig | None = None,
    windows: int = 20,
    window_size: int = 64,
    warmup_windows: int = 6,
    payload_bytes: int = 8,
    signal_period: int = 64,
) -> OsuMultiPairResult:
    """OSU ``osu_mbw_mr``-style multi-pair message rate.

    One full MPI stack per core on each node — the paper's §1
    fine-grained model lifted to the MPI level.  Each pair runs the
    window/waitall loop independently; the figure of merit is the
    aggregate message rate.
    """
    if pairs < 1:
        raise ValueError(f"pairs must be >= 1, got {pairs}")
    tb = testbed or Testbed(config or SystemConfig.paper_testbed())
    env = tb.env
    for node in (tb.initiator, tb.target):
        while len(node.cores) < pairs:
            node.add_core()

    from repro.hlp.mpi import MpiStack as _MpiStack

    marks: dict[str, float] = {}
    ready = {"count": 0}
    finish: list[float] = []

    def sender(pair_index: int):
        stack = _MpiStack(
            tb.initiator,
            signal_period=signal_period,
            core=tb.initiator.cores[pair_index],
        )
        remote = _MpiStack(
            tb.target,
            signal_period=signal_period,
            core=tb.target.cores[pair_index],
        )
        comm = stack.connect(remote)
        for window in range(warmup_windows + windows):
            if window == warmup_windows:
                ready["count"] += 1
                if ready["count"] == pairs:
                    marks["t_start"] = env.now
            requests = []
            for _ in range(window_size):
                request = yield from comm.isend(payload_bytes)
                requests.append(request)
            yield from comm.waitall(requests)
        finish.append(env.now)

    processes = [
        env.process(sender(index), name=f"osu_mbw.pair{index}")
        for index in range(pairs)
    ]
    env.run(until=env.all_of(processes))
    marks["t_end"] = max(finish)
    return OsuMultiPairResult(
        testbed=tb,
        pairs=pairs,
        n_measured_per_pair=windows * window_size,
        total_ns=marks["t_end"] - marks["t_start"],
    )


def osu_message_rate_workload(
    config: SystemConfig,
    windows: int = 40,
    window_size: int = 64,
    warmup_windows: int = 8,
    payload_bytes: int = 8,
    signal_period: int = 64,
) -> dict[str, float]:
    """Campaign workload: :func:`run_osu_message_rate` as scalar measurements."""
    result = run_osu_message_rate(
        config=config,
        windows=windows,
        window_size=window_size,
        warmup_windows=warmup_windows,
        payload_bytes=payload_bytes,
        signal_period=signal_period,
    )
    return {
        "message_rate_per_s": result.message_rate_per_s,
        "cpu_side_injection_overhead_ns": result.cpu_side_injection_overhead_ns,
        "mean_injection_overhead_ns": result.mean_injection_overhead_ns,
        "post_prog_ns_per_op": result.post_prog_ns_per_op,
        "busy_posts": result.busy_posts,
        "n_measured": result.n_measured,
    }


def osu_latency_workload(
    config: SystemConfig,
    iterations: int = 300,
    warmup: int = 30,
    payload_bytes: int = 8,
    signal_period: int = 64,
) -> dict[str, float]:
    """Campaign workload: :func:`run_osu_latency` as scalar measurements."""
    result = run_osu_latency(
        config=config,
        iterations=iterations,
        warmup=warmup,
        payload_bytes=payload_bytes,
        signal_period=signal_period,
    )
    return {
        "observed_latency_ns": result.observed_latency_ns,
        "round_trip_ns": result.total_ns / result.iterations,
        "iterations": result.iterations,
    }
