"""UCX perftest equivalents: ``put_bw`` and ``am_lat`` (§4).

Both run at the raw UCT level with a single thread, 8-byte messages,
every message signaled — exactly the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.fastforward import (
    apply_trajectory,
    plan_put_bw,
    simulate_put_bw,
    trajectory_matches_replay,
)
from repro.llp.profiling import UcsProfiler
from repro.llp.uct import UCS_OK, UctWorker
from repro.nic.descriptor import Message
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed
from repro.pcie.link import Direction

__all__ = [
    "AmLatResult",
    "PutBwResult",
    "am_lat_workload",
    "put_bw_workload",
    "run_am_lat",
    "run_put_bw",
]


@dataclass
class PutBwResult:
    """Outcome of one ``put_bw`` (injection-rate) run.

    ``observed_injection_overheads_ns`` are the NIC-side inter-arrival
    deltas from the PCIe analyzer trace — the paper's Figure 7 data.
    """

    testbed: Testbed
    profiler: UcsProfiler
    messages: list[Message]
    total_ns: float
    n_measured: int
    busy_posts: int
    observed_injection_overheads_ns: np.ndarray = field(repr=False)

    @property
    def mean_injection_overhead_ns(self) -> float:
        """Mean observed injection overhead (NIC view)."""
        return float(self.observed_injection_overheads_ns.mean())

    @property
    def median_injection_overhead_ns(self) -> float:
        """Median observed injection overhead (Figure 7 annotation)."""
        return float(np.median(self.observed_injection_overheads_ns))

    @property
    def message_rate_per_s(self) -> float:
        """Software-side message rate (messages per second)."""
        return self.n_measured / (self.total_ns * 1e-9) if self.total_ns else 0.0

    @property
    def cpu_side_injection_overhead_ns(self) -> float:
        """Inverse software message rate: mean CPU time per message."""
        return self.total_ns / self.n_measured if self.n_measured else 0.0


@dataclass
class AmLatResult:
    """Outcome of one ``am_lat`` (ping-pong latency) run."""

    testbed: Testbed
    profiler: UcsProfiler
    pings: list[Message]
    pongs: list[Message]
    total_ns: float
    iterations: int

    @property
    def observed_latency_ns(self) -> float:
        """Half the mean round-trip, as the benchmark reports (§4.3)."""
        return self.total_ns / (2 * self.iterations) if self.iterations else 0.0


def run_put_bw(
    testbed: Testbed | None = None,
    config: SystemConfig | None = None,
    n_messages: int = 2000,
    warmup: int = 256,
    payload_bytes: int = 8,
    poll_interval: int = 16,
    profile_regions: frozenset[str] | set[str] | None = frozenset(),
    fast_forward: bool | str = "auto",
) -> PutBwResult:
    """Run the RDMA-write injection-rate benchmark (§4.2).

    The benchmark posts continuously: every message is signaled, the
    benchmark polls one completion every ``poll_interval`` posts, and a
    busy post triggers progress-until-space — which, once the TxQ depth
    is exhausted, makes the steady state "after every successful
    LLP_post, there occurs a busy post".

    Parameters
    ----------
    testbed / config:
        Provide a prepared testbed, or a config to build one from.
    n_messages:
        Measured messages (post-warmup).
    warmup:
        Posts issued (and then excluded) before measurement starts —
        enough to fill the TxQ and reach steady state.
    profile_regions:
        UCS regions to measure during the run.  The default (empty set)
        measures nothing, matching the paper's *observed*-overhead runs;
        pass e.g. ``{"llp_post"}`` for methodology runs.  ``None``
        measures every region simultaneously (discouraged: nesting
        inflates outer regions, which is why the paper never does it).
    fast_forward:
        ``"auto"`` (default) replaces long eligible runs with the
        analytic steady-state model of :mod:`repro.bench.fastforward`,
        after validating it bitwise against two short replayed probes;
        short runs, prepared testbeds and every ineligible regime
        (faults, tracer, profiling, finite bandwidth, ...) replay in
        full.  ``True`` forces the model whenever eligible (probes
        still gate it); ``False`` always replays.  Fast-forwarded
        results carry no PCIe-analyzer records — pass ``False`` when
        the raw trace matters.
    """
    if testbed is None and fast_forward:
        result = _fast_forward_put_bw(
            config or SystemConfig.paper_testbed(),
            n_messages=n_messages,
            warmup=warmup,
            payload_bytes=payload_bytes,
            poll_interval=poll_interval,
            profile_regions=profile_regions,
            force=fast_forward is True,
        )
        if result is not None:
            return result
    tb = testbed or Testbed(config or SystemConfig.paper_testbed())
    env = tb.env
    node1 = tb.initiator
    profiler = UcsProfiler(node1.timer, enabled=True)
    profiler.enable_only(profile_regions)

    worker = UctWorker(node1, profiler)
    iface = worker.create_iface(signal_period=1)
    target_worker = UctWorker(tb.target)
    target_iface = target_worker.create_iface()
    ep = iface.create_ep(target_iface)

    measured: list[Message] = []
    marks: dict[str, float] = {}

    def sender():
        total = warmup + n_messages
        posted = 0
        while posted < total:
            while True:
                status = yield from ep.put_short(payload_bytes)
                if status == UCS_OK:
                    break
                # Busy post: progress until a completion retires a slot.
                while (yield from worker.progress()) == 0:
                    pass
            posted += 1
            if posted == warmup:
                # Steady state reached: start measuring from here.
                tb.analyzer.clear()
                profiler.reset()
                marks["t_start"] = env.now
            if posted % poll_interval == 0:
                yield from worker.progress()
            mu = yield from profiler.begin("measurement_update")
            yield from node1.cpu.execute("measurement_update")
            yield from profiler.end("measurement_update", mu)
        marks["t_end"] = env.now
        # Drain outstanding completions so the run ends cleanly.
        while iface.qp.txq.occupied > 0:
            yield from worker.progress()

    busy_before = iface.busy_posts
    env.run(until=env.process(sender(), name="put_bw"))

    # NIC-observed injection overhead: deltas of downstream PIO-post
    # arrival timestamps at the analyzer (Figure 6's post-processing).
    arrivals = np.array(
        [
            r.timestamp_ns
            for r in tb.analyzer.tlps(Direction.DOWNSTREAM)
            if r.purpose == "pio_post" and r.timestamp_ns <= marks["t_end"]
        ]
    )
    deltas = np.diff(arrivals) if arrivals.size >= 2 else np.array([])
    measured = [
        r.packet.message
        for r in tb.analyzer.tlps(Direction.DOWNSTREAM)
        if r.purpose == "pio_post"
    ]
    return PutBwResult(
        testbed=tb,
        profiler=profiler,
        messages=measured,
        total_ns=marks["t_end"] - marks["t_start"],
        n_measured=n_messages,
        busy_posts=iface.busy_posts - busy_before,
        observed_injection_overheads_ns=deltas,
    )


def _fast_forward_put_bw(
    config: SystemConfig,
    n_messages: int,
    warmup: int,
    payload_bytes: int,
    poll_interval: int,
    profile_regions: frozenset[str] | set[str] | None,
    force: bool,
) -> PutBwResult | None:
    """Attempt the analytic fast-forward; None means "replay instead".

    Two short probe runs replay through the real event kernel and must
    match the model bitwise (measured window, busy posts, per-message
    stamp journals, CPU accounts, final virtual time, zero credit
    stalls) before the model's terminal state is installed on a fresh
    testbed.  The probes also calibrate the skipped-event credit: the
    event count is linear in the message count in steady state, so two
    probe sizes pin the per-message slope (the credited total is a
    replay-equivalent estimate; the exactness guarantee is on virtual
    times, not event counts).
    """
    if profile_regions is None or len(profile_regions) != 0:
        return None  # profiling reads the virtual timer: replay
    if warmup < 1 or n_messages < 1 or poll_interval < 1:
        return None
    # Probe sizes: multiples of poll_interval (so the poll cadence
    # divides both) spanning at least a few TxQ drain periods.
    delta = 2 * poll_interval
    n1 = max(delta, -(-32 // delta) * delta)
    n2 = n1 + delta
    if not force and n_messages < max(1000, 4 * (warmup + n2)):
        return None  # too short for the probes to pay for themselves
    tb = Testbed(config)
    if tb.initiator.cpu.record_samples:
        return None  # per-draw sample journals are a replay artefact
    profiler = UcsProfiler(tb.initiator.timer, enabled=True)
    profiler.enable_only(profile_regions)
    worker = UctWorker(tb.initiator, profiler)
    iface = worker.create_iface(signal_period=1)
    target_worker = UctWorker(tb.target)
    target_iface = target_worker.create_iface()
    ep = iface.create_ep(target_iface)
    del target_worker, target_iface
    folds = plan_put_bw(tb, iface, ep, payload_bytes)
    if folds is None:
        return None
    effective_events = []
    for n_probe in (n1, n2):
        traj = simulate_put_bw(folds, config, n_probe, warmup, poll_interval)
        if traj is None:
            return None
        replay = run_put_bw(
            config=config,
            n_messages=n_probe,
            warmup=warmup,
            payload_bytes=payload_bytes,
            poll_interval=poll_interval,
            profile_regions=profile_regions,
            fast_forward=False,
        )
        if not trajectory_matches_replay(traj, replay):
            return None
        env = replay.testbed.env
        effective_events.append(env.events_executed + env.events_fast_forwarded)
    per_message = (effective_events[1] - effective_events[0]) / (n2 - n1)
    skipped = int(round(effective_events[1] + per_message * (n_messages - n2)))
    # The synthesis pass draws from the testbed's own sender-core
    # stream and mirrors its accounts; it cannot diverge from the
    # validated probes because the warmup prefix (where the model can
    # bail) is identical for every message count.
    traj = simulate_put_bw(
        folds,
        config,
        n_messages,
        warmup,
        poll_interval,
        jitter=tb.initiator.cpu.jitter,
        rng=tb.initiator.cpu.rng,
        cpu=tb.initiator.cpu,
    )
    if traj is None:  # pragma: no cover - warmup prefix already probed
        return None
    messages = apply_trajectory(
        tb, worker, iface, ep, traj, folds, payload_bytes, skipped
    )
    deltas = (
        np.diff(traj.measured_arrivals)
        if traj.measured_arrivals.size >= 2
        else np.array([])
    )
    return PutBwResult(
        testbed=tb,
        profiler=profiler,
        messages=messages,
        total_ns=traj.t_end - traj.t_start,
        n_measured=n_messages,
        busy_posts=traj.busy_posts,
        observed_injection_overheads_ns=deltas,
    )


def put_bw_workload(
    config: SystemConfig,
    n_messages: int = 2000,
    warmup: int = 256,
    payload_bytes: int = 8,
    poll_interval: int = 16,
) -> dict[str, float]:
    """Campaign workload: :func:`run_put_bw` reduced to scalar measurements."""
    result = run_put_bw(
        config=config,
        n_messages=n_messages,
        warmup=warmup,
        payload_bytes=payload_bytes,
        poll_interval=poll_interval,
    )
    return {
        "mean_injection_overhead_ns": result.mean_injection_overhead_ns,
        "median_injection_overhead_ns": result.median_injection_overhead_ns,
        "cpu_side_injection_overhead_ns": result.cpu_side_injection_overhead_ns,
        "message_rate_per_s": result.message_rate_per_s,
        "busy_posts": result.busy_posts,
        "n_measured": result.n_measured,
    }


def run_am_lat(
    testbed: Testbed | None = None,
    config: SystemConfig | None = None,
    iterations: int = 500,
    warmup: int = 50,
    payload_bytes: int = 8,
    profile_regions: frozenset[str] | set[str] | None = frozenset(),
    completion_mode: str = "polling",
) -> AmLatResult:
    """Run the send-receive ping-pong latency benchmark (§4.3).

    Node 1 sends a ping and spins on progress until the pong lands;
    node 2 mirrors it.  The benchmark reports round-trip / 2.  A
    measurement update runs on node 1 each iteration (overlapping the
    pong flight), exactly the artefact §4.3 deducts half of.

    ``completion_mode="interrupt"`` replaces the polling wait with the
    §2 interrupt notification on both sides — the latency-hostile
    alternative the paper dismisses, provided for the ablation.
    """
    if completion_mode not in ("polling", "interrupt"):
        raise ValueError(
            f"completion_mode must be 'polling' or 'interrupt', got {completion_mode!r}"
        )
    tb = testbed or Testbed(config or SystemConfig.paper_testbed())
    env = tb.env
    node1, node2 = tb.initiator, tb.target
    profiler = UcsProfiler(node1.timer, enabled=True)
    profiler.enable_only(profile_regions)

    worker1 = UctWorker(node1, profiler)
    iface1 = worker1.create_iface(signal_period=1)
    worker2 = UctWorker(node2)
    iface2 = worker2.create_iface(signal_period=1)
    ep1 = iface1.create_ep(iface2)
    ep2 = iface2.create_ep(iface1)

    pings: list[Message] = []
    pongs: list[Message] = []
    marks: dict[str, float] = {}
    state = {"pongs_seen": 0, "pings_seen": 0}

    def on_pong(message: Message) -> None:
        state["pongs_seen"] += 1
        pongs.append(message)

    def on_ping(message: Message) -> None:
        state["pings_seen"] += 1

    iface1.set_am_handler(on_pong)
    iface2.set_am_handler(on_ping)

    total = warmup + iterations

    def initiator():
        for i in range(total):
            if i == warmup:
                tb.analyzer.clear()
                profiler.reset()
                marks["t_start"] = env.now
            while True:
                status = yield from ep1.am_short(payload_bytes)
                if status == UCS_OK:
                    break
                while (yield from worker1.progress()) == 0:
                    pass
            pings.append(iface1.last_message)
            yield from node1.cpu.execute("measurement_update")
            target = i + 1
            if completion_mode == "interrupt":
                while state["pongs_seen"] < target:
                    yield from worker1.wait_am_interrupt(iface1)
            else:
                yield from worker1.progress_until(
                    lambda: state["pongs_seen"] >= target
                )
        marks["t_end"] = env.now

    def responder():
        for i in range(total):
            target = i + 1
            if completion_mode == "interrupt":
                while state["pings_seen"] < target:
                    yield from worker2.wait_am_interrupt(iface2)
            else:
                yield from worker2.progress_until(
                    lambda: state["pings_seen"] >= target
                )
            while True:
                status = yield from ep2.am_short(payload_bytes)
                if status == UCS_OK:
                    break
                while (yield from worker2.progress()) == 0:
                    pass

    env.process(responder(), name="am_lat.responder")
    env.run(until=env.process(initiator(), name="am_lat.initiator"))

    return AmLatResult(
        testbed=tb,
        profiler=profiler,
        pings=pings[warmup:],
        pongs=pongs[warmup:] if len(pongs) > warmup else pongs,
        total_ns=marks["t_end"] - marks["t_start"],
        iterations=iterations,
    )


def am_lat_workload(
    config: SystemConfig,
    iterations: int = 500,
    warmup: int = 50,
    payload_bytes: int = 8,
    completion_mode: str = "polling",
) -> dict[str, float]:
    """Campaign workload: :func:`run_am_lat` reduced to scalar measurements."""
    result = run_am_lat(
        config=config,
        iterations=iterations,
        warmup=warmup,
        payload_bytes=payload_bytes,
        completion_mode=completion_mode,
    )
    return {
        "observed_latency_ns": result.observed_latency_ns,
        "round_trip_ns": result.total_ns / result.iterations,
        "iterations": result.iterations,
    }
