"""Microbenchmarks: UCX-perftest and OSU equivalents, run in-simulator.

Each benchmark builds (or accepts) a :class:`~repro.node.testbed.Testbed`,
runs its workload as simulated processes, and returns a result object
bundling the software-visible measurements, the PCIe analyzer trace and
the ground-truth message journals.

* :func:`run_put_bw` — UCX ``put_bw``: single-threaded RDMA-write
  injection-rate test, one 8-byte message per post, poll every 16 posts
  (§4.2);
* :func:`run_am_lat` — UCX ``am_lat``: ping-pong send-receive latency,
  reported as round-trip / 2 (§4.3);
* :func:`run_osu_message_rate` — OSU message-rate test over MPI with
  windows of non-blocking sends and a closing MPI_Waitall, window sync
  removed as in §6;
* :func:`run_osu_latency` — OSU point-to-point MPI latency (§6).
"""

from repro.bench.bandwidth import (
    BandwidthResult,
    realistic_bandwidth_config,
    run_uct_bandwidth,
)
from repro.bench.multicore import MulticoreResult, run_multicore_put_bw
from repro.bench.osu import (
    OsuLatencyResult,
    OsuMessageRateResult,
    OsuMultiPairResult,
    run_osu_latency,
    run_osu_message_rate,
    run_osu_multi_pair_message_rate,
)
from repro.bench.perftest import AmLatResult, PutBwResult, run_am_lat, run_put_bw

__all__ = [
    "AmLatResult",
    "BandwidthResult",
    "MulticoreResult",
    "realistic_bandwidth_config",
    "run_multicore_put_bw",
    "run_uct_bandwidth",
    "OsuLatencyResult",
    "OsuMessageRateResult",
    "OsuMultiPairResult",
    "run_osu_multi_pair_message_rate",
    "PutBwResult",
    "run_am_lat",
    "run_osu_latency",
    "run_osu_message_rate",
    "run_put_bw",
]
