"""Node and testbed assembly.

A :class:`Node` wires one CPU core, Root Complex, PCIe link, host
memory and NIC together; a :class:`Testbed` builds the paper's §3
evaluation setup — two ThunderX2-like nodes over InfiniBand with a PCIe
analyzer just before node 1's NIC (Figure 3).
"""

from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.node.node import Node
from repro.node.testbed import Testbed

__all__ = ["Cluster", "Node", "SystemConfig", "Testbed"]
