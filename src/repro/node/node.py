"""One node: CPU + Root Complex + PCIe link(s) + host memory + NIC(s)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CpuCore
from repro.cpu.timer import VirtualTimer
from repro.faults.inject import FaultInjector
from repro.node.config import SystemConfig
from repro.nic.nic import Nic
from repro.pcie.link import PcieLink
from repro.pcie.root_complex import HostMemory, RootComplex
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

__all__ = ["Node", "Rail"]


@dataclass(frozen=True)
class Rail:
    """One PCIe/NIC rail: a private link + Root Complex + NIC.

    Rail 0 is the node's original stack (same objects as ``node.link``
    / ``node.rc`` / ``node.nic``); additional rails clone it with
    suffixed names and independent RNG streams.
    """

    link: PcieLink
    rc: RootComplex
    nic: Nic


class Node:
    """A complete host: the unit Figure 1 decomposes.

    Parameters
    ----------
    env:
        Shared simulation environment.
    config:
        System parameters (CPU costs, PCIe, NIC...).
    streams:
        Root random streams; the node scopes its own substreams.
    name:
        Node label, e.g. ``"node1"``.
    record_samples:
        Forwarded to the CPU core (keep per-segment duration samples).
    faults:
        The testbed-wide fault injector; ``None`` keeps every layer on
        its original zero-cost path.
    """

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        streams: RandomStreams,
        name: str,
        record_samples: bool = False,
        n_cores: int = 1,
        faults: FaultInjector | None = None,
    ) -> None:
        if n_cores < 1:
            raise ValueError(f"a node needs at least one core, got {n_cores}")
        self.env = env
        self.config = config
        self.name = name
        self._streams = streams.child(name)
        self._record_samples = record_samples
        scoped = self._streams
        jitter = config.effective_jitter()
        #: All cores on this node; the paper's single-threaded runs use
        #: ``cores[0]`` (aliased as :attr:`cpu`), the many-core intro
        #: scenario ("each core participates in communication") uses the
        #: rest.
        self.cores: list[CpuCore] = [
            CpuCore(
                env,
                config.costs,
                jitter,
                scoped.get(f"cpu{index}"),
                name=f"{name}.cpu{index}",
                record_samples=record_samples,
            )
            for index in range(n_cores)
        ]
        self.cpu = self.cores[0]
        overhead_mean, overhead_std = config.effective_timer_overhead()
        self.timer = VirtualTimer(
            env,
            scoped.get("timer"),
            measurement_overhead_ns=overhead_mean,
            overhead_std_ns=overhead_std,
        )
        self.memory = HostMemory(env, name=f"{name}.mem")
        self.link = PcieLink(
            env, config.pcie, name=f"{name}.pcie", rng=scoped.get("pcie"),
            faults=faults,
        )
        self.rc = RootComplex(env, self.link, config.pcie, self.memory, name=f"{name}.rc")
        self.nic = Nic(
            env, self.link, config.nic, self.memory, name=f"{name}.nic",
            faults=faults,
        )
        #: All PCIe/NIC rails. Rail 0 holds the objects above (so the
        #: single-rail default builds exactly the pre-rail node: same
        #: names, same RNG streams, same construction order); rails
        #: >= 1 clone the stack with an ``{index}`` name suffix and
        #: their own name-keyed RNG streams.
        self.rails: list[Rail] = [Rail(self.link, self.rc, self.nic)]
        for index in range(1, config.transport.rails):
            link = PcieLink(
                env, config.pcie, name=f"{name}.pcie{index}",
                rng=scoped.get(f"pcie{index}"), faults=faults,
            )
            rc = RootComplex(env, link, config.pcie, self.memory, name=f"{name}.rc{index}")
            nic = Nic(
                env, link, config.nic, self.memory, name=f"{name}.nic{index}",
                faults=faults,
            )
            self.rails.append(Rail(link, rc, nic))

    def add_core(self) -> CpuCore:
        """Bring one more core online (multi-core injection studies)."""
        index = len(self.cores)
        core = CpuCore(
            self.env,
            self.config.costs,
            self.config.effective_jitter(),
            self._streams.get(f"cpu{index}"),
            name=f"{self.name}.cpu{index}",
            record_samples=self._record_samples,
        )
        self.cores.append(core)
        return core

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name!r} cores={len(self.cores)}>"
