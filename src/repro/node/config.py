"""Top-level system configuration.

One :class:`SystemConfig` describes an entire two-node testbed: CPU
segment costs, PCIe fabric, NIC, interconnect and the noise model.  The
default instance reproduces the paper's ThunderX2 + ConnectX-4 +
InfiniBand system (Table 1); what-if scenarios are expressed as derived
configs via :meth:`SystemConfig.evolve`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.cpu.costs import SegmentCosts
from repro.cpu.memory import MemoryModel
from repro.faults.plan import FaultPlan
from repro.network.config import NetworkConfig
from repro.nic.config import NicConfig
from repro.pcie.config import PcieConfig
from repro.sim.hashing import stable_digest
from repro.sim.rng import JitterModel

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`~repro.node.testbed.Testbed`.

    Attributes
    ----------
    costs:
        Software segment durations (Table 1 ground truth).
    memory:
        Normal vs Device-GRE write costs.
    pcie / nic / network:
        Hardware substrate parameters.
    jitter:
        Noise model for CPU segment durations.
    timer_overhead_ns / timer_overhead_std_ns:
        UCS-profiling measurement overhead (§3: 49.69 ± 1.48 ns).
    seed:
        Root seed for all random streams.
    deterministic:
        When True every duration equals its mean — used by unit tests
        and by model-validation runs that must be exact.
    faults:
        Optional declarative fault plan (see :mod:`repro.faults`).
        ``None`` (default) installs nothing: no random stream is opened,
        no timer armed — runs are bit-identical to a build without the
        fault subsystem.
    """

    costs: SegmentCosts = field(default_factory=SegmentCosts)
    memory: MemoryModel = field(default_factory=MemoryModel)
    pcie: PcieConfig = field(default_factory=PcieConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    jitter: JitterModel = field(default_factory=JitterModel)
    timer_overhead_ns: float = 49.69
    timer_overhead_std_ns: float = 1.48
    seed: int = 2019
    deterministic: bool = False
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.timer_overhead_ns < 0 or self.timer_overhead_std_ns < 0:
            raise ValueError("timer overheads must be >= 0")

    @classmethod
    def paper_testbed(cls, seed: int = 2019, deterministic: bool = False) -> "SystemConfig":
        """The paper's §3 system: TX2 + ConnectX-4 + switched InfiniBand."""
        return cls(seed=seed, deterministic=deterministic)

    @classmethod
    def paper_testbed_direct(cls, seed: int = 2019, deterministic: bool = False) -> "SystemConfig":
        """Same system with the NICs cabled directly (no switch) —
        the configuration used for the Wire measurement in §4.3."""
        base = cls(seed=seed, deterministic=deterministic)
        return base.evolve(network=base.network.without_switch())

    def evolve(self, **overrides: Any) -> "SystemConfig":
        """A copy with top-level fields replaced (what-if scenarios)."""
        return dataclasses.replace(self, **overrides)

    def stable_hash(self) -> str:
        """A process-independent digest of the full nested configuration.

        Two configs hash equal iff every (init) field of every nested
        dataclass is equal; any :meth:`evolve` that changes a value
        changes the hash.  Used by the campaign layer's result cache.
        """
        return stable_digest(self)

    def effective_jitter(self) -> JitterModel:
        """The jitter model honouring the ``deterministic`` switch."""
        return JitterModel.deterministic() if self.deterministic else self.jitter

    def effective_timer_overhead(self) -> tuple[float, float]:
        """(mean, std) of the measurement overhead for this config."""
        if self.deterministic:
            return self.timer_overhead_ns, 0.0
        return self.timer_overhead_ns, self.timer_overhead_std_ns
