"""Top-level system configuration.

One :class:`SystemConfig` describes an entire two-node testbed: CPU
segment costs, PCIe fabric, NIC, interconnect and the noise model.  The
default instance reproduces the paper's ThunderX2 + ConnectX-4 +
InfiniBand system (Table 1); what-if scenarios are expressed as derived
configs via :meth:`SystemConfig.evolve`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.cpu.costs import SegmentCosts
from repro.cpu.memory import MemoryModel
from repro.faults.plan import FaultPlan
from repro.network.config import NetworkConfig
from repro.network.topology import TopologySpec
from repro.nic.config import NicConfig
from repro.pcie.config import PcieConfig
from repro.sim.hashing import stable_digest
from repro.sim.rng import JitterModel
from repro.transport.config import TransportConfig

__all__ = ["SystemConfig", "SystemConfigBuilder"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a :class:`~repro.node.testbed.Testbed`.

    Attributes
    ----------
    costs:
        Software segment durations (Table 1 ground truth).
    memory:
        Normal vs Device-GRE write costs.
    pcie / nic / network:
        Hardware substrate parameters.
    transport:
        Pluggable-transport selection (intra-node shm) and NIC rails;
        the default is the paper's single-rail system exactly.
    jitter:
        Noise model for CPU segment durations.
    timer_overhead_ns / timer_overhead_std_ns:
        UCS-profiling measurement overhead (§3: 49.69 ± 1.48 ns).
    seed:
        Root seed for all random streams.
    deterministic:
        When True every duration equals its mean — used by unit tests
        and by model-validation runs that must be exact.
    faults:
        Optional declarative fault plan (see :mod:`repro.faults`).
        ``None`` (default) installs nothing: no random stream is opened,
        no timer armed — runs are bit-identical to a build without the
        fault subsystem.
    """

    costs: SegmentCosts = field(default_factory=SegmentCosts)
    memory: MemoryModel = field(default_factory=MemoryModel)
    pcie: PcieConfig = field(default_factory=PcieConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    # Elided from the stable hash at its default so pre-transport
    # campaign caches (and golden scenario digests) stay valid.
    transport: TransportConfig = field(
        default_factory=TransportConfig,
        metadata={"elide_default_from_hash": True},
    )
    jitter: JitterModel = field(default_factory=JitterModel)
    timer_overhead_ns: float = 49.69
    timer_overhead_std_ns: float = 1.48
    seed: int = 2019
    deterministic: bool = False
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.timer_overhead_ns < 0 or self.timer_overhead_std_ns < 0:
            raise ValueError("timer overheads must be >= 0")

    @classmethod
    def paper_testbed(cls, seed: int = 2019, deterministic: bool = False) -> "SystemConfig":
        """The paper's §3 system: TX2 + ConnectX-4 + switched InfiniBand."""
        return cls(seed=seed, deterministic=deterministic)

    @classmethod
    def builder(cls, base: "SystemConfig | None" = None) -> "SystemConfigBuilder":
        """A fluent, keyword-validated builder (see :class:`SystemConfigBuilder`).

        Replaces reaching into the per-module config constructors::

            config = (SystemConfig.builder()
                      .nic(txq_depth=4)
                      .pcie(mem_write_ns=200.0)
                      .network(switch_latency_ns=50.0)
                      .deterministic()
                      .build())
        """
        return SystemConfigBuilder(base)

    @classmethod
    def paper_testbed_direct(cls, seed: int = 2019, deterministic: bool = False) -> "SystemConfig":
        """Same system with the NICs cabled directly (no switch) —
        the configuration used for the Wire measurement in §4.3."""
        base = cls(seed=seed, deterministic=deterministic)
        return base.evolve(network=base.network.without_switch())

    def evolve(self, **overrides: Any) -> "SystemConfig":
        """A copy with top-level fields replaced (what-if scenarios)."""
        return dataclasses.replace(self, **overrides)

    def stable_hash(self) -> str:
        """A process-independent digest of the full nested configuration.

        Two configs hash equal iff every (init) field of every nested
        dataclass is equal; any :meth:`evolve` that changes a value
        changes the hash.  Used by the campaign layer's result cache.
        """
        return stable_digest(self)

    def effective_jitter(self) -> JitterModel:
        """The jitter model honouring the ``deterministic`` switch."""
        return JitterModel.deterministic() if self.deterministic else self.jitter

    def effective_timer_overhead(self) -> tuple[float, float]:
        """(mean, std) of the measurement overhead for this config."""
        if self.deterministic:
            return self.timer_overhead_ns, 0.0
        return self.timer_overhead_ns, self.timer_overhead_std_ns


class SystemConfigBuilder:
    """Fluent construction of a :class:`SystemConfig`.

    One section method per nested config (``nic``, ``pcie``,
    ``network``, ``costs``, ``memory``, ``jitter``), each validating its
    keywords against the section dataclass's fields before applying
    them — an unknown keyword raises immediately with the valid names,
    instead of a ``dataclasses.replace`` traceback.  Section calls
    compose and may repeat; :meth:`build` returns the frozen config.

    Building with no calls reproduces the base config exactly —
    including :meth:`SystemConfig.stable_hash`, so cached campaign
    results keyed on the hash stay valid across the builder migration.
    """

    #: Builder section name → SystemConfig field.
    _SECTIONS = {
        "costs": "costs",
        "memory": "memory",
        "pcie": "pcie",
        "nic": "nic",
        "network": "network",
        "transport": "transport",
        "jitter": "jitter",
    }

    def __init__(self, base: SystemConfig | None = None) -> None:
        self._config = base if base is not None else SystemConfig.paper_testbed()

    def _replace_section(self, section: str, overrides: dict[str, Any]) -> "SystemConfigBuilder":
        current = getattr(self._config, section)
        valid = {f.name for f in dataclasses.fields(current) if f.init}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            raise TypeError(
                f"{type(current).__name__} has no parameter(s) "
                f"{', '.join(map(repr, unknown))}; valid: {', '.join(sorted(valid))}"
            )
        rebuilt = dataclasses.replace(current, **overrides)
        self._config = dataclasses.replace(self._config, **{section: rebuilt})
        return self

    def costs(self, **overrides: Any) -> "SystemConfigBuilder":
        """Override CPU segment costs (:class:`~repro.cpu.costs.SegmentCosts`)."""
        return self._replace_section("costs", overrides)

    def memory(self, **overrides: Any) -> "SystemConfigBuilder":
        """Override the memory model (:class:`~repro.cpu.memory.MemoryModel`)."""
        return self._replace_section("memory", overrides)

    def pcie(self, **overrides: Any) -> "SystemConfigBuilder":
        """Override PCIe parameters (:class:`~repro.pcie.config.PcieConfig`)."""
        return self._replace_section("pcie", overrides)

    def nic(self, **overrides: Any) -> "SystemConfigBuilder":
        """Override NIC parameters (:class:`~repro.nic.config.NicConfig`)."""
        return self._replace_section("nic", overrides)

    def network(self, **overrides: Any) -> "SystemConfigBuilder":
        """Override interconnect parameters (:class:`~repro.network.config.NetworkConfig`)."""
        return self._replace_section("network", overrides)

    def transport(self, **overrides: Any) -> "SystemConfigBuilder":
        """Override transport selection / rails (:class:`~repro.transport.config.TransportConfig`)."""
        return self._replace_section("transport", overrides)

    def jitter(self, **overrides: Any) -> "SystemConfigBuilder":
        """Override the noise model (:class:`~repro.sim.rng.JitterModel`)."""
        return self._replace_section("jitter", overrides)

    def topology(self, spec: "TopologySpec | str | None") -> "SystemConfigBuilder":
        """Set the interconnect topology (spec, ``"fat_tree:4"``-style
        string, or ``None`` for the point-to-point fabric)."""
        if isinstance(spec, str):
            spec = TopologySpec.parse(spec)
        return self._replace_section("network", {"topology": spec})

    def faults(self, plan: "FaultPlan | str | None") -> "SystemConfigBuilder":
        """Attach a fault plan (object or JSON file path; None clears)."""
        if isinstance(plan, str):
            plan = FaultPlan.load(plan)
        self._config = dataclasses.replace(self._config, faults=plan)
        return self

    def seed(self, seed: int) -> "SystemConfigBuilder":
        """Set the root random seed."""
        self._config = dataclasses.replace(self._config, seed=int(seed))
        return self

    def deterministic(self, enabled: bool = True) -> "SystemConfigBuilder":
        """Make every duration equal its mean (unit-test / model mode)."""
        self._config = dataclasses.replace(self._config, deterministic=enabled)
        return self

    def timer(self, overhead_ns: float | None = None, std_ns: float | None = None) -> "SystemConfigBuilder":
        """Override the UCS-profiling measurement overhead."""
        overrides: dict[str, Any] = {}
        if overhead_ns is not None:
            overrides["timer_overhead_ns"] = overhead_ns
        if std_ns is not None:
            overrides["timer_overhead_std_ns"] = std_ns
        if overrides:
            self._config = dataclasses.replace(self._config, **overrides)
        return self

    def evolve(self, **overrides: Any) -> "SystemConfigBuilder":
        """Replace top-level :class:`SystemConfig` fields directly."""
        self._config = dataclasses.replace(self._config, **overrides)
        return self

    def build(self) -> SystemConfig:
        """The frozen configuration."""
        return self._config

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SystemConfigBuilder {self._config.stable_hash()}>"

