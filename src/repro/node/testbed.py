"""The two-node evaluation setup of §3 (Figure 3).

Node 1 is the initiator; a passive PCIe analyzer sits just before its
NIC.  Both nodes share one simulation clock and one fabric.  The
testbed is the N=2 special case of :class:`~repro.node.cluster.Cluster`
— same construction order, same name-keyed random streams — so a
two-node cluster and a testbed are bit-identical simulations.
"""

from __future__ import annotations

from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.node.node import Node

__all__ = ["Testbed"]


class Testbed(Cluster):
    """Two nodes, one interconnect, one analyzer on node 1."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        config: SystemConfig | None = None,
        record_samples: bool = False,
        analyzer_enabled: bool = True,
    ) -> None:
        super().__init__(
            n_nodes=2,
            config=config,
            record_samples=record_samples,
            analyzer_enabled=analyzer_enabled,
            names=("node1", "node2"),
        )

    @property
    def node1(self) -> Node:
        """Node 1: the analyzer-tapped sender."""
        return self.nodes[0]

    @property
    def node2(self) -> Node:
        """Node 2: the receiver."""
        return self.nodes[1]

    @property
    def initiator(self) -> Node:
        """Node 1: the sender in all the paper's experiments."""
        return self.nodes[0]

    @property
    def target(self) -> Node:
        """Node 2: the receiver."""
        return self.nodes[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Testbed t={self.env.now:.0f}ns>"
