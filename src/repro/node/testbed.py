"""The two-node evaluation setup of §3 (Figure 3).

Node 1 is the initiator; a passive PCIe analyzer sits just before its
NIC.  Both nodes share one simulation clock and one fabric.
"""

from __future__ import annotations

from repro.faults.inject import FaultInjector
from repro.network.fabric import Fabric
from repro.node.config import SystemConfig
from repro.node.node import Node
from repro.pcie.analyzer import PcieAnalyzer
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

__all__ = ["Testbed"]


class Testbed:
    """Two nodes, one interconnect, one analyzer on node 1."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        config: SystemConfig | None = None,
        record_samples: bool = False,
        analyzer_enabled: bool = True,
    ) -> None:
        self.config = config or SystemConfig.paper_testbed()
        self.env = Environment()
        self.streams = RandomStreams(seed=self.config.seed)
        #: Plan-driven fault injection; inert (no sites) without a plan.
        self.faults = FaultInjector(self.config.faults, self.streams, self.env)
        self.node1 = Node(
            self.env, self.config, self.streams, "node1",
            record_samples=record_samples, faults=self.faults,
        )
        self.node2 = Node(
            self.env, self.config, self.streams, "node2",
            record_samples=record_samples, faults=self.faults,
        )
        self.fabric = Fabric(self.env, self.config.network, faults=self.faults)
        self.node1.nic.attach_fabric(self.fabric)
        self.node2.nic.attach_fabric(self.fabric)
        #: The Lecroy stand-in: a passive tap on node 1's PCIe link.
        self.analyzer = PcieAnalyzer(self.node1.link, capture=analyzer_enabled)

    @property
    def initiator(self) -> Node:
        """Node 1: the sender in all the paper's experiments."""
        return self.node1

    @property
    def target(self) -> Node:
        """Node 2: the receiver."""
        return self.node2

    def run(self, until=None):
        """Advance the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Testbed t={self.env.now:.0f}ns>"
