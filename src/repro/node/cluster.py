"""Multi-node cluster assembly (beyond the paper's two-node testbed).

A :class:`Cluster` is N nodes on one fabric with all-pairs paths —
the substrate for the multi-node collectives that UCP provides in the
real stack (§5 mentions them; the paper's evaluation never needs more
than two nodes, so this is an extension).
"""

from __future__ import annotations

from repro.faults.inject import FaultInjector
from repro.network.fabric import Fabric
from repro.node.config import SystemConfig
from repro.node.node import Node
from repro.pcie.analyzer import PcieAnalyzer
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

__all__ = ["Cluster"]


class Cluster:
    """N identical nodes sharing one clock and one interconnect.

    The analyzer taps node 0's link (the initiator position of the
    paper's Figure 3 generalised).
    """

    def __init__(
        self,
        n_nodes: int,
        config: SystemConfig | None = None,
        record_samples: bool = False,
        analyzer_enabled: bool = True,
    ) -> None:
        if n_nodes < 2:
            raise ValueError(f"a cluster needs at least two nodes, got {n_nodes}")
        self.config = config or SystemConfig.paper_testbed()
        self.env = Environment()
        self.streams = RandomStreams(seed=self.config.seed)
        #: Plan-driven fault injection; inert (no sites) without a plan.
        self.faults = FaultInjector(self.config.faults, self.streams, self.env)
        self.nodes: list[Node] = [
            Node(
                self.env,
                self.config,
                self.streams,
                f"node{index}",
                record_samples=record_samples,
                faults=self.faults,
            )
            for index in range(n_nodes)
        ]
        self.fabric = Fabric(self.env, self.config.network, faults=self.faults)
        for node in self.nodes:
            node.nic.attach_fabric(self.fabric)
        self.analyzer = PcieAnalyzer(self.nodes[0].link, capture=analyzer_enabled)

    def __len__(self) -> int:
        return len(self.nodes)

    def run(self, until=None):
        """Advance the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster nodes={len(self.nodes)} t={self.env.now:.0f}ns>"
