"""Multi-node cluster assembly (beyond the paper's two-node testbed).

A :class:`Cluster` is N nodes on one fabric — the substrate for the
multi-node collectives that UCP provides in the real stack (§5 mentions
them; the paper's evaluation never needs more than two nodes, so this
is an extension).  Without a topology in the config the fabric wires
all ordered pairs point-to-point; with
``config.network.topology`` set it builds the described switch graph
with shared, contended links.  The two-node
:class:`~repro.node.testbed.Testbed` is the N=2 special case of this
class, not a separate code path.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.faults.inject import FaultInjector
from repro.network.fabric import Fabric
from repro.node.config import SystemConfig
from repro.node.node import Node
from repro.pcie.analyzer import PcieAnalyzer
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

__all__ = ["Cluster"]


class Cluster:
    """N identical nodes sharing one clock and one interconnect.

    The analyzer taps rank 0's link (the initiator position of the
    paper's Figure 3 generalised).  Node names default to
    ``node0..node{N-1}``; random streams are keyed by name, so custom
    names change nothing but the labels.
    """

    def __init__(
        self,
        n_nodes: int | None = None,
        config: SystemConfig | None = None,
        record_samples: bool = False,
        analyzer_enabled: bool = True,
        names: Sequence[str] | None = None,
        processes_per_node: int = 1,
    ) -> None:
        if n_nodes is None:
            n_nodes = len(names) if names is not None else 2
        if names is None:
            names = [f"node{index}" for index in range(n_nodes)]
        names = list(names)
        if len(names) != n_nodes:
            raise ValueError(
                f"{n_nodes} nodes but {len(names)} names: {names}"
            )
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in {names}")
        if n_nodes < 2:
            raise ValueError(f"a cluster needs at least two nodes, got {n_nodes}")
        if processes_per_node < 1:
            raise ValueError(
                f"processes_per_node must be >= 1, got {processes_per_node}"
            )
        self.config = config or SystemConfig.paper_testbed()
        #: Ranks per node; rank r lives on node r // processes_per_node
        #: and is pinned to core r % processes_per_node.
        self.processes_per_node = processes_per_node
        self.env = Environment()
        self.streams = RandomStreams(seed=self.config.seed)
        #: Plan-driven fault injection; inert (no sites) without a plan.
        self.faults = FaultInjector(self.config.faults, self.streams, self.env)
        self.nodes: list[Node] = [
            Node(
                self.env,
                self.config,
                self.streams,
                name,
                record_samples=record_samples,
                n_cores=processes_per_node,
                faults=self.faults,
            )
            for name in names
        ]
        spec = self.config.network.topology
        #: The built interconnect graph, or None in point-to-point mode.
        #: Every rail's NIC is a host port; a node's rails sit adjacent
        #: in the host list (single-rail lists are unchanged).
        self.topology = (
            spec.build(
                [rail.nic.name for node in self.nodes for rail in node.rails]
            )
            if spec is not None
            else None
        )
        self.fabric = Fabric(
            self.env, self.config.network, faults=self.faults,
            topology=self.topology,
        )
        for node in self.nodes:
            for rail in node.rails:
                rail.nic.attach_fabric(self.fabric)
        self.analyzer = PcieAnalyzer(self.nodes[0].link, capture=analyzer_enabled)

    @property
    def rank_names(self) -> list[str]:
        """Node names in rank order (rank i == ``self.nodes[i]``)."""
        return [node.name for node in self.nodes]

    @property
    def n_ranks(self) -> int:
        """Total process count (nodes × processes_per_node)."""
        return len(self.nodes) * self.processes_per_node

    def node(self, rank: int) -> Node:
        """The node holding ``rank``."""
        return self.nodes[rank]

    def node_for_rank(self, rank: int) -> Node:
        """The node hosting process ``rank`` under block placement."""
        return self.nodes[rank // self.processes_per_node]

    def core_for_rank(self, rank: int):
        """The CPU core process ``rank`` is pinned to."""
        node = self.node_for_rank(rank)
        return node.cores[rank % self.processes_per_node]

    def __len__(self) -> int:
        return len(self.nodes)

    def run(self, until=None):
        """Advance the simulation (see :meth:`Environment.run`)."""
        return self.env.run(until=until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster nodes={len(self.nodes)} t={self.env.now:.0f}ns>"
