"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table1``
    Print the paper's Table 1 (component times).
``breakdown {fig4,fig8,fig10,fig11,fig12,fig13,fig14,fig15,fig16}``
    Print one breakdown figure.
``whatif --metric {injection,latency} --component NAME --reduction R``
    One what-if point, plus the full Figure 17 panels with ``--panels``.
``validate``
    Check the four analytical models against the paper's observations.
``campaign [--quick] [--seed N] [--replications N] [--jobs N] [--cache-dir DIR]``
    Run the full measurement methodology against the simulator and
    print the regenerated Table 1 + validation.  With ``--replications``
    the whole pipeline instead runs as a multi-seed campaign through
    :mod:`repro.campaign` — fanned across ``--jobs`` worker processes,
    with completed seeds cached under ``--cache-dir``.
``rank --metric {injection,latency} --reduction R``
    Rank all components by the overall speedup a given reduction buys.
``bench WORKLOAD [--sweep AXIS=V1,V2,...] [--seeds S1,S2,...]``
    Run one registered workload on the simulated testbed.  ``--sweep``
    turns the run into a declarative campaign (repeatable; axes may be
    dotted config paths like ``nic.txq_depth`` or workload parameters)
    and prints one structured RunRecord per point.
``trace WORKLOAD [--out trace.json] [--timeline N]``
    Run one workload with span tracing enabled, write the Chrome
    trace-event / Perfetto JSON to ``--out`` and print the per-layer
    summary plus — for latency workloads — the critical-path breakdown
    of the last traced message (see docs/tracing.md).
``faults [PLAN.json] [--workload NAME]``
    Without an argument: list the fault-injection sites, rule kinds and
    actions.  With a plan file: validate it and print its rules (exit 2
    with a message on schema errors); add ``--workload`` to also run
    one registered workload under the plan.  See docs/faults.md.
``analyze TRACE.json [--what ANALYSIS] [--msg-id N]``
    Analyse a recorded trace export offline.  ``--what`` selects
    ``latency-tolerance`` (per-component slack, the default),
    ``critical-path`` (the Fig-10 breakdown of one message) or
    ``recovery`` (fault/recovery event counts); unknown analyses exit 2
    with the registered list.  See docs/tracing.md.

Uniform run flags
-----------------
``bench``, ``campaign``, ``trace`` and ``faults`` accept the same run
conventions, spelled identically everywhere:

``--param K=V``
    Workload keyword argument (repeatable).  Dotted names address
    config fields instead: ``--param nic.txq_depth=4`` evolves the
    system config before the run.
``--faults PLAN.json``
    Run under a fault-injection plan; bench prints injection/recovery
    statistics after the measurement.
``--trace [OUT.json]``
    Record spans during the run and write the Chrome trace-event JSON
    (default ``trace.json``).  Campaign-backed sweeps instead attach
    per-point trace summaries to their RunRecords.
``--jobs N`` / ``--cache-dir DIR``
    Worker processes and the cross-run result cache for
    campaign-backed execution; single-run commands validate and
    ignore them.
``--seed N`` / ``--deterministic``
    Root random seed, and the jitter-free mode where every duration
    equals its configured mean.

Unknown workload names and invalid fault plans exit with code 2 and a
message listing the registered alternatives.  All commands accept
``--help``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.components import ComponentTimes
from repro.core.whatif import Metric, WhatIfAnalysis
from repro.node.config import SystemConfig
from repro.reporting import experiments as exp

__all__ = ["main"]

#: Paper-observed values for the ``validate`` command.
PAPER_OBSERVATIONS = {
    "llp_injection_overhead": 282.33,
    "llp_latency": 1190.25,
    "overall_injection_overhead": 263.91,
    "end_to_end_latency": 1336.0,
}

#: Registered trace analyses for ``analyze --what`` (and
#: :meth:`repro.api.Experiment.analyze`).
TRACE_ANALYSES = ("latency-tolerance", "critical-path", "recovery")

_BREAKDOWNS = {
    "fig4": exp.experiment_fig4,
    "fig8": exp.experiment_fig8,
    "fig10": exp.experiment_fig10,
    "fig11": exp.experiment_fig11,
    "fig12": exp.experiment_fig12,
    "fig13": exp.experiment_fig13,
    "fig14": exp.experiment_fig14,
    "fig15": exp.experiment_fig15,
    "fig16": exp.experiment_fig16,
}


def _add_uniform_flags(parser: argparse.ArgumentParser) -> None:
    """The run conventions shared by bench/campaign/trace/faults.

    One spelling everywhere — a flag learned on one subcommand works on
    the others (see the module docstring's "Uniform run flags").
    """
    parser.add_argument(
        "--param", action="append", default=[], metavar="K=V",
        help="workload keyword argument; dotted names "
             "(nic.txq_depth=4) override config fields; repeatable",
    )
    parser.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="fault-injection plan (JSON, see docs/faults.md)",
    )
    parser.add_argument(
        "--trace", nargs="?", const="trace.json", default=None,
        metavar="OUT.json", dest="trace_out",
        help="record spans; write Chrome trace-event JSON "
             "(default trace.json)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for campaign-backed runs",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory caching completed sweep points across runs",
    )
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument(
        "--deterministic", action="store_true",
        help="disable timing jitter (durations equal configured means)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Breaking Band (ICPP 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (paper component times)")

    breakdown = sub.add_parser("breakdown", help="print one breakdown figure")
    breakdown.add_argument("figure", choices=sorted(_BREAKDOWNS))

    whatif = sub.add_parser("whatif", help="what-if analysis (Figure 17)")
    whatif.add_argument(
        "--metric", choices=[m.value for m in Metric], default="latency"
    )
    whatif.add_argument("--component", help="component name from the panel line set")
    whatif.add_argument("--reduction", type=float, default=0.5,
                        help="fractional overhead reduction in [0, 1]")
    whatif.add_argument("--panels", action="store_true",
                        help="print all four Figure 17 panels")

    sub.add_parser("validate", help="models vs the paper's observations")
    sub.add_parser("insights", help="check the four §6 insights")

    rank = sub.add_parser(
        "rank", help="rank components by speedup from a given reduction"
    )
    rank.add_argument(
        "--metric", choices=[m.value for m in Metric], default="latency"
    )
    rank.add_argument("--reduction", type=float, default=0.5)

    campaign = sub.add_parser(
        "campaign", help="run the full measurement methodology in-simulator"
    )
    campaign.add_argument("--quick", action="store_true")
    campaign.add_argument(
        "--replications", type=int, default=0,
        help="run the pipeline as an N-seed replication campaign",
    )
    _add_uniform_flags(campaign)

    bench = sub.add_parser(
        "bench",
        help="run one micro-benchmark",
        epilog=(
            "examples: 'bench put_bw', 'bench allreduce --param n_nodes=64 "
            "--param topology=fat_tree:4', 'bench incast --param n_nodes=4 "
            "--param topology=torus:2x2 --param processes_per_node=2' "
            "(two ranks per node: same-node traffic rides the shm "
            "transport), 'bench put_bw --param transport.rails=2' "
            "(dual-rail NICs)"
        ),
    )
    bench.add_argument("workload")
    bench.add_argument(
        "--sweep", action="append", default=[], metavar="AXIS=V1,V2,...",
        help="sweep an axis (config path or workload param); repeatable",
    )
    bench.add_argument(
        "--seeds", default=None, metavar="S1,S2,...",
        help="comma-separated noise seeds (overrides --seed)",
    )
    _add_uniform_flags(bench)

    trace = sub.add_parser(
        "trace", help="run one workload with span tracing, export Perfetto JSON"
    )
    trace.add_argument("workload")
    trace.add_argument(
        "--out", default="trace.json",
        help="Chrome trace-event JSON output path (--trace OUT overrides)",
    )
    trace.add_argument(
        "--timeline", type=int, default=0, metavar="N",
        help="also print the first N rows of the plain-text timeline",
    )
    _add_uniform_flags(trace)

    serve = sub.add_parser(
        "serve",
        help="answer a what-if query batch (store -> surrogate -> simulation)",
        epilog=(
            "QUERIES.json is either a bare array of query objects "
            '({"workload": ..., "params": {...}}) or an object with '
            '"fit" (surrogate-fitting campaigns) and "queries" lists; '
            "see docs/serving.md and examples/serve_queries.json. "
            "Dotted --param entries override the base config; plain "
            "ones become default workload parameters for every query."
        ),
    )
    serve.add_argument(
        "queries", nargs="?", default=None, metavar="QUERIES.json",
        help="query batch to answer (omit with --gc)",
    )
    serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="content-addressed result store directory (shared with "
             "campaign --cache-dir)",
    )
    serve.add_argument(
        "--gc", action="store_true",
        help="garbage-collect the store instead of serving: evict every "
             "entry whose recorded code version no longer matches the "
             "running simulator, report count and bytes reclaimed",
    )
    serve.add_argument(
        "--out", default=None, metavar="ANSWERS.json",
        help="write answers + provenance + serve stats as JSON",
    )
    serve.add_argument(
        "--verify-fraction", type=float, default=0.1, dest="verify_fraction",
        help="fraction of surrogate answers re-simulated and audited "
             "(0 disables, 1 audits every answer)",
    )
    serve.add_argument(
        "--margin", type=float, default=0.05,
        help="max tolerated surrogate relative error before quarantine",
    )
    _add_uniform_flags(serve)

    analyze = sub.add_parser(
        "analyze",
        help="analyse a recorded trace export (latency tolerance, "
             "critical path, recovery)",
        epilog=(
            "examples: 'trace barrier --param n_nodes=4 --out t.json' then "
            "'analyze t.json' (per-component latency slack), "
            "'analyze t.json --what critical-path --msg-id 3'"
        ),
    )
    analyze.add_argument("trace", metavar="TRACE.json",
                         help="Chrome trace-event JSON written by --trace/trace")
    analyze.add_argument(
        "--what", default="latency-tolerance", metavar="ANALYSIS",
        help=f"analysis to run: {', '.join(TRACE_ANALYSES)} "
             "(default latency-tolerance)",
    )
    analyze.add_argument(
        "--msg-id", type=int, default=None, dest="msg_id", metavar="N",
        help="restrict the analysis to one traced message id",
    )

    faults = sub.add_parser(
        "faults", help="list fault-injection sites or validate a plan file"
    )
    faults.add_argument(
        "plan", nargs="?", default=None, metavar="PLAN.json",
        help="plan file to validate (omit to list sites/kinds/actions)",
    )
    faults.add_argument(
        "--workload", default=None, metavar="NAME",
        help="also run one registered workload under the validated plan",
    )
    _add_uniform_flags(faults)
    return parser


def _load_fault_plan(path: str, out):
    """Load a fault plan from ``path``; None + message on any error."""
    from repro.faults import FaultPlan, FaultPlanError

    try:
        return FaultPlan.load(path)
    except FaultPlanError as exc:
        print(f"invalid fault plan {path!r}: {exc}", file=out)
    except OSError as exc:
        print(f"cannot read fault plan {path!r}: {exc}", file=out)
    return None


def _fault_stats_line(testbed) -> str:
    """One-line injection/recovery summary for a fault-plan run."""
    stats = testbed.faults.stats()
    parts = [f"faults: injected={stats['injected']}"]
    retransmits = exhausted = duplicates = 0
    for node in (testbed.node1, testbed.node2):
        reliability = node.nic.reliability
        if reliability is not None:
            retransmits += reliability.retransmits
            exhausted += reliability.exhausted
            duplicates += reliability.duplicates_suppressed
    parts.append(f"retransmits={retransmits}")
    parts.append(f"exhausted={exhausted}")
    parts.append(f"duplicates_suppressed={duplicates}")
    parts.append(f"acks_dropped={testbed.fabric.acks_dropped}")
    return " ".join(parts)


def _resolve_workload(name: str, out):
    """Look ``name`` up in the registry; None + message on a miss."""
    from repro.campaign.workloads import get_workload, workload_names

    try:
        return get_workload(name)
    except KeyError:
        print(
            f"unknown workload {name!r}; registered: "
            f"{', '.join(workload_names())}",
            file=out,
        )
        return None


def _cmd_whatif(args: argparse.Namespace, out) -> int:
    times = ComponentTimes.paper()
    analysis = WhatIfAnalysis(times)
    if args.panels:
        print(exp.experiment_fig17(times), file=out)
        return 0
    metric = Metric(args.metric)
    catalogue = (
        analysis.injection_components()
        if metric is Metric.INJECTION
        else {
            **analysis.latency_cpu_components(),
            **analysis.latency_io_components(),
            **analysis.latency_network_components(),
        }
    )
    if not args.component:
        print("available components:", ", ".join(sorted(catalogue)), file=out)
        return 2
    try:
        component = catalogue[args.component]
    except KeyError:
        print(
            f"unknown component {args.component!r}; "
            f"choose from: {', '.join(sorted(catalogue))}",
            file=out,
        )
        return 2
    speedup = analysis.speedup(metric, component, args.reduction)
    print(
        f"reducing {args.component} ({component:.2f} ns) by "
        f"{args.reduction * 100:.0f}% speeds up {metric.value} by "
        f"{speedup * 100:.2f}%",
        file=out,
    )
    return 0


def _cmd_rank(args: argparse.Namespace, out, times: ComponentTimes) -> int:
    analysis = WhatIfAnalysis(times)
    metric = Metric(args.metric)
    catalogue = (
        analysis.injection_components()
        if metric is Metric.INJECTION
        else {
            **analysis.latency_cpu_components(),
            **analysis.latency_io_components(),
            **analysis.latency_network_components(),
        }
    )
    ranked = sorted(
        (
            (name, analysis.speedup(metric, value, args.reduction))
            for name, value in catalogue.items()
        ),
        key=lambda pair: -pair[1],
    )
    print(
        f"{metric.value} speedup from a {args.reduction * 100:.0f}% reduction, "
        "best first:",
        file=out,
    )
    for name, speedup in ranked:
        print(f"  {name:<16} {speedup * 100:6.2f}%", file=out)
    return 0


def _cmd_campaign(args: argparse.Namespace, out) -> int:
    if not _check_jobs(args, out):
        return 2
    split = _split_params(args.param, out)
    if split is None:
        return 2
    params, overrides = split
    if params:
        print(
            "campaign has no workload parameters; --param takes dotted "
            "config paths here (e.g. nic.txq_depth=4)",
            file=out,
        )
        return 2
    fault_plan = None
    if args.faults is not None:
        fault_plan = _load_fault_plan(args.faults, out)
        if fault_plan is None:
            return 2
    if args.replications:
        for flag, given in (
            ("--faults", fault_plan is not None),
            ("--trace", bool(args.trace_out)),
            ("--param", bool(overrides)),
        ):
            if given:
                print(f"{flag} is not supported with --replications", file=out)
                return 2
        print(
            f"running the {args.replications}-seed replication campaign "
            f"(jobs={args.jobs})...",
            file=out,
        )
        print(
            exp.experiment_replication(
                n_replications=args.replications,
                quick=args.quick,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
            ),
            file=out,
        )
        return 0

    from repro.analysis import measure_component_times

    print("running the measurement campaign...", file=out)
    config = SystemConfig.paper_testbed(
        seed=args.seed, deterministic=args.deterministic
    )
    if fault_plan is not None:
        config = config.evolve(faults=fault_plan)
    if overrides:
        maybe = _apply_overrides(config, overrides, out)
        if maybe is None:
            return 2
        config = maybe
    if args.trace_out:
        from repro.trace import trace_session

        with trace_session() as session:
            campaign = measure_component_times(config, quick=args.quick)
        _write_trace(session, args.trace_out, out)
    else:
        campaign = measure_component_times(config, quick=args.quick)
    measured = campaign.to_component_times()
    print(exp.experiment_table1(measured, reference=ComponentTimes.paper()), file=out)
    print("", file=out)
    print(exp.experiment_validation(measured, campaign.observed), file=out)
    return 0


def _parse_sweep_value(text: str):
    """One sweep literal: int/float/bool where they parse, else string."""
    import ast

    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _split_params(entries, out):
    """``--param`` entries → (workload kwargs, dotted config overrides).

    Returns None (after printing a message) on a malformed entry.
    """
    params: dict = {}
    overrides: dict = {}
    for entry in entries:
        key, separator, value = entry.partition("=")
        if not separator or not key:
            print(f"bad --param {entry!r}; expected K=V", file=out)
            return None
        target = overrides if "." in key else params
        target[key] = _parse_sweep_value(value)
    return params, overrides


def _apply_overrides(config: SystemConfig, overrides: dict, out) -> SystemConfig | None:
    """Dotted ``--param`` overrides onto the config; None + message on error."""
    from repro.campaign.spec import apply_config_overrides

    try:
        return apply_config_overrides(config, overrides)
    except (AttributeError, TypeError, ValueError) as exc:
        print(f"bad --param: {exc}", file=out)
        return None


def _check_jobs(args: argparse.Namespace, out) -> bool:
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=out)
        return False
    return True


def _write_trace(session, path: str, out) -> dict:
    """Write the Chrome trace and print the one-line summary."""
    session.write_chrome_trace(path)
    summary = session.summary()
    events = summary["events"]
    print(
        f"trace: {summary['spans']} spans, {summary['instants']} instants "
        f"({summary['tracers']} tracer(s), {summary['dropped_spans']} dropped; "
        f"kernel {events['executed']} executed "
        f"+ {events['fast_forwarded']} fast-forwarded events) "
        f"-> {path}",
        file=out,
    )
    return summary


def _cmd_bench_campaign(
    args: argparse.Namespace, out, config: SystemConfig, params: dict
) -> int:
    from repro.campaign import CampaignSpec, SweepAxis, run_campaign

    axes = []
    for entry in args.sweep:
        name, separator, values = entry.partition("=")
        if not separator or not values:
            print(f"bad --sweep {entry!r}; expected AXIS=V1,V2,...", file=out)
            return 2
        axes.append(
            SweepAxis(
                name, tuple(_parse_sweep_value(v) for v in values.split(","))
            )
        )
    try:
        seeds = (
            tuple(int(s) for s in args.seeds.split(","))
            if args.seeds
            else (args.seed,)
        )
    except ValueError:
        print(
            f"bad --seeds {args.seeds!r}; expected comma-separated integers",
            file=out,
        )
        return 2
    spec = CampaignSpec(
        name=f"bench-{args.workload}",
        workload=args.workload,
        base_config=config,
        axes=tuple(axes),
        params=params,
        seeds=seeds,
        trace=bool(args.trace_out),
    )
    try:
        result = run_campaign(spec, jobs=args.jobs, cache_dir=args.cache_dir)
    except (ValueError, AttributeError, TypeError) as exc:
        # Bad --jobs values, sweep axes naming nonexistent config
        # fields, or sweep values of the wrong type surface here; a
        # traceback helps nobody at the CLI.
        print(f"campaign error: {exc}", file=out)
        return 2
    print(result.render(), file=out)
    return 0 if not result.failures else 1


def _cmd_bench(args: argparse.Namespace, out) -> int:
    if _resolve_workload(args.workload, out) is None:
        return 2
    if not _check_jobs(args, out):
        return 2
    split = _split_params(args.param, out)
    if split is None:
        return 2
    params, overrides = split
    config = SystemConfig.paper_testbed(
        seed=args.seed, deterministic=args.deterministic
    )
    if args.faults is not None:
        plan = _load_fault_plan(args.faults, out)
        if plan is None:
            return 2
        config = config.evolve(faults=plan)
    if overrides:
        maybe = _apply_overrides(config, overrides, out)
        if maybe is None:
            return 2
        config = maybe
    legacy = {"put_bw", "am_lat", "osu_mr", "osu_latency"}
    campaign_mode = (
        args.sweep or args.seeds or args.jobs != 1 or args.cache_dir
        or args.workload not in legacy
    )
    if campaign_mode:
        return _cmd_bench_campaign(args, out, config, params)

    from repro.bench import (
        run_am_lat,
        run_osu_latency,
        run_osu_message_rate,
        run_put_bw,
    )

    runners = {
        "put_bw": run_put_bw,
        "am_lat": run_am_lat,
        "osu_mr": run_osu_message_rate,
        "osu_latency": run_osu_latency,
    }
    runner = runners[args.workload]
    try:
        if args.trace_out:
            from repro.trace import trace_session

            with trace_session() as session:
                result = runner(config=config, **params)
            _write_trace(session, args.trace_out, out)
        else:
            result = runner(config=config, **params)
    except TypeError as exc:
        print(f"bad --param for workload {args.workload!r}: {exc}", file=out)
        return 2

    if args.workload == "put_bw":
        print(
            f"put_bw: NIC-observed injection overhead "
            f"{result.mean_injection_overhead_ns:.2f} ns "
            f"({result.message_rate_per_s / 1e6:.3f} M msg/s)",
            file=out,
        )
    elif args.workload == "am_lat":
        print(f"am_lat: observed latency {result.observed_latency_ns:.2f} ns", file=out)
    elif args.workload == "osu_mr":
        print(
            f"osu_mr: {result.message_rate_per_s / 1e6:.3f} M msg/s "
            f"(1/rate = {result.cpu_side_injection_overhead_ns:.2f} ns)",
            file=out,
        )
    else:
        print(
            f"osu_latency: observed latency {result.observed_latency_ns:.2f} ns",
            file=out,
        )
    if config.faults is not None:
        print(_fault_stats_line(result.testbed), file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out) -> int:
    """Batch what-ifs: fit surrogates, answer queries, report provenance."""
    import json

    from repro.serve.service import Query, ServeTier
    from repro.serve.verify import SampledVerifier

    if args.gc:
        from repro.serve.store import ResultStore, code_version

        report = ResultStore(args.store).prune()
        print(
            f"serve --gc: scanned {report['scanned']} entries, "
            f"kept {report['kept']}, evicted {report['removed']} "
            f"({report['bytes_reclaimed']} bytes reclaimed; "
            f"current code version {code_version()})",
            file=out,
        )
        return 0
    if args.queries is None:
        print("serve: QUERIES.json is required unless --gc is given", file=out)
        return 2
    if not _check_jobs(args, out):
        return 2
    split = _split_params(args.param, out)
    if split is None:
        return 2
    default_params, overrides = split
    config = SystemConfig.paper_testbed(
        seed=args.seed, deterministic=args.deterministic
    )
    if overrides:
        maybe = _apply_overrides(config, overrides, out)
        if maybe is None:
            return 2
        config = maybe

    try:
        with open(args.queries, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read queries file {args.queries!r}: {exc}", file=out)
        return 2
    if isinstance(payload, list):
        fits, entries = [], payload
    elif isinstance(payload, dict):
        fits = payload.get("fit", [])
        entries = payload.get("queries", [])
    else:
        print(f"queries file {args.queries!r}: expected a list or object", file=out)
        return 2

    try:
        verifier = SampledVerifier(fraction=args.verify_fraction, margin=args.margin)
    except ValueError as exc:
        print(f"bad verifier settings: {exc}", file=out)
        return 2
    tier = ServeTier(args.store, base_config=config, verifier=verifier, jobs=args.jobs)

    for spec in (*fits, *entries):
        name = spec.get("workload") if isinstance(spec, dict) else None
        if name is not None and _resolve_workload(name, out) is None:
            return 2

    try:
        for fit in fits:
            surrogate = tier.fit(
                workload=fit["workload"],
                axes={name: tuple(values) for name, values in fit["axes"].items()},
                params={**default_params, **fit.get("params", {})},
                seeds=tuple(fit.get("seeds", (args.seed,))),
                free_params=tuple(fit.get("free_params", ())),
                name=fit.get("name"),
            )
            print(
                f"fit: {surrogate.name} from {surrogate.fitted_points} "
                f"simulated points, envelope "
                f"{ {k: list(v) for k, v in surrogate.envelope.axes.items()} }",
                file=out,
            )
        queries = [
            Query.from_dict(
                {**entry, "params": {**default_params, **entry.get("params", {})}}
            )
            for entry in entries
        ]
    except (KeyError, TypeError, ValueError) as exc:
        print(f"bad queries file {args.queries!r}: {exc}", file=out)
        return 2

    answers = tier.query_batch(queries)
    failed = 0
    for answer in answers:
        inputs = {**answer.query.config_overrides, **answer.query.params}
        compact = ", ".join(f"{k}={v}" for k, v in sorted(inputs.items()))
        if not answer.ok:
            failed += 1
            print(
                f"[{answer.source}] {answer.query.workload}({compact}): "
                f"{answer.error}",
                file=out,
            )
            continue
        body = ", ".join(
            f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(answer.measurements.items())
        )
        suffix = f" via {answer.surrogate}" if answer.surrogate else ""
        if answer.verification is not None:
            suffix += (
                f" (verified, err "
                f"{answer.verification.max_relative_error * 100:.2f}%)"
                if answer.verification.passed
                else " (audit FAILED, served simulation)"
            )
        print(
            f"[{answer.source}] {answer.query.workload}({compact}): {body}{suffix}",
            file=out,
        )
    stats = tier.stats()
    rates = stats["rates"]
    print(
        f"serve: {stats['queries']} queries — "
        f"store {rates['store_hit']:.0%}, "
        f"surrogate {rates['surrogate_hit']:.0%}, "
        f"simulated {rates['simulation']:.0%}, "
        f"verified {stats['verifier']['verifications']}, "
        f"quarantined {stats['verifier']['quarantines']}",
        file=out,
    )
    if args.out:
        document = {
            "answers": [answer.to_dict(include_host=False) for answer in answers],
            "stats": stats,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"answers -> {args.out}", file=out)
    return 1 if failed else 0


def _cmd_trace(args: argparse.Namespace, out) -> int:
    workload = _resolve_workload(args.workload, out)
    if workload is None:
        return 2
    if not _check_jobs(args, out):
        return 2
    split = _split_params(args.param, out)
    if split is None:
        return 2
    params, overrides = split
    config = SystemConfig.paper_testbed(
        seed=args.seed, deterministic=args.deterministic
    )
    if args.faults is not None:
        plan = _load_fault_plan(args.faults, out)
        if plan is None:
            return 2
        config = config.evolve(faults=plan)
    if overrides:
        maybe = _apply_overrides(config, overrides, out)
        if maybe is None:
            return 2
        config = maybe
    out_path = args.trace_out or args.out

    from repro.trace import critical_path_report, pick_breakdown_message, trace_session

    with trace_session() as session:
        measurements = workload(config, **params)
    body = ", ".join(
        f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
        for k, v in sorted(measurements.items())
    )
    print(f"{args.workload}: {body}", file=out)
    summary = _write_trace(session, out_path, out)
    for layer, stats in sorted(summary["per_layer"].items()):
        print(
            f"  {layer:<8} {stats['spans']:>7} spans "
            f"{stats['total_ns']:>14.2f} ns total "
            f"{stats['instants']:>7} instants",
            file=out,
        )

    # Critical path of the last message with a complete forward path
    # (workloads that never cross the fabric simply skip this report).
    spans = session.spans()
    msg_id = pick_breakdown_message(spans)
    if msg_id is not None:
        print("", file=out)
        print(critical_path_report(spans, msg_id), file=out)

    if args.timeline > 0:
        from repro.reporting import render_timeline

        print("", file=out)
        print(render_timeline(spans, limit=args.timeline), file=out)
    return 0


def _cmd_analyze(args: argparse.Namespace, out) -> int:
    """Offline analyses over an exported trace file."""
    import json

    if args.what not in TRACE_ANALYSES:
        print(
            f"unknown analysis {args.what!r}; registered: "
            f"{', '.join(TRACE_ANALYSES)}",
            file=out,
        )
        return 2
    try:
        with open(args.trace, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read trace file {args.trace!r}: {exc}", file=out)
        return 2

    from repro.trace import instants_from_chrome, spans_from_chrome

    try:
        spans = spans_from_chrome(payload)
        marks = instants_from_chrome(payload)
    except (KeyError, TypeError) as exc:
        print(
            f"trace file {args.trace!r} is not a repro trace export: {exc}",
            file=out,
        )
        return 2

    if args.what == "latency-tolerance":
        from repro.analysis.latency_tolerance import (
            latency_tolerance,
            tolerance_report_text,
        )

        report = latency_tolerance(spans, msg_id=args.msg_id)
        if not report.graph.nodes:
            print("trace contains no attributable spans", file=out)
            return 2
        print(tolerance_report_text(report), file=out)
        return 0

    if args.what == "critical-path":
        from repro.trace import critical_path_report, pick_breakdown_message

        msg_id = args.msg_id
        if msg_id is None:
            msg_id = pick_breakdown_message(spans)
        if msg_id is None:
            print(
                "no message with a complete forward path in the trace; "
                "give --msg-id",
                file=out,
            )
            return 2
        print(critical_path_report(spans, msg_id), file=out)
        return 0

    from repro.trace import recovery_summary

    counts = recovery_summary(marks)
    total = sum(counts.values())
    print(f"recovery events: {total}", file=out)
    for name, count in sorted(counts.items()):
        print(f"  {name:<16} {count}", file=out)
    return 0


def _cmd_faults(args: argparse.Namespace, out) -> int:
    from repro.faults import ACTIONS, KINDS, SITES

    if args.plan is not None and args.faults is not None and args.plan != args.faults:
        print("give the plan either positionally or via --faults, not both", file=out)
        return 2
    plan_path = args.plan if args.plan is not None else args.faults
    if plan_path is None:
        if args.workload is not None:
            print("--workload needs a fault plan to run under", file=out)
            return 2
        print("fault-injection sites:", file=out)
        for site, description in sorted(SITES.items()):
            print(f"  {site:<16} {description}", file=out)
        print(f"rule kinds:   {', '.join(KINDS)}", file=out)
        print(f"rule actions: {', '.join(ACTIONS)}", file=out)
        return 0
    plan = _load_fault_plan(plan_path, out)
    if plan is None:
        return 2
    print(f"plan {plan.name!r}: {len(plan.rules)} rule(s), valid", file=out)
    for index, rule in enumerate(plan.rules):
        if rule.kind == "nth":
            trigger = f"occurrences={list(rule.occurrences)}"
        elif rule.kind == "window":
            trigger = f"p={rule.probability} window_ns={list(rule.window_ns or ())}"
        else:
            trigger = f"p={rule.probability}"
        print(f"  [{index}] {rule.site} {rule.action} ({rule.kind}, {trigger})",
              file=out)
    if args.workload is not None:
        # Same machinery as `bench NAME --faults PLAN` — the plan just
        # came in positionally.
        bench_args = argparse.Namespace(
            workload=args.workload,
            sweep=[],
            seeds=None,
            param=args.param,
            faults=plan_path,
            trace_out=args.trace_out,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            seed=args.seed,
            deterministic=args.deterministic,
        )
        return _cmd_bench(bench_args, out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    times = ComponentTimes.paper()
    try:
        return _dispatch(args, out, times)
    except BrokenPipeError:
        # Piping into `head` etc. closed stdout early; exit quietly.
        return 0


def _dispatch(args: argparse.Namespace, out, times: ComponentTimes) -> int:

    if args.command == "table1":
        print(exp.experiment_table1(times), file=out)
        return 0
    if args.command == "breakdown":
        print(_BREAKDOWNS[args.figure](times), file=out)
        return 0
    if args.command == "whatif":
        return _cmd_whatif(args, out)
    if args.command == "validate":
        print(exp.experiment_validation(times, PAPER_OBSERVATIONS), file=out)
        return 0
    if args.command == "insights":
        print(exp.experiment_insights(times), file=out)
        return 0
    if args.command == "rank":
        return _cmd_rank(args, out, times)
    if args.command == "campaign":
        return _cmd_campaign(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "faults":
        return _cmd_faults(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
