"""The single front door to the simulator: build, run, sweep.

Everything the per-module constructors scatter — testbed assembly,
topology, fault plans, tracing, campaign sweeps — composes in one
place::

    from repro.api import Experiment, SystemConfig

    exp = Experiment(
        config=SystemConfig.builder().nic(txq_depth=4).deterministic(),
        nodes=64,
        topology="fat_tree:4",
        trace=False,
    )
    run = exp.run("allreduce", algorithm="ring", payload_bytes=8)
    print(run.measurements["time_per_iteration_ns"])

    sweep = exp.sweep("allreduce", axes={"n_nodes": (8, 16, 64)}, jobs=4)

An :class:`Experiment` is cheap and immutable-ish: each ``run`` builds
a fresh simulation from the resolved config, so repeated runs are
independent and deterministic.  Workload names come from the campaign
registry (:mod:`repro.campaign.workloads`); unknown names raise
``KeyError`` listing what is registered.

The legacy entry points (``Testbed(config)``, per-module config
constructors, ``repro.apps.run_ring_allreduce``) keep working; this
module is the supported composition layer on top of them.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.serve.service import Answer, ServeTier

from repro.campaign import CampaignResult, CampaignSpec, SweepAxis, run_campaign
from repro.campaign.workloads import get_workload
from repro.faults.plan import FaultPlan
from repro.network.topology import TopologySpec
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig, SystemConfigBuilder
from repro.node.testbed import Testbed

__all__ = [
    "Experiment",
    "ExperimentRun",
    "FaultPlan",
    "SystemConfig",
    "SystemConfigBuilder",
    "TopologySpec",
]


@dataclass
class ExperimentRun:
    """One completed workload execution."""

    workload: str
    params: dict[str, Any]
    config: SystemConfig
    #: The workload's flat measurement dict (JSON-encodable).
    measurements: dict[str, Any]
    #: Span/counter summary when the experiment traces, else None.
    trace_summary: dict[str, Any] | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v!r}" for k, v in sorted(self.measurements.items()))
        return f"<ExperimentRun {self.workload} {body}>"


class Experiment:
    """A composed experiment: config + scale + topology + faults + trace.

    Parameters
    ----------
    config:
        A :class:`SystemConfig`, a :class:`SystemConfigBuilder` (built
        automatically), or None for the paper testbed.
    nodes:
        Cluster size for workloads that take an ``n_nodes`` parameter
        (collectives); also what :meth:`cluster` builds.
    topology:
        ``TopologySpec``, a string like ``"fat_tree:4"`` / ``"ring"`` /
        ``"torus:4x4"``, or None to keep the config's topology.
    faults:
        A :class:`FaultPlan`, a plan-file path, or None.
    trace:
        Record spans during :meth:`run` and attach the summary to the
        :class:`ExperimentRun` (sweeps pass the flag to the campaign).
    seed / deterministic:
        Override the corresponding config fields when not None.
    processes_per_node:
        Ranks per node for workloads that accept it (collectives,
        traffic patterns); same-node rank pairs use the shared-memory
        transport automatically.
    rails:
        NIC rails per node (evolves ``config.transport.rails``); None
        keeps the config's value.
    transports:
        Which transport families endpoints may resolve: an iterable or
        comma-separated string drawn from ``{"shm", "nic"}``.  Omitting
        ``"shm"`` forces even same-node pairs through the NIC loopback
        path; None keeps the config's setting.
    """

    def __init__(
        self,
        config: SystemConfig | SystemConfigBuilder | None = None,
        *,
        nodes: int = 2,
        topology: TopologySpec | str | None = None,
        faults: FaultPlan | str | None = None,
        trace: bool = False,
        seed: int | None = None,
        deterministic: bool | None = None,
        processes_per_node: int = 1,
        rails: int | None = None,
        transports: str | tuple[str, ...] | list[str] | None = None,
        name: str = "experiment",
    ) -> None:
        if nodes < 2:
            raise ValueError(f"an experiment needs at least two nodes, got {nodes}")
        if processes_per_node < 1:
            raise ValueError(
                f"processes_per_node must be >= 1, got {processes_per_node}"
            )
        if isinstance(config, SystemConfigBuilder):
            config = config.build()
        resolved = config if config is not None else SystemConfig.paper_testbed()
        if seed is not None:
            resolved = resolved.evolve(seed=int(seed))
        if deterministic is not None:
            resolved = resolved.evolve(deterministic=deterministic)
        if topology is not None:
            spec = (
                TopologySpec.parse(topology) if isinstance(topology, str) else topology
            )
            resolved = resolved.evolve(
                network=dataclasses.replace(resolved.network, topology=spec)
            )
        if faults is not None:
            plan = FaultPlan.load(faults) if isinstance(faults, str) else faults
            resolved = resolved.evolve(faults=plan)
        transport_overrides: dict[str, Any] = {}
        if rails is not None:
            transport_overrides["rails"] = int(rails)
        if transports is not None:
            if isinstance(transports, str):
                transports = tuple(t.strip() for t in transports.split(",") if t.strip())
            chosen = set(transports)
            unknown = chosen - {"shm", "nic"}
            if unknown:
                raise ValueError(
                    f"unknown transport(s) {sorted(unknown)}; valid: 'shm', 'nic'"
                )
            if "nic" not in chosen:
                raise ValueError(
                    "the 'nic' transport cannot be disabled — inter-node "
                    "traffic has no other path"
                )
            transport_overrides["shm_enabled"] = "shm" in chosen
        if transport_overrides:
            resolved = resolved.evolve(
                transport=dataclasses.replace(
                    resolved.transport, **transport_overrides
                )
            )
        self.config = resolved
        self.nodes = nodes
        self.processes_per_node = processes_per_node
        self.trace = trace
        self.name = name

    # -- construction ------------------------------------------------------
    def cluster(self, **kwargs: Any) -> Cluster:
        """A fresh N-node cluster with this experiment's config."""
        kwargs.setdefault("processes_per_node", self.processes_per_node)
        return Cluster(self.nodes, config=self.config, **kwargs)

    def testbed(self, **kwargs: Any) -> Testbed:
        """The two-node paper testbed (requires ``nodes == 2``)."""
        if self.nodes != 2:
            raise ValueError(
                f"testbed() is the two-node setup; this experiment has "
                f"{self.nodes} nodes — use cluster()"
            )
        return Testbed(config=self.config, **kwargs)

    # -- execution ---------------------------------------------------------
    def _resolved_params(self, workload_name: str, params: dict[str, Any]) -> dict[str, Any]:
        """Fold ``nodes``/``processes_per_node`` into accepting workloads."""
        workload = get_workload(workload_name)
        try:
            accepts = inspect.signature(workload).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return params
        resolved = dict(params)
        if "n_nodes" in accepts and "n_nodes" not in resolved:
            resolved["n_nodes"] = self.nodes
        if (
            "processes_per_node" in accepts
            and "processes_per_node" not in resolved
            and self.processes_per_node != 1
        ):
            resolved["processes_per_node"] = self.processes_per_node
        return resolved

    def run(self, workload: str, **params: Any) -> ExperimentRun:
        """Execute one registered workload and return its measurements."""
        resolved_params = self._resolved_params(workload, params)
        fn = get_workload(workload)
        if self.trace:
            from repro.trace import trace_session

            with trace_session() as session:
                measurements = fn(self.config, **resolved_params)
            trace_summary = session.summary()
        else:
            measurements = fn(self.config, **resolved_params)
            trace_summary = None
        return ExperimentRun(
            workload=workload,
            params=resolved_params,
            config=self.config,
            measurements=measurements,
            trace_summary=trace_summary,
        )

    def analyze(
        self,
        workload: str,
        what: str = "latency-tolerance",
        msg_id: Any = None,
        **params: Any,
    ) -> Any:
        """Run one workload traced and analyse the recorded spans.

        ``what`` selects the analysis (same registry as ``python -m
        repro analyze``): ``"latency-tolerance"`` returns a
        :class:`repro.analysis.latency_tolerance.LatencyToleranceReport`,
        ``"critical-path"`` the
        :class:`~repro.core.breakdown.Breakdown` of ``msg_id`` (or the
        last complete message), ``"recovery"`` the fault/recovery event
        counts.  Tracing is forced on for the underlying run regardless
        of the experiment's ``trace`` flag.
        """
        from repro.cli import TRACE_ANALYSES
        from repro.trace import trace_session

        if what not in TRACE_ANALYSES:
            raise ValueError(
                f"unknown analysis {what!r}; registered: "
                f"{', '.join(TRACE_ANALYSES)}"
            )
        resolved_params = self._resolved_params(workload, params)
        fn = get_workload(workload)
        with trace_session() as session:
            fn(self.config, **resolved_params)
        spans = session.spans()
        if what == "latency-tolerance":
            from repro.analysis.latency_tolerance import latency_tolerance

            return latency_tolerance(spans, msg_id=msg_id)
        if what == "critical-path":
            from repro.trace import critical_path_breakdown, pick_breakdown_message

            chosen = msg_id if msg_id is not None else pick_breakdown_message(spans)
            if chosen is None:
                raise ValueError(
                    "no message with a complete forward path in the trace; "
                    "give msg_id"
                )
            return critical_path_breakdown(spans, chosen)
        from repro.trace import recovery_summary

        return recovery_summary(session.instants())

    def sweep(
        self,
        workload: str,
        axes: dict[str, Any] | list[SweepAxis] | tuple[SweepAxis, ...] = (),
        seeds: tuple[int, ...] | list[int] | None = None,
        jobs: int = 1,
        cache_dir: str | None = None,
        params: dict[str, Any] | None = None,
        **spec_kwargs: Any,
    ) -> CampaignResult:
        """Run a declarative campaign sweep of one workload.

        ``axes`` maps axis names (config dotted paths or workload
        parameters) to value tuples, or is a prebuilt
        :class:`SweepAxis` list.  Extra keyword arguments pass through
        to :class:`CampaignSpec` (``timeout_s``, ``retries``...).
        """
        if isinstance(axes, dict):
            axis_objects = tuple(
                SweepAxis(name, tuple(values)) for name, values in axes.items()
            )
        else:
            axis_objects = tuple(axes)
        spec = CampaignSpec(
            name=f"{self.name}-{workload}",
            workload=workload,
            base_config=self.config,
            axes=axis_objects,
            params=self._resolved_params(workload, dict(params or {})),
            seeds=tuple(seeds) if seeds else (self.config.seed,),
            trace=self.trace,
            **spec_kwargs,
        )
        return run_campaign(spec, jobs=jobs, cache_dir=cache_dir)

    def serve(
        self,
        store: str | Any,
        verify_fraction: float = 0.1,
        margin: float = 0.05,
        jobs: int = 1,
    ) -> "ServeTier":
        """A what-if serving tier over this experiment's config.

        The returned :class:`~repro.serve.service.ServeTier` answers
        queries from the content-addressed store at ``store``, from
        surrogates fitted via its :meth:`~repro.serve.service.ServeTier.fit`,
        and by simulation for everything else; a ``verify_fraction``
        sample of surrogate answers is re-simulated and checked to the
        ``margin`` (see :mod:`repro.serve`).  Campaigns pointed at the
        same ``cache_dir`` share the store.
        """
        from repro.serve.service import ServeTier
        from repro.serve.verify import SampledVerifier

        return ServeTier(
            store,
            base_config=self.config,
            verifier=SampledVerifier(fraction=verify_fraction, margin=margin),
            jobs=jobs,
        )

    def query(
        self,
        store: str | Any,
        workload: str,
        config_overrides: dict[str, Any] | None = None,
        **params: Any,
    ) -> "Answer":
        """One-shot what-if: serve ``workload`` through a throwaway tier.

        Convenience for scripts that want a single answer without
        managing a :class:`~repro.serve.service.ServeTier`; repeated
        queries against the same ``store`` directory still hit the
        content-addressed results of earlier ones.
        """
        tier = self.serve(store)
        return tier.query(
            workload,
            self._resolved_params(workload, dict(params)),
            config_overrides or {},
            seed=self.config.seed,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        topo = self.config.network.topology
        return (
            f"<Experiment {self.name!r} nodes={self.nodes} "
            f"topology={topo.kind if topo else 'point-to-point'} "
            f"config={self.config.stable_hash()}>"
        )
