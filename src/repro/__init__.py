"""Breaking Band reproduction: a breakdown of high-performance communication.

A full-system reproduction of *Breaking Band: A Breakdown of
High-performance Communication* (Zambre, Grodowitz, Chandramowlishwaran,
Shamis — ICPP 2019) built on a discrete-event simulator of the whole
communication stack: CPU software layers (MPICH/UCP/UCT-like), the PCIe
subsystem with credit-based flow control and a passive protocol
analyzer, a ConnectX-4-like NIC, and an InfiniBand-like fabric.

Quickstart::

    from repro import ComponentTimes, EndToEndLatencyModel
    from repro.bench import run_am_lat

    # Analytical model with the paper's measured values.
    model = EndToEndLatencyModel(ComponentTimes.paper())
    print(model.predicted_ns)                 # 1387.02 ns

    # Observe the same quantity on the simulated testbed.
    result = run_am_lat(iterations=200)
    print(result.observed_latency_ns)

    # Or re-measure every component with the paper's methodology:
    from repro.analysis import measure_component_times
    campaign = measure_component_times()
    times = campaign.to_component_times()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-reproduction record of every table and figure.
"""

from repro.core.components import Category, ComponentTimes
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
    gen_completion,
    min_poll_interval,
)
from repro.core.validation import ValidationResult, validate
from repro.core.whatif import Metric, WhatIfAnalysis
from repro.node.config import SystemConfig
from repro.node.testbed import Testbed

__version__ = "1.0.0"

__all__ = [
    "Category",
    "ComponentTimes",
    "EndToEndLatencyModel",
    "InjectionModelLlp",
    "LatencyModelLlp",
    "Metric",
    "OverallInjectionModel",
    "SystemConfig",
    "Testbed",
    "ValidationResult",
    "WhatIfAnalysis",
    "__version__",
    "gen_completion",
    "min_poll_interval",
    "validate",
]
