"""Breaking Band reproduction: a breakdown of high-performance communication.

A full-system reproduction of *Breaking Band: A Breakdown of
High-performance Communication* (Zambre, Grodowitz, Chandramowlishwaran,
Shamis — ICPP 2019) built on a discrete-event simulator of the whole
communication stack: CPU software layers (MPICH/UCP/UCT-like), the PCIe
subsystem with credit-based flow control and a passive protocol
analyzer, a ConnectX-4-like NIC, and an InfiniBand-like fabric — plus
routed multi-node topologies and collective algorithms on top.

Quickstart::

    from repro import Experiment, SystemConfig

    # The single composition point: config, scale, topology, faults,
    # trace — see repro.api.
    exp = Experiment(
        config=SystemConfig.builder().deterministic(),
        nodes=64,
        topology="fat_tree:4",
    )
    run = exp.run("allreduce", algorithm="ring", payload_bytes=8)
    print(run.measurements["time_per_iteration_ns"])

    # Analytical model with the paper's measured values.
    from repro import ComponentTimes, EndToEndLatencyModel
    model = EndToEndLatencyModel(ComponentTimes.paper())
    print(model.predicted_ns)                 # 1387.02 ns

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-reproduction record of every table and figure.
"""

from repro.api import Experiment, ExperimentRun
from repro.campaign import CampaignSpec, SweepAxis
from repro.core.components import Category, ComponentTimes
from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
    gen_completion,
    min_poll_interval,
)
from repro.core.validation import ValidationResult, validate
from repro.core.whatif import Metric, WhatIfAnalysis
from repro.faults import FaultPlan
from repro.network.topology import TopologySpec
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig, SystemConfigBuilder
from repro.node.testbed import Testbed
from repro.serve import ResultStore
from repro.serve.service import Answer, Query, ServeTier
from repro.trace import trace_session

__version__ = "1.0.0"

#: The supported public surface.  Everything else under ``repro.*`` is
#: importable but unsupported implementation detail.
__all__ = [
    "Answer",
    "CampaignSpec",
    "Category",
    "Cluster",
    "ComponentTimes",
    "EndToEndLatencyModel",
    "Experiment",
    "ExperimentRun",
    "FaultPlan",
    "InjectionModelLlp",
    "LatencyModelLlp",
    "Metric",
    "OverallInjectionModel",
    "Query",
    "ResultStore",
    "ServeTier",
    "SweepAxis",
    "SystemConfig",
    "SystemConfigBuilder",
    "Testbed",
    "TopologySpec",
    "ValidationResult",
    "WhatIfAnalysis",
    "__version__",
    "gen_completion",
    "min_poll_interval",
    "trace_session",
    "validate",
]
