"""Deterministic randomness for the simulator.

Every stochastic quantity in the testbed — per-sample CPU segment
durations, PCIe link jitter, the rare multi-microsecond outliers that
show up in the paper's Figure 7 — draws from a named stream derived from
one root seed.  Subsystems never share a stream, so adding randomness to
one component cannot perturb another component's sequence: runs stay
reproducible under refactoring.

The noise *shape* is calibrated to the paper's observed injection
distribution (Figure 7: mean 282.33 ns, median 266.30 ns, min 201.30 ns,
max 34951.70 ns, σ = 58.49 ns): a right-skewed body — median below the
mean — produced by a lognormal multiplicative jitter, plus a rare
heavy Pareto tail standing in for OS noise / SMI-like events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["JitterModel", "RandomStreams"]


class RandomStreams:
    """A tree of independent, named random streams.

    Streams are derived from the root seed with
    :class:`numpy.random.SeedSequence` spawning keyed by the stream name,
    so ``streams.get("pcie.link")`` yields the same generator in every
    run with the same root seed, independent of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._generators: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        generator = self._generators.get(name)
        if generator is None:
            # Fold the name into a spawn key so the stream depends only on
            # (seed, name), never on lookup order.  Python's built-in
            # hash() is salted per process, so use a stable fold instead.
            digest = 0
            for ch in name:
                digest = (digest * 131 + ord(ch)) % (2**63)
            sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(digest,))
            generator = np.random.default_rng(sequence)
            self._generators[name] = generator
        return generator

    def child(self, prefix: str) -> "ScopedStreams":
        """A view whose stream names are automatically prefixed."""
        return ScopedStreams(self, prefix)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.seed} open={len(self._generators)}>"


class ScopedStreams:
    """Prefix-scoped view over a :class:`RandomStreams`."""

    def __init__(self, root: RandomStreams, prefix: str) -> None:
        self._root = root
        self._prefix = prefix

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``prefix.name``."""
        return self._root.get(f"{self._prefix}.{name}")

    def child(self, prefix: str) -> "ScopedStreams":
        """A deeper scoped view."""
        return ScopedStreams(self._root, f"{self._prefix}.{prefix}")


@dataclass
class JitterModel:
    """Multiplicative noise model for component durations.

    A sample for a component with nominal mean ``m`` is drawn from a
    three-part mixture::

        body:    m * b * lognormal(mu, sigma)        (most samples)
        medium:  m * (1 + medium_scale * Exp(1))     (cache/TLB misses)
        extreme: m * (1 + outlier_scale * (1+Pareto)) (OS noise, SMIs)

    ``(mu, sigma)`` give the lognormal unit mean and coefficient of
    variation ``cv``; the body factor ``b`` is solved so the *mixture*
    mean is exactly ``m`` — noise never biases component means.  A floor
    at ``floor_fraction * m`` models the deterministic lower bound
    visible in the paper's Figure 7 (min 201.3 ns against a 282.33 ns
    mean — about 71%).

    The defaults are calibrated against Figure 7's annotations
    (mean 282.33, median < mean, σ ≈ 58.5, max ≈ 35 µs): the body gives
    the right-skewed bulk, the medium tail the bulk of the variance,
    and the extreme tail the multi-microsecond maximum.

    Parameters
    ----------
    cv:
        Coefficient of variation of the noise body.
    medium_prob / medium_scale:
        Mixture weight and exponential scale of the medium tail.
    outlier_prob / outlier_scale:
        Mixture weight and Pareto scale of the extreme tail.
    floor_fraction:
        Hard lower bound as a fraction of the nominal mean.
    """

    cv: float = 0.12
    medium_prob: float = 0.008
    medium_scale: float = 2.0
    outlier_prob: float = 1e-4
    outlier_scale: float = 15.0
    floor_fraction: float = 0.71
    _mu: float = field(init=False, repr=False)
    _sigma: float = field(init=False, repr=False)
    _body_gain: float = field(init=False, repr=False)

    #: Mean of ``1 + Pareto(PARETO_SHAPE)``: Pareto(a) has mean 1/(a-1).
    PARETO_SHAPE = 2.5

    def __post_init__(self) -> None:
        if self.cv < 0:
            raise ValueError(f"cv must be >= 0, got {self.cv}")
        for name in ("medium_prob", "outlier_prob"):
            value = getattr(self, name)
            if not 0 <= value < 1:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.medium_prob + self.outlier_prob >= 1:
            raise ValueError("tail probabilities must sum below 1")
        if self.medium_scale < 0 or self.outlier_scale < 0:
            raise ValueError("tail scales must be >= 0")
        if not 0 <= self.floor_fraction <= 1:
            raise ValueError(
                f"floor_fraction must be in [0, 1], got {self.floor_fraction}"
            )
        # Unit-mean lognormal: E = exp(mu + sigma^2/2) = 1,
        # CV^2 = exp(sigma^2) - 1.
        self._sigma = math.sqrt(math.log(1.0 + self.cv**2)) if self.cv > 0 else 0.0
        self._mu = -0.5 * self._sigma**2
        # Solve the body gain so the mixture mean is exactly 1:
        #   b·p_body·E[body] + p_med·E[med] + p_out·E[out] = 1.
        # (The floor's truncation bias is negligible at small cv.)
        mean_medium = 1.0 + self.medium_scale
        pareto_mean = 1.0 / (self.PARETO_SHAPE - 1.0)
        mean_extreme = 1.0 + self.outlier_scale * (1.0 + pareto_mean)
        p_body = 1.0 - self.medium_prob - self.outlier_prob
        self._body_gain = (
            1.0 - self.medium_prob * mean_medium - self.outlier_prob * mean_extreme
        ) / p_body
        if self._body_gain <= 0:
            raise ValueError("tail mass too heavy: body gain would be non-positive")

    def sample(self, mean: float, rng: np.random.Generator) -> float:
        """Draw one noisy duration around ``mean`` nanoseconds."""
        if mean < 0:
            raise ValueError(f"mean duration must be >= 0, got {mean}")
        if mean == 0:
            return 0.0
        roll = rng.random()
        if roll < self.outlier_prob:
            factor = 1.0 + self.outlier_scale * (1.0 + rng.pareto(self.PARETO_SHAPE))
            return mean * factor
        if roll < self.outlier_prob + self.medium_prob:
            factor = 1.0 + self.medium_scale * rng.exponential()
            return mean * factor
        if self._sigma == 0.0:
            return mean * self._body_gain
        factor = self._body_gain * math.exp(rng.normal(self._mu, self._sigma))
        return max(mean * factor, mean * self.floor_fraction)

    def sample_many(self, mean: float, n: int, rng: np.random.Generator) -> np.ndarray:
        """Vectorised :meth:`sample` for ``n`` draws."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if mean == 0 or n == 0:
            return np.zeros(n)
        if self._sigma:
            body = self._body_gain * np.exp(rng.normal(self._mu, self._sigma, size=n))
        else:
            body = np.full(n, self._body_gain)
        samples = np.maximum(mean * body, mean * self.floor_fraction)
        rolls = rng.random(n)
        extreme = rolls < self.outlier_prob
        medium = (~extreme) & (rolls < self.outlier_prob + self.medium_prob)
        if extreme.any():
            count = int(extreme.sum())
            samples[extreme] = mean * (
                1.0 + self.outlier_scale * (1.0 + rng.pareto(self.PARETO_SHAPE, count))
            )
        if medium.any():
            count = int(medium.sum())
            samples[medium] = mean * (1.0 + self.medium_scale * rng.exponential(size=count))
        return samples

    @classmethod
    def deterministic(cls) -> "JitterModel":
        """A model that returns the mean exactly (for unit testing)."""
        return cls(cv=0.0, medium_prob=0.0, outlier_prob=0.0, floor_fraction=0.0)
