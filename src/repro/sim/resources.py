"""Queueing primitives built on the event kernel.

Three primitives cover everything the testbed needs:

:class:`Store`
    An unbounded-or-bounded FIFO of Python objects with blocking ``put``
    and ``get`` — used for hardware queues (TxQ, CQ, switch ingress).
:class:`Channel`
    A :class:`Store` whose items become visible only after a fixed
    latency — used for wires and links where propagation delay matters
    but the internals do not.
:class:`Resource`
    A counted semaphore — used to model units that can serve a bounded
    number of concurrent operations (e.g. DMA engines).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["Channel", "Resource", "Store"]


class Store:
    """FIFO store of items with event-based blocking put/get.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Maximum number of buffered items; ``None`` means unbounded.
    name:
        Optional label for diagnostics.
    """

    def __init__(
        self,
        env: Environment,
        capacity: int | None = None,
        name: str | None = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or "store"
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[Any, ...]:
        """Snapshot of currently buffered items (oldest first)."""
        return tuple(self._items)

    @property
    def is_full(self) -> bool:
        """True when a further non-blocking put would fail."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Insert ``item``; the returned event fires once it is buffered."""
        event = Event(self.env)
        if self._getters:
            # Hand the item straight to the longest-waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Remove the oldest item; the returned event fires with it."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_waiting_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._admit_waiting_putter()
        return True, item

    def _admit_waiting_putter(self) -> None:
        if self._putters:
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"<Store {self.name!r} {len(self._items)}/{cap}>"


class Channel:
    """A store with a fixed transit latency applied to every item.

    ``put`` returns immediately (the sender does not wait for delivery);
    the item becomes ``get``-able ``latency`` nanoseconds later.  Items
    put at different times are delivered in FIFO order because the
    latency is constant.
    """

    def __init__(
        self,
        env: Environment,
        latency: float,
        capacity: int | None = None,
        name: str | None = None,
    ) -> None:
        if latency < 0:
            raise SimulationError(f"channel latency must be >= 0, got {latency}")
        self.env = env
        self.latency = latency
        self.name = name or "channel"
        self._store = Store(env, capacity=capacity, name=f"{self.name}.buffer")
        self._in_flight = 0

    @property
    def in_flight(self) -> int:
        """Number of items currently traversing the channel."""
        return self._in_flight

    def put(self, item: Any) -> None:
        """Launch ``item`` into the channel (non-blocking for the sender)."""
        self._in_flight += 1
        self.env.defer(self._deliver, self.latency, args=(item,))

    def _deliver(self, item: Any) -> None:
        self._in_flight -= 1
        self._store.put(item)

    def get(self) -> Event:
        """Receive the next delivered item (blocking)."""
        return self._store.get()

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Channel {self.name!r} lat={self.latency}ns in_flight={self._in_flight}>"


class Resource:
    """A counted semaphore with FIFO granting.

    ``request()`` returns an event that fires once a unit is granted;
    ``release()`` returns the unit.  Used to bound concurrency of
    hardware engines.
    """

    def __init__(self, env: Environment, capacity: int = 1, name: str | None = None) -> None:
        if capacity <= 0:
            raise SimulationError(f"resource capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or "resource"
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted units."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free units."""
        return self.capacity - self._in_use

    def request(self) -> Event:
        """Acquire one unit; the event fires when granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(None)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit, waking the longest-waiting requester."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter; _in_use is
            # unchanged because ownership transfers.
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Resource {self.name!r} {self._in_use}/{self.capacity}>"
