"""Discrete-event simulation kernel underpinning the Breaking Band testbed.

This package is a small, dependency-free discrete-event simulation (DES)
engine in the style of SimPy: simulated actors are plain Python
generators that ``yield`` events (most commonly :class:`Timeout`), and an
:class:`Environment` advances a virtual clock measured in nanoseconds.

The engine is deliberately deterministic: given the same seed and the
same workload, every run produces bit-identical traces.  All randomness
is routed through :mod:`repro.sim.rng` so that individual subsystems
(PCIe link jitter, CPU timing noise, ...) draw from independent,
reproducible streams.

Public surface
--------------

:class:`Environment`
    The simulation clock and scheduler.  Besides the generator tier it
    exposes a callback fast tier — :meth:`Environment.defer` and
    :meth:`Environment.chain` — that schedules plain callables with no
    event or generator allocation (see :mod:`repro.sim.engine`).
:class:`Event`, :class:`Timeout`, :class:`Process`, :class:`AllOf`, :class:`AnyOf`
    Awaitable primitives.
:class:`Store`, :class:`Channel`, :class:`Resource`
    Queueing primitives used to model hardware queues and links.
:class:`RandomStreams`, :class:`JitterModel`
    Deterministic randomness.
"""

from repro.sim.engine import (
    NORMAL,
    NULL_TRACER,
    URGENT,
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    NullTracer,
    Process,
    SimulationError,
    Timeout,
    set_tracer_factory,
)
from repro.sim.hashing import canonical_json, canonicalize, stable_digest
from repro.sim.resources import Channel, Resource, Store
from repro.sim.rng import JitterModel, RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Environment",
    "Event",
    "Interrupt",
    "JitterModel",
    "NORMAL",
    "NULL_TRACER",
    "URGENT",
    "NullTracer",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "set_tracer_factory",
    "canonical_json",
    "canonicalize",
    "stable_digest",
]
