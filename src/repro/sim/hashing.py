"""Stable, cross-process hashing of configuration objects.

The campaign layer caches completed sweep points on disk keyed by the
inputs that determine a run's outcome.  Python's built-in ``hash()`` is
salted per process and ``pickle`` output is not canonical, so neither
can key a cache shared between workers or sessions.  This module
serializes values — nested dataclasses included — into a canonical JSON
form and digests it with SHA-256, yielding hashes that are identical
across processes, interpreter restarts and machines.

Rules:

* dataclasses serialize as ``{"<qualified class name>": {field: value}}``
  over their *init* fields only (derived ``init=False`` fields are
  functions of the others and would double-count them);
* init fields carrying ``metadata={"elide_default_from_hash": True}``
  are omitted while they still hold their default value, so a field
  added after caches exist does not invalidate every cached run that
  never set it — the hash of a config that *does* set it changes as
  usual;
* mappings sort by stringified key; sets/frozensets sort canonically;
* floats use ``repr`` round-tripping via JSON, which is exact for IEEE
  doubles;
* enums serialize by value, numpy scalars by their Python equivalent.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

__all__ = ["canonicalize", "canonical_json", "stable_digest"]


def _elided(instance: Any, f: dataclasses.Field) -> bool:
    """True when ``f`` opts out of hashing while at its default value."""
    if not f.metadata.get("elide_default_from_hash"):
        return False
    current = getattr(instance, f.name)
    if f.default is not dataclasses.MISSING:
        return bool(current == f.default)
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return bool(current == f.default_factory())  # type: ignore[misc]
    return False


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to plain JSON-encodable data, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        payload = {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
            if f.init and not _elided(value, f)
        }
        return {f"{cls.__module__}.{cls.__qualname__}": payload}
    if isinstance(value, enum.Enum):
        return canonicalize(value.value)
    if isinstance(value, dict):
        return {str(key): canonicalize(val) for key, val in sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (canonicalize(item) for item in value),
            key=lambda item: json.dumps(item, sort_keys=True),
        )
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if hasattr(value, "item") and callable(value.item):
        # numpy scalars expose .item() returning the Python equivalent.
        return canonicalize(value.item())
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for stable hashing"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON text of ``value`` (stable across processes)."""
    return json.dumps(
        canonicalize(value), sort_keys=True, separators=(",", ":"), allow_nan=True
    )


def stable_digest(value: Any, length: int = 16) -> str:
    """A hex SHA-256 digest of the canonical form, truncated to ``length``.

    Sixteen hex characters (64 bits) keep cache filenames short while
    making collisions vanishingly unlikely at campaign scale.
    """
    digest = hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
    return digest[:length] if length else digest
