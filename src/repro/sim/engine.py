"""Event loop and process primitives for the simulation kernel.

The calendar orders ``[time, priority, sequence, item, args]`` entries:
ties at the same simulated time are broken first by an explicit
priority (URGENT before NORMAL) and then by insertion order, which
keeps runs fully deterministic.

Since the three-tier refactor the calendar is a **bucketed time wheel**
rather than a single binary heap:

- near-future entries (the dominant case: fixed hardware delays in the
  10 ns – 10 µs range) land in one of ``_WHEEL_SLOTS`` buckets of
  ``_WHEEL_GRAIN_NS`` each, keyed by ``int(time / grain)``.  A bucket
  is sorted only when the cursor reaches it, so the common
  push/pop pair costs an append plus an amortised-linear drain instead
  of two ``O(log n)`` sift operations;
- far-future entries (beyond the wheel's horizon: watchdogs, replay
  timers) overflow into a ``heapq`` tier and migrate into the wheel as
  the cursor advances;
- entries are **slab-allocated**: processed entry lists go onto a free
  list and are recycled by later pushes, so the steady state allocates
  no per-event objects at all.

The execution model on top of the calendar is itself three tiers:

- the :class:`Process` tier wraps Python generators for stateful actors
  (progress engines, benchmark drivers) that block, wait on events and
  get interrupted;
- the **callback tier** (:meth:`Environment.defer` /
  :meth:`Environment.defer_at` / :meth:`Environment.chain`) schedules
  plain callables directly on the calendar with no :class:`Event`,
  generator or :class:`Process` allocation.  The per-packet hardware
  machinery (TLP delivery, ACK DLLPs, wire propagation, switch
  forwarding, DMA engines) runs on this tier, increasingly as
  *compiled chains*: one calendar entry at a precomputed absolute time
  standing in for a whole per-hop sequence (the elided entries are
  accounted in :attr:`Environment.events_fast_forwarded`);
- the **analytic fast-forward** tier skips the calendar entirely for
  detected steady-state phases: a driver validates a closed-form model
  against a probe window and then calls :meth:`Environment.fast_forward`
  to jump the clock to the synthesised terminal time.

All tiers share one calendar, one clock and one tie-breaking order, so
mixing them cannot reorder simultaneous work nondeterministically.

Time is a ``float`` measured in **nanoseconds** throughout the project;
the communication components modelled by the paper all live in the
10 ns – 10 µs range, where double precision is exact to well below a
femtosecond.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections.abc import Callable, Generator, Iterable
from typing import Any

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "NULL_TRACER",
    "NullTracer",
    "Process",
    "SimulationError",
    "Timeout",
    "URGENT",
    "NORMAL",
    "set_tracer_factory",
]

#: Scheduling priority for events that must fire before ordinary events
#: scheduled at the same timestamp (e.g. resumption of an interrupted
#: process).  Lower sorts earlier.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel.

    Examples include running a finished environment backwards, triggering
    an already-triggered event, or yielding a non-event from a process.
    """


class _NullSpanContext:
    """Context manager returned by :meth:`NullTracer.span`: does nothing."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The do-nothing tracer installed on every :class:`Environment`.

    Instrumented components call ``tracer.span(...)`` / ``tracer.instant``
    unconditionally on the slow paths and guard hot loops with
    ``if tracer.enabled:``.  This class makes the disabled case free of
    allocations and near-free of call overhead; :class:`repro.trace.Tracer`
    implements the same surface with real recording.
    """

    __slots__ = ()

    #: Hot paths test this attribute before doing any per-span work.
    enabled = False

    def bind(self, env: "Environment") -> "NullTracer":
        """Attach to an environment's clock (no-op here)."""
        return self

    def begin(self, layer: str, name: str, track: str | None = None, **attrs: Any):
        """Open a span; returns an opaque handle (``None`` here)."""
        return None

    def end(self, span: Any) -> None:
        """Close a span handle returned by :meth:`begin`."""

    def span(self, layer: str, name: str, track: str | None = None, **attrs: Any):
        """Context manager wrapping :meth:`begin`/:meth:`end`."""
        return _NULL_SPAN_CONTEXT

    def instant(self, layer: str, name: str, track: str | None = None, **attrs: Any):
        """Record a zero-duration event."""
        return None

    def counter(self, layer: str, name: str, value: float = 1.0) -> None:
        """Bump a per-layer counter."""


#: Shared no-op tracer; ``Environment.tracer`` defaults to this.
NULL_TRACER = NullTracer()

#: When set (by :func:`repro.trace.trace_session`), every Environment
#: created afterwards asks this factory for its tracer instead of using
#: :data:`NULL_TRACER`.  Kept here — not in ``repro.trace`` — so the
#: engine never imports the tracing package.
_tracer_factory: Callable[["Environment"], Any] | None = None


def set_tracer_factory(factory: Callable[["Environment"], Any] | None) -> None:
    """Install (or clear, with ``None``) the default tracer factory."""
    global _tracer_factory
    _tracer_factory = factory


class Interrupt(Exception):
    """Thrown into a process when another actor interrupts it.

    The ``cause`` attribute carries an arbitrary, caller-supplied payload
    describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event has three observable states:

    - *pending*: created, not yet triggered;
    - *triggered*: scheduled on the event calendar but callbacks not yet
      run;
    - *processed*: callbacks have run; ``value`` is final.

    Events may succeed (carrying a ``value``) or fail (carrying an
    exception, which is re-raised inside every waiting process).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed")

    #: Sentinel distinguishing "no value yet" from a ``None`` value.
    PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = Event.PENDING
        self._ok = True
        self._triggered = False
        self._processed = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if self._value is Event.PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when this event is processed.

        The bridge from the callback tier to events: continuation-style
        code (e.g. a deferred hardware step waiting on a
        :class:`~repro.sim.resources.Resource` grant) attaches its next
        step here instead of yielding from a generator.

        Raises
        ------
        SimulationError
            If the event has already been processed — its callbacks have
            run and this one would be silently dropped.
        """
        if self.callbacks is None:
            raise SimulationError(
                f"cannot add a callback to already-processed {self!r}"
            )
        self.callbacks.append(callback)

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._triggered = True
        self.env._schedule(self, priority=NORMAL, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._triggered = True
        self.env._schedule(self, priority=NORMAL, delay=0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self._triggered = True
        self.env._schedule(self, priority=NORMAL, delay=0.0)

    # -- internal ----------------------------------------------------------
    def _mark_processed(self) -> None:
        """Run callbacks exactly once; called by the environment.

        A *failed* event processed with nobody listening re-raises its
        exception: a crashed process must never die silently.
        """
        callbacks = self.callbacks
        self.callbacks = None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)
        elif not self._ok:
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "triggered"
            if self._triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._triggered = True
        env._schedule(self, priority=NORMAL, delay=delay)


class _Initialize(Event):
    """Internal event that kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self._triggered = True
        self.callbacks.append(process._resume)
        env._schedule(self, priority=URGENT, delay=0.0)


class Process(Event):
    """A running simulated actor wrapping a Python generator.

    The process itself is an :class:`Event` that fires when the generator
    returns (successfully, with the generator's return value) or raises
    (failed, with the exception).  This lets processes wait on each other
    simply by yielding the other process.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupt_pending", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        self._interrupt_pending = False
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        first so the event's eventual firing does not resume it twice.
        Interrupts **coalesce**: a second interrupt issued while one is
        already scheduled but not yet delivered is dropped (the first
        cause wins), so the generator is never advanced twice for one
        wake-up.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished {self.name!r}")
        if self._interrupt_pending:
            return
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._interrupt_pending = True
        failed = Event(self.env)
        failed._ok = False
        failed._value = Interrupt(cause)
        failed._triggered = True
        failed.callbacks.append(self._resume)
        self.env._schedule(failed, priority=URGENT, delay=0.0)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        self._waiting_on = None
        self._interrupt_pending = False
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
            self._generator.close()
            self.fail(error)
            return
        if target.env is not self.env:
            self._generator.close()
            self.fail(SimulationError("yielded event belongs to another Environment"))
            return
        if target.callbacks is None:
            # Already processed: resume immediately (at the current time)
            # with its settled value.
            settled = Event(self.env)
            settled._ok = target._ok
            settled._value = target._value
            settled._triggered = True
            settled.callbacks.append(self._resume)
            self.env._schedule(settled, priority=URGENT, delay=0.0)
            self._waiting_on = settled
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite events.

    An event counts as *settled* once its callbacks have run; a condition
    tracks how many of its constituents are still outstanding and fires
    as soon as its satisfaction rule holds.
    """

    __slots__ = ("_events", "_total", "_outstanding")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("all events must share one Environment")
        self._total = len(self._events)
        self._outstanding = 0
        failed: Event | None = None
        for event in self._events:
            if event.callbacks is None:
                if not event._ok and failed is None:
                    failed = event
            else:
                self._outstanding += 1
                event.callbacks.append(self._check)
        if failed is not None:
            self.fail(failed._value)
        elif self._satisfied():
            self._finish()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._outstanding -= 1
        if self._satisfied():
            self._finish()

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _finish(self) -> None:
        self.succeed(
            [e._value for e in self._events if e._value is not Event.PENDING]
        )


class AllOf(_Condition):
    """Fires when every constituent event has settled (conjunction)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._outstanding == 0


class AnyOf(_Condition):
    """Fires when at least one constituent event has settled.

    An :class:`AnyOf` over zero events fires immediately, mirroring
    :class:`AllOf` over zero events.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._outstanding < self._total or self._total == 0


#: Wheel bucket width in nanoseconds.  A power of two, so scaling by
#: ``1 / grain`` is exact and bucket indexing can never disagree with a
#: float comparison against the bucket boundary.  512 ns comfortably
#: exceeds the typical fixed hardware delay (10–500 ns), so most pushes
#: land in the active bucket (one C-level ``insort``) or its immediate
#: successors, and bucket advances stay rare.
_WHEEL_GRAIN_NS = 512.0
_WHEEL_INV_GRAIN = 1.0 / _WHEEL_GRAIN_NS
#: Number of wheel slots; the wheel spans ~2.1 ms ahead of the cursor.
#: Only watchdog/replay timers overflow to the far-future heap.
_WHEEL_SLOTS = 4096
#: Virtual-time span covered by the wheel ahead of the cursor.
_WHEEL_SPAN_NS = _WHEEL_GRAIN_NS * _WHEEL_SLOTS


class Environment:
    """The simulation clock, event calendar and scheduler.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in nanoseconds.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        # -- the bucketed time-wheel calendar -----------------------------
        # Entries are slab-allocated mutable lists
        # ``[time, priority, sequence, item, args]``; ``item`` is an
        # :class:`Event` when ``args`` is ``None``, otherwise a plain
        # callable invoked as ``item(*args)`` (the callback fast tier).
        # List comparison never reaches ``item``: ``sequence`` is unique.
        self._wheel: list[list[list]] = [[] for _ in range(_WHEEL_SLOTS)]
        self._wheel_count = 0
        #: Bucket index (``int(time / grain)``) of the bucket currently
        #: being drained through ``_active``.  Invariant: every wheel
        #: entry has a bucket index in ``(cursor, cursor + _WHEEL_SLOTS)``
        #: — index == cursor entries go straight into ``_active``.
        self._cursor = int(self._now * _WHEEL_INV_GRAIN)
        #: The active bucket, sorted ascending, consumed via
        #: ``_active_pos`` (same-bucket pushes insort behind the pos).
        self._active: list[list] = []
        self._active_pos = 0
        #: Far-future tier: a plain heap for entries beyond the wheel's
        #: horizon; migrated into the wheel as the cursor advances.
        self._overflow: list[list] = []
        #: Slab free list: processed entries are recycled here.
        self._free: list[list] = []
        self._sequence = 0
        self._processed_events = 0
        self._fast_forwarded_events = 0
        self._active_process: Process | None = None
        #: Observability hook: every instrumented component reads spans
        #: through here.  A no-op unless a tracer factory is installed
        #: (see :func:`repro.trace.trace_session`).
        self.tracer: Any = (
            _tracer_factory(self) if _tracer_factory is not None else NULL_TRACER
        )
        #: Optional callback ``(when, item)`` invoked for every calendar
        #: entry the scheduler processes, before it runs.  ``item`` is
        #: the :class:`Event`, or the bare callable for callback-tier
        #: entries.
        self.on_event: Callable[[float, Any], None] | None = None

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total events processed since creation (throughput metric)."""
        return self._processed_events

    @property
    def events_executed(self) -> int:
        """Calendar entries actually popped and run (same as
        :attr:`processed_events`; the name pairs with
        :attr:`events_fast_forwarded` for speedup audits)."""
        return self._processed_events

    @property
    def events_fast_forwarded(self) -> int:
        """Events *not* replayed: per-hop entries elided by compiled
        chains plus entries skipped by analytic fast-forward jumps.

        ``events_executed + events_fast_forwarded`` is the effective
        event count a pre-refactor replay of the same scenario would
        have processed — the numerator of "effective events/s"."""
        return self._fast_forwarded_events

    def credit_fast_forwarded(self, count: int) -> None:
        """Account ``count`` calendar entries as elided, not executed.

        Called by compiled chains (one entry standing in for a per-hop
        sequence) and by :meth:`fast_forward`.  Keeping the split
        explicit makes speedup claims auditable from any run.
        """
        self._fast_forwarded_events += count

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- factory helpers ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _push(self, time: float, priority: int, item: Any, args: tuple | None) -> None:
        """Insert one calendar entry at absolute ``time`` (>= now)."""
        self._sequence += 1
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = priority
            entry[2] = self._sequence
            entry[3] = item
            entry[4] = args
        else:
            entry = [time, priority, self._sequence, item, args]
        if time - self._now > _WHEEL_SPAN_NS:
            # Far future (or non-finite): the overflow heap.  Slightly
            # conservative versus the exact window check — harmless,
            # migration pulls it into the wheel once in range.
            heapq.heappush(self._overflow, entry)
            return
        index = int(time * _WHEEL_INV_GRAIN)
        offset = index - self._cursor
        if offset <= 0:
            # The bucket being drained (or, pathologically, behind it —
            # impossible for monotone time, but insort stays correct):
            # keep the active run sorted behind the consumption point.
            insort(self._active, entry, lo=self._active_pos)
        elif offset < _WHEEL_SLOTS:
            self._wheel[index % _WHEEL_SLOTS].append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, entry)

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {event!r} into the past: "
                f"delay={delay!r} at now={self._now!r}"
            )
        self._push(self._now + delay, priority, event, None)

    def defer(
        self,
        fn: Callable[..., Any],
        delay: float = 0.0,
        priority: int = NORMAL,
        args: tuple = (),
    ) -> None:
        """Schedule ``fn(*args)`` on the calendar ``delay`` ns from now.

        The callback fast tier: one calendar entry, no :class:`Event` or
        generator allocation.  The callable runs exactly as an event at
        the same ``(time, priority, insertion order)`` would — both
        tiers share one calendar and one tie-break rule.  Exceptions
        raised by ``fn`` propagate out of :meth:`step`/:meth:`run`
        (callback-tier work must never die silently).

        Use for fire-and-forget hardware machinery; keep stateful actors
        that wait, block or get interrupted on the :class:`Process` tier.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot defer {fn!r} into the past: "
                f"delay={delay!r} at now={self._now!r}"
            )
        self._push(self._now + delay, priority, fn, args)

    def defer_at(
        self,
        fn: Callable[..., Any],
        at: float,
        priority: int = NORMAL,
        args: tuple = (),
    ) -> None:
        """Schedule ``fn(*args)`` at the absolute time ``at``.

        The compiled-chain primitive: a caller that has pre-folded a
        per-hop delay sequence into one terminal timestamp (summing
        left-to-right, so the float result is bit-identical to hop-by-hop
        scheduling) lands the whole chain as a single calendar entry.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot defer {fn!r} into the past: "
                f"at={at!r} before now={self._now!r}"
            )
        self._push(at, priority, fn, args)

    def chain(
        self,
        *steps: tuple[float, Callable[[], Any]],
        priority: int = NORMAL,
    ) -> None:
        """Run ``(delay, fn)`` steps sequentially on the callback tier.

        Each step is scheduled only when the previous one fires, so the
        clock advances exactly as a generator yielding one timeout per
        step would: step *k* runs at ``(...((now + d0) + d1)... + dk)``
        — the same floating-point sum, bit for bit.  An exception in a
        step surfaces and abandons the remaining steps.
        """
        if not steps:
            return
        index = 0

        def advance() -> None:
            nonlocal index
            fn = steps[index][1]
            index += 1
            fn()
            if index < len(steps):
                self.defer(advance, steps[index][0], priority)

        self.defer(advance, steps[0][0], priority)

    def _ensure_active(self) -> bool:
        """Advance the wheel until the active bucket holds the next entry.

        Returns False when the whole calendar (active run, wheel and
        overflow) is empty.  Runs no callbacks — semantically pure, so
        :meth:`peek` can call it safely.
        """
        while True:
            if self._active_pos < len(self._active):
                return True
            if self._active:
                self._active.clear()
                self._active_pos = 0
            overflow = self._overflow
            if self._wheel_count == 0 and not overflow:
                return False
            if overflow:
                if self._wheel_count == 0:
                    head = overflow[0][0]
                    if head == float("inf"):
                        # Non-finite times can't be bucketed; drain them
                        # straight through the active run, heap-ordered.
                        self._active = [heapq.heappop(overflow)]
                        self._active_pos = 0
                        return True
                    # Nothing in range: jump the cursor straight to the
                    # earliest overflow entry's bucket.
                    jump = int(head * _WHEEL_INV_GRAIN)
                    if jump > self._cursor:
                        self._cursor = jump
                # Migrate everything now inside the window.  The limit is
                # exact: grain is a power of two, so the comparison
                # agrees bitwise with the bucket-index arithmetic.
                limit = (self._cursor + _WHEEL_SLOTS) * _WHEEL_GRAIN_NS
                wheel = self._wheel
                while overflow and overflow[0][0] < limit:
                    entry = heapq.heappop(overflow)
                    wheel[int(entry[0] * _WHEEL_INV_GRAIN) % _WHEEL_SLOTS].append(entry)
                    self._wheel_count += 1
            if self._wheel_count:
                wheel = self._wheel
                cursor = self._cursor
                for ahead in range(_WHEEL_SLOTS):
                    slot = (cursor + ahead) % _WHEEL_SLOTS
                    bucket = wheel[slot]
                    if bucket:
                        self._cursor = cursor + ahead
                        bucket.sort()
                        self._active = bucket
                        wheel[slot] = []
                        self._active_pos = 0
                        self._wheel_count -= len(bucket)
                        break
            # Loop: the overflow may still hold entries beyond the (now
            # advanced) window, or the active run is ready.

    def step(self) -> None:
        """Process exactly one entry from the calendar."""
        if self._active_pos >= len(self._active) and not self._ensure_active():
            raise SimulationError("attempt to step an empty event calendar")
        entry = self._active[self._active_pos]
        self._active_pos += 1
        when = entry[0]
        item = entry[3]
        args = entry[4]
        # Recycle before running: the callback may push new entries and
        # immediately reuse this slab slot (locals hold what we need).
        entry[3] = None
        entry[4] = None
        self._free.append(entry)
        self._now = when
        self._processed_events += 1
        if self.on_event is not None:
            self.on_event(when, item)
        if args is None:
            item._mark_processed()
        else:
            item(*args)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._ensure_active():
            return self._active[self._active_pos][0]
        return float("inf")

    def fast_forward(self, to: float, skipped_events: int = 0) -> int:
        """Jump the clock to ``to``, discarding every pending entry.

        The analytic fast-forward tier's terminal operation: a driver
        that has validated a closed-form steady-state model synthesises
        the final virtual time and calls this instead of replaying the
        remaining events.  All discarded calendar entries plus
        ``skipped_events`` (the driver's count of events that were never
        scheduled at all) are accounted in
        :attr:`events_fast_forwarded`.  Returns the total credited.
        """
        if to < self._now:
            raise SimulationError(
                f"cannot fast-forward to {to!r}, clock is already at {self._now!r}"
            )
        dropped = (
            len(self._active) - self._active_pos
            + self._wheel_count
            + len(self._overflow)
        )
        self._active.clear()
        self._active_pos = 0
        if self._wheel_count:
            for bucket in self._wheel:
                bucket.clear()
            self._wheel_count = 0
        self._overflow.clear()
        self._now = to
        cursor = int(to * _WHEEL_INV_GRAIN)
        if cursor > self._cursor:
            self._cursor = cursor
        credited = dropped + skipped_events
        self._fast_forwarded_events += credited
        return credited

    def _pending_count(self) -> int:
        """Number of calendar entries not yet processed (all tiers)."""
        return (
            len(self._active) - self._active_pos
            + self._wheel_count
            + len(self._overflow)
        )

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the calendar drains;
            a number
                run until the clock reaches that time (exclusive of
                events scheduled exactly at it);
            an :class:`Event`
                run until that event has been processed, returning its
                value (or raising its exception).
        """
        if until is None:
            while self._ensure_active():
                self.step()
            return None

        if isinstance(until, Event):
            while not until._processed:
                if not self._ensure_active():
                    raise SimulationError(
                        "event calendar drained before the awaited event fired "
                        "(deadlock: some process is waiting forever)"
                    )
                self.step()
            if until._ok:
                return until._value
            raise until._value

        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon!r}, clock is already at {self._now!r}"
            )
        while self._ensure_active() and self._active[self._active_pos][0] < horizon:
            self.step()
        # The clock always ends at the horizon, even when the calendar
        # drained before reaching it: time passes whether or not events
        # were left to process.
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Environment t={self._now:.2f}ns queued={self._pending_count()}>"
