"""``repro.trace``: span-based observability for the simulated testbed.

The paper's whole argument is an attribution of nanoseconds to
components; this package makes that attribution *inspectable* for any
single run.  While a :func:`trace_session` is active, every
:class:`~repro.sim.engine.Environment` created inside it carries a real
:class:`Tracer` instead of the default no-op, and the instrumented
layers (MPI → UCP → UCT → NIC → PCIe → wire/switch → root complex)
record nested spans in virtual time.  Afterwards the session can be

- exported to Chrome trace-event / Perfetto JSON (:mod:`.perfetto`),
- rendered as a plain-text timeline (:func:`repro.reporting.render_timeline`),
- collapsed into a per-message critical-path breakdown
  (:mod:`.critical_path`) comparable to :mod:`repro.core.breakdown`.

Tracing is zero-cost when disabled: outside a session environments hold
:data:`repro.sim.engine.NULL_TRACER`, and hot loops guard on
``tracer.enabled`` before doing any per-span work.

Usage::

    from repro.bench import run_am_lat
    from repro.trace import trace_session

    with trace_session() as session:
        result = run_am_lat(iterations=50)
    session.write_chrome_trace("trace.json")
    print(session.summary())
"""

from __future__ import annotations

from typing import Any

from repro.sim import engine as _engine
from repro.trace.critical_path import (
    COMPONENT_LABELS,
    RECOVERY_EVENT_NAMES,
    classify_span,
    critical_path,
    critical_path_breakdown,
    critical_path_report,
    pick_breakdown_message,
    recovery_events,
    recovery_summary,
)
from repro.trace.golden import timeline_digest, timeline_lines
from repro.trace.metrics import DurationHistogram, LayerMetrics
from repro.trace.perfetto import (
    chrome_trace,
    instants_from_chrome,
    span_forest,
    spans_from_chrome,
    write_chrome_trace,
)
from repro.trace.tracer import DEFAULT_CAPACITY, Span, Tracer

__all__ = [
    "COMPONENT_LABELS",
    "DurationHistogram",
    "LayerMetrics",
    "RECOVERY_EVENT_NAMES",
    "Span",
    "TraceSession",
    "Tracer",
    "chrome_trace",
    "classify_span",
    "critical_path",
    "critical_path_breakdown",
    "critical_path_report",
    "instants_from_chrome",
    "pick_breakdown_message",
    "recovery_events",
    "recovery_summary",
    "span_forest",
    "spans_from_chrome",
    "timeline_digest",
    "timeline_lines",
    "trace_session",
    "write_chrome_trace",
]


class TraceSession:
    """Collects the tracers of every environment created while active.

    Workloads build their own :class:`~repro.node.testbed.Testbed` (and
    with it, their own environment), so callers cannot hand a tracer in;
    instead the session installs a factory on the engine and gathers the
    tracers it mints.  Use as a context manager via :func:`trace_session`.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._capacity = capacity
        self._previous: Any = None
        self._active = False
        self.tracers: list[Tracer] = []

    # -- lifecycle ---------------------------------------------------------
    def _make_tracer(self, env: Any) -> Tracer:
        tracer = Tracer(env, capacity=self._capacity)
        self.tracers.append(tracer)
        return tracer

    def __enter__(self) -> "TraceSession":
        self._previous = _engine._tracer_factory
        _engine.set_tracer_factory(self._make_tracer)
        self._active = True
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        _engine.set_tracer_factory(self._previous)
        self._active = False
        return False

    # -- aggregation -------------------------------------------------------
    @property
    def tracer(self) -> Tracer:
        """The primary (most recently created) tracer.

        Raises
        ------
        RuntimeError
            If no environment was created inside the session.
        """
        if not self.tracers:
            raise RuntimeError(
                "no Environment was created inside this trace session"
            )
        return self.tracers[-1]

    def spans(self) -> list[Span]:
        """All closed spans across every tracer, ordered by start time."""
        spans = [span for tracer in self.tracers for span in tracer.spans()]
        spans.sort(key=lambda s: (s.t0, s.span_id))
        return spans

    def instants(self) -> list[Span]:
        """All instant events across every tracer, ordered by time."""
        marks = [mark for tracer in self.tracers for mark in tracer.instants()]
        marks.sort(key=lambda s: (s.t0, s.span_id))
        return marks

    def spans_for_message(self, msg_id: Any) -> list[Span]:
        """All closed spans tagged with ``msg_id``, across tracers."""
        spans = [
            span
            for tracer in self.tracers
            for span in tracer.spans_for_message(msg_id)
        ]
        spans.sort(key=lambda s: (s.t0, s.span_id))
        return spans

    def summary(self) -> dict[str, Any]:
        """Merged JSON-encodable digest across every tracer."""
        merged: dict[str, Any] = {
            "tracers": len(self.tracers),
            "spans": 0,
            "instants": 0,
            "dropped_spans": 0,
            "events": {"executed": 0, "fast_forwarded": 0},
            "per_layer": {},
            "counters": {},
        }
        for tracer in self.tracers:
            digest = tracer.summary()
            merged["spans"] += digest["spans"]
            merged["instants"] += digest["instants"]
            merged["dropped_spans"] += digest["dropped_spans"]
            merged["events"]["executed"] += digest["events"]["executed"]
            merged["events"]["fast_forwarded"] += digest["events"]["fast_forwarded"]
            for layer, stats in digest["per_layer"].items():
                into = merged["per_layer"].setdefault(
                    layer, {"spans": 0, "total_ns": 0.0, "instants": 0}
                )
                into["spans"] += stats["spans"]
                into["total_ns"] += stats["total_ns"]
                into["instants"] += stats["instants"]
            for layer, names in digest["counters"].items():
                into = merged["counters"].setdefault(layer, {})
                for name, value in names.items():
                    into[name] = into.get(name, 0.0) + value
        return merged

    def write_chrome_trace(self, path: Any) -> None:
        """Export every tracer's spans as one Perfetto JSON file."""
        write_chrome_trace(self.tracers, path)


def trace_session(capacity: int = DEFAULT_CAPACITY) -> TraceSession:
    """A context manager enabling tracing for environments created inside."""
    return TraceSession(capacity=capacity)
