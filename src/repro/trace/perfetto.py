"""Chrome trace-event / Perfetto JSON export and re-import.

The exporter emits the JSON object format understood by both
``chrome://tracing`` and https://ui.perfetto.dev: a ``traceEvents`` list
of ``"ph": "X"`` complete events (one per closed span), ``"ph": "i"``
instants, and ``"ph": "M"`` metadata events naming each track.  Times
are exported in microseconds (the format's unit) from the simulator's
nanosecond clock; ``displayTimeUnit`` asks the viewer for nanosecond
display.

Span identity survives the round trip: each event's ``args`` carries
``span_id`` and ``parent`` alongside the user attributes, so
:func:`spans_from_chrome` can rebuild the exact span forest from a
loaded JSON file — which is how the exporter is tested.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.trace.tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "instants_from_chrome",
    "spans_from_chrome",
    "span_forest",
    "write_chrome_trace",
]

#: Single simulated machine; tracks are distinguished by tid.
_PID = 1


def _jsonable(value: Any) -> Any:
    """Attribute values as JSON scalars (repr for anything exotic)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _track_ids(spans: Iterable[Span]) -> dict[str, int]:
    """Deterministic track-name -> tid mapping (sorted, 1-based)."""
    return {track: tid for tid, track in
            enumerate(sorted({s.track for s in spans}), start=1)}


def chrome_trace(tracers: Tracer | Iterable[Tracer]) -> dict[str, Any]:
    """The full trace-event JSON object for one or more tracers."""
    if isinstance(tracers, Tracer):
        tracers = [tracers]
    spans: list[Span] = []
    instants: list[Span] = []
    for tracer in tracers:
        spans.extend(tracer.spans())
        instants.extend(tracer.instants())

    tids = _track_ids([*spans, *instants])
    events: list[dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
                "args": {"name": track},
            }
        )
    for span in sorted(spans, key=lambda s: (s.t0, s.span_id)):
        end = span.t1 if span.t1 is not None else span.t0
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.layer,
                "pid": _PID,
                "tid": tids[span.track],
                "ts": span.t0 / 1e3,
                "dur": (end - span.t0) / 1e3,
                "args": {
                    "span_id": span.span_id,
                    "parent": span.parent_id,
                    **{k: _jsonable(v) for k, v in span.attrs.items()},
                },
            }
        )
    for mark in sorted(instants, key=lambda s: (s.t0, s.span_id)):
        events.append(
            {
                "ph": "i",
                "name": mark.name,
                "cat": mark.layer,
                "pid": _PID,
                "tid": tids[mark.track],
                "ts": mark.t0 / 1e3,
                "s": "t",
                "args": {
                    "span_id": mark.span_id,
                    "parent": mark.parent_id,
                    **{k: _jsonable(v) for k, v in mark.attrs.items()},
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracers: Tracer | Iterable[Tracer], path: Any) -> None:
    """Serialize :func:`chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracers), handle)
        handle.write("\n")


def spans_from_chrome(payload: dict[str, Any]) -> list[Span]:
    """Rebuild :class:`Span` objects from loaded trace-event JSON.

    Only ``"X"`` (complete) events become spans; instants are skipped.
    Track names are recovered from the ``thread_name`` metadata events.
    """
    track_names: dict[int, str] = {}
    for event in payload["traceEvents"]:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            track_names[event["tid"]] = event["args"]["name"]

    spans: list[Span] = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id")
        parent_id = args.pop("parent", None)
        t0 = event["ts"] * 1e3
        span = Span(
            span_id=span_id,
            parent_id=parent_id,
            layer=event.get("cat", ""),
            name=event["name"],
            track=track_names.get(event["tid"], str(event["tid"])),
            t0=t0,
            attrs=args,
        )
        span.t1 = t0 + event.get("dur", 0.0) * 1e3
        spans.append(span)
    return spans


def instants_from_chrome(payload: dict[str, Any]) -> list[Span]:
    """Rebuild instant events (``"ph": "i"``) from loaded trace JSON.

    The complement of :func:`spans_from_chrome`, for analyses over
    point events — e.g. fault/recovery marks
    (:func:`repro.trace.critical_path.recovery_summary`).
    """
    track_names: dict[int, str] = {}
    for event in payload["traceEvents"]:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            track_names[event["tid"]] = event["args"]["name"]

    marks: list[Span] = []
    for event in payload["traceEvents"]:
        if event.get("ph") != "i":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id")
        parent_id = args.pop("parent", None)
        t0 = event["ts"] * 1e3
        mark = Span(
            span_id=span_id,
            parent_id=parent_id,
            layer=event.get("cat", ""),
            name=event["name"],
            track=track_names.get(event["tid"], str(event["tid"])),
            t0=t0,
            attrs=args,
        )
        mark.t1 = t0
        marks.append(mark)
    return marks


def span_forest(
    spans: Iterable[Span],
) -> tuple[list[Span], dict[int, list[Span]]]:
    """Group spans into (roots, children-by-parent-id).

    Children are ordered by start time; a span whose parent is absent
    (evicted from the ring buffer) counts as a root.
    """
    spans = sorted(spans, key=lambda s: (s.t0, s.span_id))
    by_id = {span.span_id: span for span in spans}
    roots: list[Span] = []
    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children
