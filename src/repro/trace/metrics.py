"""Per-layer counters and duration histograms for traced runs.

Aggregates are cheap enough to keep even for very long runs: counters
are plain floats, and durations feed power-of-two bucket histograms
(bucket *k* holds durations in ``[2^k, 2^(k+1))`` nanoseconds), which
capture the 10 ns – 10 µs dynamic range of the modelled components in a
couple dozen integers per (layer, name) pair.
"""

from __future__ import annotations

from typing import Any

__all__ = ["DurationHistogram", "LayerMetrics"]

#: Highest histogram bucket: 2^24 ns ≈ 16.8 ms, far above any single span.
MAX_BUCKET = 24


class DurationHistogram:
    """Power-of-two bucketed histogram of span durations in nanoseconds."""

    __slots__ = ("buckets", "count", "total_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.buckets = [0] * (MAX_BUCKET + 1)
        self.count = 0
        self.total_ns = 0.0
        self.min_ns = float("inf")
        self.max_ns = 0.0

    def observe(self, duration_ns: float) -> None:
        """Add one duration sample."""
        index = 0
        remaining = duration_ns
        while remaining >= 2.0 and index < MAX_BUCKET:
            remaining /= 2.0
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total_ns += duration_ns
        self.min_ns = min(self.min_ns, duration_ns)
        self.max_ns = max(self.max_ns, duration_ns)

    @property
    def mean_ns(self) -> float:
        """Arithmetic mean of observed durations (0 when empty)."""
        return self.total_ns / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-encodable digest (buckets trimmed of trailing zeros)."""
        last = max((i for i, n in enumerate(self.buckets) if n), default=-1)
        return {
            "count": self.count,
            "total_ns": self.total_ns,
            "mean_ns": self.mean_ns,
            "min_ns": self.min_ns if self.count else 0.0,
            "max_ns": self.max_ns,
            "log2_buckets": self.buckets[: last + 1],
        }


class LayerMetrics:
    """Counters and histograms keyed by (layer, name)."""

    __slots__ = ("_counters", "_histograms", "_instants")

    def __init__(self) -> None:
        self._counters: dict[str, dict[str, float]] = {}
        self._histograms: dict[str, dict[str, DurationHistogram]] = {}
        self._instants: dict[str, dict[str, int]] = {}

    def bump(self, layer: str, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` under ``layer``."""
        layer_counters = self._counters.setdefault(layer, {})
        layer_counters[name] = layer_counters.get(name, 0.0) + value

    def observe_span(self, layer: str, name: str, duration_ns: float) -> None:
        """Record one closed span's duration."""
        histogram = self._histograms.setdefault(layer, {}).get(name)
        if histogram is None:
            histogram = self._histograms[layer][name] = DurationHistogram()
        histogram.observe(duration_ns)

    def observe_instant(self, layer: str, name: str) -> None:
        """Record one instant event."""
        layer_instants = self._instants.setdefault(layer, {})
        layer_instants[name] = layer_instants.get(name, 0) + 1

    def histogram(self, layer: str, name: str) -> DurationHistogram | None:
        """The histogram for (layer, name), if any spans were observed."""
        return self._histograms.get(layer, {}).get(name)

    def counters(self) -> dict[str, dict[str, float]]:
        """All explicit counters, nested ``{layer: {name: value}}``."""
        return {layer: dict(names) for layer, names in self._counters.items()}

    def per_layer(self) -> dict[str, Any]:
        """Per-layer rollup: span counts, total time, per-name stats."""
        layers = sorted(set(self._histograms) | set(self._instants))
        rollup: dict[str, Any] = {}
        for layer in layers:
            histograms = self._histograms.get(layer, {})
            rollup[layer] = {
                "spans": sum(h.count for h in histograms.values()),
                "total_ns": sum(h.total_ns for h in histograms.values()),
                "instants": sum(self._instants.get(layer, {}).values()),
                "by_name": {
                    name: histogram.to_dict()
                    for name, histogram in sorted(histograms.items())
                },
            }
        return rollup
