"""Golden-timeline digests: deterministic fingerprints of a traced run.

The kernel promises bit-identical virtual-time behaviour for seeded
runs — across repeated executions *and* across refactors of the event
kernel itself.  This module reduces everything a
:class:`~repro.trace.TraceSession` recorded to two stable SHA-256
digests so that promise is testable with a one-line assertion:

``exact``
    Hash over the record stream in *begin order* (span-id order per
    tracer).  Two runs with equal ``exact`` digests recorded the same
    events, at the same virtual times, in the same order.
``sorted``
    Hash over the lexicographically sorted record lines.  Insensitive
    to the relative order of records that carry identical timestamps,
    but still sensitive to every virtual timestamp, layer, name, track
    and attribute.  This is the digest pinned across kernel refactors:
    a refactor may legally reorder *simultaneous* bookkeeping (e.g. by
    collapsing interior calendar hops) but must never move an
    observable event in virtual time.

Timestamps are rendered with :meth:`float.hex`, so the digests are
sensitive to the last bit of every double — "close enough" does not
pass.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trace.tracer import Span, Tracer

__all__ = ["timeline_digest", "timeline_lines"]


def _render(value: Any) -> Any:
    """Canonical JSON-encodable rendering of one attribute value."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def _line(kind: str, span: "Span") -> str:
    attrs = {key: _render(val) for key, val in sorted(span.attrs.items())}
    record = [
        kind,
        span.layer,
        span.name,
        span.track,
        float(span.t0).hex(),
        float(span.t1).hex() if span.t1 is not None else "open",
        attrs,
    ]
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def timeline_lines(tracers: Iterable["Tracer"]) -> list[str]:
    """One canonical text line per recorded span/instant, in begin order."""
    lines: list[str] = []
    for tracer in tracers:
        records = [("span", span) for span in tracer.spans()]
        records += [("instant", mark) for mark in tracer.instants()]
        # span_id is allocated at begin time from a single per-tracer
        # counter shared by spans and instants, so sorting by it yields
        # the stream in the order the run emitted it.
        records.sort(key=lambda pair: pair[1].span_id)
        lines.extend(_line(kind, span) for kind, span in records)
    return lines


def timeline_digest(tracers: Iterable["Tracer"]) -> dict[str, Any]:
    """Digest of everything ``tracers`` recorded.

    Returns ``{"events": N, "exact": sha256, "sorted": sha256}``; see
    the module docstring for what each hash is sensitive to.
    """
    lines = timeline_lines(tracers)
    exact = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    in_order = hashlib.sha256("\n".join(sorted(lines)).encode()).hexdigest()
    return {"events": len(lines), "exact": exact, "sorted": in_order}
