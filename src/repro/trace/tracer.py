"""The span recorder: virtual-time spans and instants on a ring buffer.

A :class:`Span` is one named interval on one *track* (a swim-lane in the
rendered timeline, e.g. ``node1.cpu0`` or ``node1.pcie.down``), opened
and closed at simulated-clock timestamps.  Spans nest: the tracer keeps a
per-track stack of open spans, so a span opened while another is open on
the same track becomes its child.  Hardware tracks (PCIe link, wire)
close spans out of order when several packets are in flight; ``end``
therefore removes the span from the stack by identity rather than
popping blindly.

Recording is bounded: closed spans land on a ``deque(maxlen=capacity)``
ring buffer, so a long campaign can keep tracing enabled without
unbounded memory growth — the newest spans win, and :meth:`Tracer.summary`
reports how many were dropped.

The disabled case never reaches this module: :class:`repro.sim.engine.NullTracer`
implements the same surface as no-ops and is what every
:class:`~repro.sim.engine.Environment` carries by default.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.trace.metrics import LayerMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["Span", "Tracer"]

#: Default ring-buffer capacity (closed spans + instants each).
DEFAULT_CAPACITY = 262_144


class Span:
    """One named interval of virtual time on one track."""

    __slots__ = ("span_id", "parent_id", "layer", "name", "track", "t0", "t1", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        layer: str,
        name: str,
        track: str,
        t0: float,
        attrs: dict[str, Any],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.layer = layer
        self.name = name
        self.track = track
        self.t0 = t0
        #: Close timestamp; ``None`` while the span is still open.
        self.t1: float | None = t0
        self.attrs = attrs

    @property
    def duration_ns(self) -> float:
        """Span length in nanoseconds (0 while still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span #{self.span_id} {self.layer}:{self.name} on {self.track} "
            f"[{self.t0:.2f}, {self.t1 if self.t1 is not None else '...'}]>"
        )


class _SpanContext:
    """Context manager pairing one ``begin`` with its ``end``."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span | None) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span | None:
        return self._span

    def __exit__(self, *exc_info: Any) -> bool:
        if self._span is not None:
            self._tracer.end(self._span)
        return False


class Tracer:
    """Records spans and instants against an environment's virtual clock.

    One tracer serves one :class:`~repro.sim.engine.Environment`;
    :func:`repro.trace.trace_session` installs a factory so every
    environment created inside the session gets its own tracer, and the
    session aggregates them afterwards.
    """

    #: Instrumented hot loops check this before doing per-span work.
    enabled = True

    def __init__(self, env: "Environment | None" = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self._env = env
        self._ids = itertools.count(1)
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._instants: deque[Span] = deque(maxlen=capacity)
        self._open: dict[str, list[Span]] = {}
        self._closed_total = 0
        self._instant_total = 0
        self.metrics = LayerMetrics()

    # -- clock -------------------------------------------------------------
    def bind(self, env: "Environment") -> "Tracer":
        """Attach this tracer to ``env``'s clock; returns self."""
        self._env = env
        return self

    @property
    def now(self) -> float:
        """Current virtual time, 0.0 before any environment is bound."""
        return self._env._now if self._env is not None else 0.0

    # -- recording ---------------------------------------------------------
    def begin(self, layer: str, name: str, track: str | None = None,
              **attrs: Any) -> Span:
        """Open a span at the current virtual time and return it."""
        track = track or layer
        stack = self._open.setdefault(track, [])
        parent_id = stack[-1].span_id if stack else None
        span = Span(next(self._ids), parent_id, layer, name, track, self.now, attrs)
        span.t1 = None
        stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` at the current virtual time."""
        span.t1 = self.now
        stack = self._open.get(span.track)
        if stack:
            # Out-of-order closes happen on hardware tracks with several
            # packets in flight; search from the top of the stack.
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i]
                    break
        self._spans.append(span)
        self._closed_total += 1
        self.metrics.observe_span(span.layer, span.name, span.duration_ns)

    def span(self, layer: str, name: str, track: str | None = None,
             **attrs: Any) -> _SpanContext:
        """``with tracer.span(...)``: begin on enter, end on exit."""
        return _SpanContext(self, self.begin(layer, name, track, **attrs))

    def instant(self, layer: str, name: str, track: str | None = None,
                **attrs: Any) -> Span:
        """Record a zero-duration marker event."""
        track = track or layer
        stack = self._open.get(track)
        parent_id = stack[-1].span_id if stack else None
        mark = Span(next(self._ids), parent_id, layer, name, track, self.now, attrs)
        self._instants.append(mark)
        self._instant_total += 1
        self.metrics.observe_instant(layer, name)
        return mark

    def counter(self, layer: str, name: str, value: float = 1.0) -> None:
        """Bump the named per-layer counter by ``value``."""
        self.metrics.bump(layer, name, value)

    # -- inspection --------------------------------------------------------
    def spans(self) -> list[Span]:
        """Closed spans still in the ring buffer, in close order."""
        return list(self._spans)

    def instants(self) -> list[Span]:
        """Instant events still in the ring buffer, in record order."""
        return list(self._instants)

    def open_spans(self) -> list[Span]:
        """Spans begun but not yet ended (normally empty after a run)."""
        return [span for stack in self._open.values() for span in stack]

    def spans_for_message(self, msg_id: Any) -> list[Span]:
        """Closed spans tagged ``msg=msg_id``, ordered by start time."""
        matches = [s for s in self._spans if s.attrs.get("msg") == msg_id]
        matches.sort(key=lambda s: (s.t0, s.t1 if s.t1 is not None else s.t0))
        return matches

    @property
    def dropped_spans(self) -> int:
        """Closed spans evicted from the ring buffer."""
        return self._closed_total - len(self._spans)

    def summary(self) -> dict[str, Any]:
        """JSON-encodable digest: totals, drops and per-layer metrics.

        ``events`` reports the bound environment's kernel work split:
        entries the event loop actually executed versus entries credited
        by the analytic fast-forward (which never reach the tracer — a
        fast-forwarded span count of zero with a large credit is the
        expected shape, not a tracing bug).
        """
        executed = fast_forwarded = 0
        if self._env is not None:
            executed = getattr(self._env, "events_executed", 0)
            fast_forwarded = getattr(self._env, "events_fast_forwarded", 0)
        return {
            "spans": self._closed_total,
            "instants": self._instant_total,
            "dropped_spans": self.dropped_spans,
            "open_spans": len(self.open_spans()),
            "events": {
                "executed": executed,
                "fast_forwarded": fast_forwarded,
            },
            "per_layer": self.metrics.per_layer(),
            "counters": self.metrics.counters(),
        }
