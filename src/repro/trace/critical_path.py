"""Critical-path extraction: one message's spans → a Fig-10 breakdown.

Every instrumented layer tags the spans it opens for a specific message
with ``msg=<message id>``.  Walking those spans for one ping of an
``am_lat`` run recovers exactly the six stages of the paper's Figure 10
latency breakdown — measured from the simulated timeline rather than
from the closed-form component model — so the two can be cross-checked:
under the deterministic paper testbed they must agree within the paper's
5% noise margin (in practice, exactly).

The ACK return path is deliberately excluded: ACK frames carry the same
message object as the data frame they acknowledge, so wire/switch spans
are classified only when their ``kind`` attribute is ``"data"``, and
PCIe spans only for the forward-path TLP purposes.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.breakdown import Breakdown
from repro.trace.tracer import Span, Tracer

__all__ = [
    "COMPONENT_LABELS",
    "RECOVERY_EVENT_NAMES",
    "classify_span",
    "critical_path",
    "critical_path_breakdown",
    "critical_path_report",
    "pick_breakdown_message",
    "recovery_events",
    "recovery_summary",
]

#: Figure-10 stage labels, in path order (initiator → target memory).
COMPONENT_LABELS = ("llp_post", "tx_pcie", "wire", "switch", "rx_pcie", "rc_to_mem")


def classify_span(span: Span) -> str | None:
    """The Fig-10 component a span contributes to, or ``None``.

    Only forward-path spans classify; progress loops, ACK frames,
    doorbells and CQE writes return ``None``.
    """
    if span.layer == "llp" and span.name == "llp_post":
        return "llp_post"
    if span.layer == "pcie":
        purpose = span.attrs.get("purpose")
        if span.name == "tlp":
            if purpose == "pio_post":
                return "tx_pcie"
            if purpose == "payload_write":
                return "rx_pcie"
        elif span.name == "rc_to_mem" and purpose == "payload_write":
            return "rc_to_mem"
    if span.layer == "network" and span.attrs.get("kind") == "data":
        if span.name == "wire":
            return "wire"
        if span.name == "switch":
            return "switch"
    return None


def critical_path(source: Tracer | Iterable[Span], msg_id: Any) -> list[Span]:
    """The message's forward-path spans, ordered by start time.

    ``source`` is a tracer or any iterable of closed spans (e.g. spans
    reloaded from an exported Perfetto file).
    """
    if isinstance(source, Tracer):
        spans = source.spans_for_message(msg_id)
    else:
        spans = sorted(
            (s for s in source if s.attrs.get("msg") == msg_id),
            key=lambda s: (s.t0, s.span_id),
        )
    return [span for span in spans if classify_span(span) is not None]


def critical_path_breakdown(
    source: Tracer | Iterable[Span], msg_id: Any
) -> Breakdown:
    """Per-component time of one message, as a :class:`Breakdown`.

    Labels and order match :func:`repro.core.breakdown.fig10_latency_llp`
    so the two are directly comparable (components absent from the traced
    topology — e.g. ``switch`` on a direct-attached fabric — report 0).
    """
    totals = {label: 0.0 for label in COMPONENT_LABELS}
    for span in critical_path(source, msg_id):
        totals[classify_span(span)] += span.duration_ns
    return Breakdown.build(f"Latency (traced, msg {msg_id})", totals)


def pick_breakdown_message(source: Tracer | Iterable[Span]) -> Any | None:
    """The last traced message with a complete forward path, if any.

    "Complete" means its breakdown saw both a wire crossing and the
    final RC-to-MEM DMA — the default message the CLI's ``trace`` and
    ``analyze --what critical-path`` commands report on.
    """
    spans = source.spans() if isinstance(source, Tracer) else list(source)
    posted = [
        s.attrs.get("msg")
        for s in spans
        if s.layer == "llp" and s.name == "llp_post"
    ]
    for msg_id in reversed(posted):
        breakdown = critical_path_breakdown(spans, msg_id)
        if breakdown.value("rc_to_mem") > 0 and breakdown.value("wire") > 0:
            return msg_id
    return None


#: Instant-event names emitted by the fault-injection/recovery machinery
#: (see docs/faults.md): the injection itself, NIC transport recovery,
#: PCIe ACKNAK-timer replays and surfaced transport errors.
RECOVERY_EVENT_NAMES = frozenset(
    {"fault", "retransmit", "acknak_replay", "transport_error", "frame_discarded"}
)


def recovery_events(
    source: Tracer | Iterable[Span], msg_id: Any = None
) -> list[Span]:
    """Fault and recovery instants, ordered by time.

    ``source`` is a tracer (its instant buffer is consulted) or any
    iterable of instant events.  With ``msg_id`` only events tagged for
    that message are kept; injection sites that act below the message
    level (e.g. PCIe DLLPs) carry no ``msg`` tag and are excluded by a
    message filter.
    """
    marks = source.instants() if isinstance(source, Tracer) else list(source)
    chosen = [m for m in marks if m.name in RECOVERY_EVENT_NAMES]
    if msg_id is not None:
        chosen = [m for m in chosen if m.attrs.get("msg") == msg_id]
    chosen.sort(key=lambda s: (s.t0, s.span_id))
    return chosen


def recovery_summary(source: Tracer | Iterable[Span]) -> dict[str, int]:
    """Event-name → count across all fault/recovery instants.

    The complement of :func:`critical_path_breakdown` for fault runs:
    the breakdown attributes nanoseconds to forward-path components,
    this attributes the *extra* work to injection and recovery.  Always
    contains every :data:`RECOVERY_EVENT_NAMES` key (0 when absent), so
    callers can assert on exact counts.
    """
    counts = {name: 0 for name in sorted(RECOVERY_EVENT_NAMES)}
    for mark in recovery_events(source):
        counts[mark.name] += 1
    return counts


def critical_path_report(
    source: Tracer | Iterable[Span],
    msg_id: Any,
    reference: Breakdown | None = None,
) -> str:
    """Human-readable per-component table, optionally vs a model."""
    traced = critical_path_breakdown(source, msg_id)
    lines = [f"critical path of message {msg_id}: {traced.total_ns:.2f} ns total"]
    header = f"  {'component':<12} {'traced ns':>10} {'share':>7}"
    if reference is not None:
        header += f" {'model ns':>10} {'delta':>7}"
    lines.append(header)
    for label, value, percent in traced.as_rows():
        row = f"  {label:<12} {value:>10.2f} {percent:>6.2f}%"
        if reference is not None:
            model = reference.value(label)
            delta = (value - model) / model * 100.0 if model else 0.0
            row += f" {model:>10.2f} {delta:>+6.2f}%"
        lines.append(row)
    return "\n".join(lines)
