"""Datacenter traffic patterns: who sends to whom.

A pattern is just a list of ordered ``(src, dst)`` rank pairs — the
communication graph one round of the workload drives through the MPI
stacks.  Generators here are pure and deterministic (the random pattern
takes an explicit seed), so a pattern is part of a run's identity: same
pattern + same config → same timeline.

``summarize_link_stats`` rolls a :meth:`Fabric.link_stats` snapshot up
to the aggregates campaigns record per pattern.
"""

from __future__ import annotations

import random
from typing import Any

__all__ = [
    "PATTERNS",
    "all_to_all_pattern",
    "incast_pattern",
    "make_pattern",
    "outcast_pattern",
    "permutation_pattern",
    "summarize_link_stats",
    "uniform_random_pattern",
]


def _check_ranks(n_ranks: int) -> None:
    if n_ranks < 2:
        raise ValueError(f"patterns need at least two ranks, got {n_ranks}")


def permutation_pattern(n_ranks: int, shift: int = 1) -> list[tuple[int, int]]:
    """Cyclic shift: rank i sends to ``(i + shift) mod n`` (no self-sends)."""
    _check_ranks(n_ranks)
    if shift % n_ranks == 0:
        raise ValueError(f"shift {shift} maps every rank to itself (n={n_ranks})")
    return [(i, (i + shift) % n_ranks) for i in range(n_ranks)]


def uniform_random_pattern(
    n_ranks: int, pairs_per_rank: int = 1, seed: int = 2019
) -> list[tuple[int, int]]:
    """Each rank sends to ``pairs_per_rank`` uniform-random peers.

    Destinations exclude the sender; repeats across a rank's picks are
    allowed (two flows to one peer), matching a random-destination
    injection process.
    """
    _check_ranks(n_ranks)
    if pairs_per_rank < 1:
        raise ValueError(f"pairs_per_rank must be >= 1, got {pairs_per_rank}")
    rng = random.Random(seed)
    pairs: list[tuple[int, int]] = []
    for src in range(n_ranks):
        for _ in range(pairs_per_rank):
            dst = rng.randrange(n_ranks - 1)
            if dst >= src:
                dst += 1
            pairs.append((src, dst))
    return pairs


def incast_pattern(n_ranks: int, sink: int = 0) -> list[tuple[int, int]]:
    """All ranks send to one sink — the classic datacenter hot spot."""
    _check_ranks(n_ranks)
    if not 0 <= sink < n_ranks:
        raise ValueError(f"sink {sink} out of range for {n_ranks} ranks")
    return [(src, sink) for src in range(n_ranks) if src != sink]


def outcast_pattern(n_ranks: int, source: int = 0) -> list[tuple[int, int]]:
    """One source sends to all ranks (a scatter / fan-out hot spot)."""
    _check_ranks(n_ranks)
    if not 0 <= source < n_ranks:
        raise ValueError(f"source {source} out of range for {n_ranks} ranks")
    return [(source, dst) for dst in range(n_ranks) if dst != source]


def all_to_all_pattern(n_ranks: int) -> list[tuple[int, int]]:
    """Every ordered pair — the MapReduce-shuffle communication graph."""
    _check_ranks(n_ranks)
    return [
        (src, dst)
        for src in range(n_ranks)
        for dst in range(n_ranks)
        if src != dst
    ]


#: Pattern name → generator, for string-driven workload parameters.
PATTERNS = {
    "permutation": permutation_pattern,
    "uniform_random": uniform_random_pattern,
    "incast": incast_pattern,
    "outcast": outcast_pattern,
    "all_to_all": all_to_all_pattern,
}


def make_pattern(name: str, n_ranks: int, **kwargs: Any) -> list[tuple[int, int]]:
    """Build a named pattern (``kwargs`` forward to its generator)."""
    try:
        generator = PATTERNS[name]
    except KeyError:
        raise ValueError(
            f"unknown pattern {name!r}; choose from {', '.join(sorted(PATTERNS))}"
        ) from None
    return generator(n_ranks, **kwargs)


def summarize_link_stats(stats: dict[str, dict[str, float]]) -> dict[str, Any]:
    """Aggregate a per-link stats snapshot for campaign records.

    Returns total frames/busy time across links, the peak in-flight
    depth anywhere, and the busiest link (by ``busy_ns``) with its own
    numbers — the shape the incast/contention analyses read.
    """
    total_frames = sum(entry["frames"] for entry in stats.values())
    total_busy = sum(entry["busy_ns"] for entry in stats.values())
    peak = max((entry["peak_inflight"] for entry in stats.values()), default=0)
    busiest = max(stats, key=lambda key: stats[key]["busy_ns"]) if stats else None
    return {
        "links": len(stats),
        "total_frames": total_frames,
        "total_busy_ns": total_busy,
        "peak_inflight": peak,
        "busiest_link": busiest,
        "busiest_link_busy_ns": stats[busiest]["busy_ns"] if busiest else 0.0,
        "busiest_link_frames": stats[busiest]["frames"] if busiest else 0,
    }
