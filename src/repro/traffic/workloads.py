"""Traffic runners and campaign workloads over the cluster fabric.

Three families:

* :func:`run_pattern` — drive any ``(src, dst)`` pattern (see
  :mod:`repro.traffic.patterns`) through full MPI stacks, one process
  per rank, with optional bursty on/off gaps; link-occupancy stats are
  reset before and snapshotted after, so each run's roll-up covers only
  its own frames.
* App skeletons — :func:`run_halo_ranks` (1-D halo exchange, the old
  ``repro.apps.stencil`` generalised to N ranks), :func:`run_pserver`
  (parameter-server push/pull rounds), :func:`run_random_access` (the
  GUPS kernel, moved from ``repro.apps.randomaccess``).
* ``*_workload`` wrappers with the uniform campaign signature
  ``workload(config, **params) -> dict`` — registered in
  :mod:`repro.campaign.workloads` as ``traffic``, ``shuffle``,
  ``incast``, ``outcast``, ``halo``, ``stencil``, ``pserver`` and
  ``randomaccess``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Generator
from dataclasses import dataclass
from typing import Any

from repro.bench.multicore import MulticoreResult, run_multicore_put_bw
from repro.hlp.mpi import MpiComm, MpiStack
from repro.network.topology import TopologySpec
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig
from repro.traffic.patterns import make_pattern, summarize_link_stats

__all__ = [
    "RandomAccessResult",
    "halo_workload",
    "incast_workload",
    "outcast_workload",
    "pserver_workload",
    "randomaccess_workload",
    "run_halo_ranks",
    "run_pattern",
    "run_pserver",
    "run_random_access",
    "shuffle_workload",
    "stencil_workload",
    "traffic_pattern_workload",
]


def _with_topology(
    config: SystemConfig, topology: str | TopologySpec | None
) -> SystemConfig:
    if topology is None:
        return config
    spec = TopologySpec.parse(topology) if isinstance(topology, str) else topology
    return config.evolve(
        network=dataclasses.replace(config.network, topology=spec)
    )


class _CommTable:
    """Deterministically-ordered communicator cache over rank stacks."""

    def __init__(self, stacks: list[MpiStack]) -> None:
        self.stacks = stacks
        self._comms: dict[tuple[int, int], MpiComm] = {}

    def comm(self, src: int, dst: int) -> MpiComm:
        key = (src, dst)
        comm = self._comms.get(key)
        if comm is None:
            comm = self.stacks[src].connect(self.stacks[dst])
            self._comms[key] = comm
        return comm


def _rank_stacks(cluster: Cluster, signal_period: int) -> list[MpiStack]:
    return [
        MpiStack(
            cluster.node_for_rank(rank),
            signal_period=signal_period,
            core=cluster.core_for_rank(rank),
        )
        for rank in range(cluster.n_ranks)
    ]


def run_pattern(
    cluster: Cluster,
    pairs: list[tuple[int, int]],
    payload_bytes: int = 8,
    messages_per_pair: int = 4,
    signal_period: int = 64,
    burst_len: int = 0,
    gap_ns: float = 0.0,
) -> dict[str, Any]:
    """Drive ``messages_per_pair`` rounds of a pattern through the fabric.

    Each round every rank posts receives for all its inbound flows,
    sends one message per outbound flow, then waits for the receives —
    lockstep per flow, overlapped across flows.  With ``burst_len > 0``
    a rank idles ``gap_ns`` after every ``burst_len`` rounds (bursty
    on/off injection).  Returns measurements including a link-stats
    roll-up scoped to exactly this run's frames.
    """
    if messages_per_pair < 1:
        raise ValueError(f"messages_per_pair must be >= 1, got {messages_per_pair}")
    if payload_bytes < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    if burst_len < 0 or gap_ns < 0:
        raise ValueError("burst_len and gap_ns must be >= 0")
    n_ranks = cluster.n_ranks
    for src, dst in pairs:
        if src == dst or not (0 <= src < n_ranks and 0 <= dst < n_ranks):
            raise ValueError(f"bad pair ({src}, {dst}) for {n_ranks} ranks")
    stacks = _rank_stacks(cluster, signal_period)
    table = _CommTable(stacks)
    # Create communicators up front in a fixed order (sender side first,
    # then the receiver's reverse comm used for irecv/wait) so runs are
    # deterministic regardless of process interleaving.
    for src, dst in pairs:
        table.comm(src, dst)
        table.comm(dst, src)
    outbound: dict[int, list[int]] = {r: [] for r in range(n_ranks)}
    inbound: dict[int, list[int]] = {r: [] for r in range(n_ranks)}
    for src, dst in pairs:
        outbound[src].append(dst)
        inbound[dst].append(src)
    env = cluster.env
    cluster.fabric.reset_stats()
    t_start = env.now

    def rank(index: int) -> Generator:
        outs = [table.comm(index, dst) for dst in outbound[index]]
        incs = [table.comm(index, src) for src in inbound[index]]
        for round_index in range(messages_per_pair):
            requests = []
            for comm in incs:
                request = yield from comm.irecv(payload_bytes)
                requests.append((comm, request))
            for comm in outs:
                yield from comm.isend(payload_bytes)
            for comm, request in requests:
                yield from comm.wait(request)
            if burst_len and gap_ns > 0 and (round_index + 1) % burst_len == 0:
                yield env.timeout(gap_ns)

    processes = [
        env.process(rank(index), name=f"traffic.rank{index}")
        for index in range(n_ranks)
        if outbound[index] or inbound[index]
    ]
    env.run(until=env.all_of(processes))
    total_ns = env.now - t_start
    messages = len(pairs) * messages_per_pair
    link_stats = cluster.fabric.link_stats()
    return {
        "n_ranks": n_ranks,
        "processes_per_node": cluster.processes_per_node,
        "flows": len(pairs),
        "messages": messages,
        "payload_bytes": payload_bytes,
        "total_ns": total_ns,
        "message_rate_per_s": messages / total_ns * 1e9 if total_ns else 0.0,
        "link_stats": link_stats,
        **{f"link_{k}": v for k, v in summarize_link_stats(link_stats).items()},
    }


def run_halo_ranks(
    env: Any,
    stacks: list[MpiStack],
    iterations: int = 200,
    halo_bytes: int = 8,
    compute_ns: float = 500.0,
    periodic: bool = False,
) -> dict[str, float]:
    """1-D halo exchange over ``stacks`` (rank i ↔ its chain neighbours).

    Non-periodic by default: rank 0 and rank N-1 have one neighbour, a
    two-rank run being exactly the paper's §7 stencil check.  Records
    rank 0's accumulated communication time and completion instant.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if compute_ns < 0:
        raise ValueError(f"compute_ns must be >= 0, got {compute_ns}")
    n_ranks = len(stacks)
    if n_ranks < 2:
        raise ValueError(f"a halo exchange needs at least two ranks, got {n_ranks}")
    table = _CommTable(stacks)

    def neighbours(index: int) -> list[int]:
        out = []
        if index > 0 or periodic:
            out.append((index - 1) % n_ranks)
        if index < n_ranks - 1 or periodic:
            out.append((index + 1) % n_ranks)
        return out

    for index in range(n_ranks):
        for peer in neighbours(index):
            table.comm(index, peer)
    stats = {"comm_ns": 0.0, "t_end": 0.0}

    def rank(index: int) -> Generator:
        comms = [table.comm(index, peer) for peer in neighbours(index)]
        core = stacks[index].cpu
        record = index == 0
        for _ in range(iterations):
            t0 = env.now
            requests = []
            for comm in comms:
                halo = yield from comm.irecv(halo_bytes)
                requests.append((comm, halo))
            for comm in comms:
                yield from comm.isend(halo_bytes)
            for comm, halo in requests:
                yield from comm.wait(halo)
            if record:
                stats["comm_ns"] += env.now - t0
            if compute_ns > 0:
                yield from core.execute("stencil_compute", mean=compute_ns)
        if record:
            stats["t_end"] = env.now

    processes = [
        env.process(rank(index), name=f"halo.rank{index}")
        for index in range(n_ranks)
    ]
    env.run(until=env.all_of(processes))
    return stats


def run_pserver(
    cluster: Cluster,
    iterations: int = 4,
    push_bytes: int = 8,
    pull_bytes: int = 8,
    server: int = 0,
    signal_period: int = 64,
) -> dict[str, Any]:
    """Parameter-server rounds: workers push (incast), server pulls back
    (outcast) — each iteration is one synchronous SGD-style step."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    n_ranks = cluster.n_ranks
    if not 0 <= server < n_ranks:
        raise ValueError(f"server {server} out of range for {n_ranks} ranks")
    if n_ranks < 2:
        raise ValueError(f"a parameter server needs at least two ranks")
    stacks = _rank_stacks(cluster, signal_period)
    table = _CommTable(stacks)
    workers = [r for r in range(n_ranks) if r != server]
    for worker in workers:
        table.comm(worker, server)
        table.comm(server, worker)
    env = cluster.env
    cluster.fabric.reset_stats()
    t_start = env.now

    def server_rank() -> Generator:
        comms = [table.comm(server, worker) for worker in workers]
        for _ in range(iterations):
            requests = []
            for comm in comms:
                request = yield from comm.irecv(push_bytes)
                requests.append((comm, request))
            for comm, request in requests:
                yield from comm.wait(request)
            for comm in comms:
                yield from comm.isend(pull_bytes)

    def worker_rank(index: int) -> Generator:
        comm = table.comm(index, server)
        for _ in range(iterations):
            yield from comm.isend(push_bytes)
            params = yield from comm.irecv(pull_bytes)
            yield from comm.wait(params)

    processes = [env.process(server_rank(), name=f"pserver.rank{server}")]
    processes += [
        env.process(worker_rank(worker), name=f"pserver.rank{worker}")
        for worker in workers
    ]
    env.run(until=env.all_of(processes))
    total_ns = env.now - t_start
    link_stats = cluster.fabric.link_stats()
    return {
        "n_ranks": n_ranks,
        "processes_per_node": cluster.processes_per_node,
        "workers": len(workers),
        "iterations": iterations,
        "push_bytes": push_bytes,
        "pull_bytes": pull_bytes,
        "total_ns": total_ns,
        "time_per_iteration_ns": total_ns / iterations,
        "link_stats": link_stats,
        **{f"link_{k}": v for k, v in summarize_link_stats(link_stats).items()},
    }


# -- the GUPS kernel (moved from repro.apps.randomaccess) ---------------------


@dataclass
class RandomAccessResult:
    """Outcome of one random-access run."""

    n_cores: int
    update_bytes: int
    updates: int
    #: Aggregate CPU-side update rate.
    gups: float
    #: Aggregate NIC-observed update rate (saturates at the I/O wall).
    nic_gups: float
    #: PCIe credit stalls during the measured window.
    credit_stalls: int

    @property
    def updates_per_core_per_s(self) -> float:
        """Per-core update rate (the Eq. 1 pace when unthrottled)."""
        return self.gups * 1e9 / self.n_cores if self.n_cores else 0.0


def run_random_access(
    n_cores: int = 8,
    config: SystemConfig | None = None,
    updates_per_core: int = 300,
    update_bytes: int = 8,
) -> RandomAccessResult:
    """Run the kernel; remote target addresses are uniform-random, but
    since the simulated NIC's write cost is address-independent the
    timing-relevant behaviour is exactly the multicore injection study,
    which this wraps."""
    result: MulticoreResult = run_multicore_put_bw(
        n_cores,
        config=config or SystemConfig.paper_testbed(),
        n_messages_per_core=updates_per_core,
        payload_bytes=update_bytes,
    )
    return RandomAccessResult(
        n_cores=n_cores,
        update_bytes=update_bytes,
        updates=n_cores * updates_per_core,
        gups=result.aggregate_rate_per_s / 1e9,
        nic_gups=result.nic_rate_per_s / 1e9,
        credit_stalls=result.credit_stalls,
    )


# -- campaign workload wrappers -----------------------------------------------


def traffic_pattern_workload(
    config: SystemConfig,
    pattern: str = "permutation",
    n_nodes: int = 4,
    processes_per_node: int = 1,
    topology: str | None = None,
    payload_bytes: int = 8,
    messages_per_pair: int = 4,
    signal_period: int = 64,
    burst_len: int = 0,
    gap_ns: float = 0.0,
    shift: int = 1,
    pairs_per_rank: int = 1,
    pattern_seed: int = 2019,
    hotspot: int = 0,
) -> dict[str, Any]:
    """Any named pattern on an N-node (× processes_per_node) cluster.

    Pattern-specific knobs: ``shift`` (permutation), ``pairs_per_rank``
    and ``pattern_seed`` (uniform_random), ``hotspot`` — the sink/source
    rank (incast/outcast).
    """
    config = _with_topology(config, topology)
    cluster = Cluster(
        n_nodes, config=config, processes_per_node=processes_per_node
    )
    pattern_kwargs: dict[str, Any] = {}
    if pattern == "permutation":
        pattern_kwargs["shift"] = shift
    elif pattern == "uniform_random":
        pattern_kwargs["pairs_per_rank"] = pairs_per_rank
        pattern_kwargs["seed"] = pattern_seed
    elif pattern == "incast":
        pattern_kwargs["sink"] = hotspot
    elif pattern == "outcast":
        pattern_kwargs["source"] = hotspot
    pairs = make_pattern(pattern, cluster.n_ranks, **pattern_kwargs)
    measurements = run_pattern(
        cluster,
        pairs,
        payload_bytes=payload_bytes,
        messages_per_pair=messages_per_pair,
        signal_period=signal_period,
        burst_len=burst_len,
        gap_ns=gap_ns,
    )
    return {"pattern": pattern, **measurements}


def shuffle_workload(config: SystemConfig, **params: Any) -> dict[str, Any]:
    """MapReduce shuffle: the all-to-all pattern (every ordered pair)."""
    params.pop("pattern", None)
    return traffic_pattern_workload(config, pattern="all_to_all", **params)


def incast_workload(config: SystemConfig, **params: Any) -> dict[str, Any]:
    """N-to-1 incast onto rank ``hotspot`` (default 0)."""
    params.pop("pattern", None)
    return traffic_pattern_workload(config, pattern="incast", **params)


def outcast_workload(config: SystemConfig, **params: Any) -> dict[str, Any]:
    """1-to-N outcast from rank ``hotspot`` (default 0)."""
    params.pop("pattern", None)
    return traffic_pattern_workload(config, pattern="outcast", **params)


def halo_workload(
    config: SystemConfig,
    n_nodes: int = 2,
    processes_per_node: int = 1,
    topology: str | None = None,
    iterations: int = 50,
    halo_bytes: int = 8,
    compute_ns: float = 500.0,
    signal_period: int = 64,
    periodic: bool = False,
) -> dict[str, Any]:
    """1-D halo exchange across all ranks (the stencil app, scaled out)."""
    config = _with_topology(config, topology)
    cluster = Cluster(
        n_nodes, config=config, processes_per_node=processes_per_node
    )
    stacks = _rank_stacks(cluster, signal_period)
    cluster.fabric.reset_stats()
    stats = run_halo_ranks(
        cluster.env,
        stacks,
        iterations=iterations,
        halo_bytes=halo_bytes,
        compute_ns=compute_ns,
        periodic=periodic,
    )
    comm_per_iter = stats["comm_ns"] / iterations
    link_stats = cluster.fabric.link_stats()
    return {
        "n_ranks": cluster.n_ranks,
        "processes_per_node": cluster.processes_per_node,
        "iterations": iterations,
        "halo_bytes": halo_bytes,
        "compute_ns": compute_ns,
        "total_comm_ns": stats["comm_ns"],
        "total_ns": stats["t_end"],
        "comm_ns_per_iteration": comm_per_iter,
        "comm_fraction": stats["comm_ns"] / stats["t_end"] if stats["t_end"] else 0.0,
        "link_stats": link_stats,
        **{f"link_{k}": v for k, v in summarize_link_stats(link_stats).items()},
    }


def stencil_workload(config: SystemConfig, **params: Any) -> dict[str, Any]:
    """The §7 two-rank stencil check (halo exchange at N=2)."""
    params.setdefault("n_nodes", 2)
    params.setdefault("iterations", 200)
    return halo_workload(config, **params)


def pserver_workload(
    config: SystemConfig,
    n_nodes: int = 4,
    processes_per_node: int = 1,
    topology: str | None = None,
    iterations: int = 4,
    push_bytes: int = 8,
    pull_bytes: int = 8,
    server: int = 0,
    signal_period: int = 64,
) -> dict[str, Any]:
    """Parameter-server push/pull rounds (incast then outcast per step)."""
    config = _with_topology(config, topology)
    cluster = Cluster(
        n_nodes, config=config, processes_per_node=processes_per_node
    )
    return run_pserver(
        cluster,
        iterations=iterations,
        push_bytes=push_bytes,
        pull_bytes=pull_bytes,
        server=server,
        signal_period=signal_period,
    )


def randomaccess_workload(
    config: SystemConfig,
    n_cores: int = 8,
    updates_per_core: int = 300,
    update_bytes: int = 8,
) -> dict[str, Any]:
    """The GUPS-style random-access kernel (multicore injection study)."""
    result = run_random_access(
        n_cores,
        config=config,
        updates_per_core=updates_per_core,
        update_bytes=update_bytes,
    )
    return {
        "n_cores": result.n_cores,
        "updates": result.updates,
        "update_bytes": result.update_bytes,
        "gups": result.gups,
        "nic_gups": result.nic_gups,
        "credit_stalls": result.credit_stalls,
        "updates_per_core_per_s": result.updates_per_core_per_s,
    }
