"""Datacenter traffic generation: patterns, app skeletons, workloads.

:mod:`repro.traffic.patterns` builds ``(src, dst)`` rank-pair graphs
(permutation, uniform-random, incast/outcast, all-to-all);
:mod:`repro.traffic.workloads` drives them through full MPI stacks on a
:class:`~repro.node.cluster.Cluster` and wraps each as a registered
campaign workload with per-run link-occupancy roll-ups.
"""

from repro.traffic.patterns import (
    PATTERNS,
    all_to_all_pattern,
    incast_pattern,
    make_pattern,
    outcast_pattern,
    permutation_pattern,
    summarize_link_stats,
    uniform_random_pattern,
)
from repro.traffic.workloads import (
    RandomAccessResult,
    run_halo_ranks,
    run_pattern,
    run_pserver,
    run_random_access,
)

__all__ = [
    "PATTERNS",
    "RandomAccessResult",
    "all_to_all_pattern",
    "incast_pattern",
    "make_pattern",
    "outcast_pattern",
    "permutation_pattern",
    "run_halo_ranks",
    "run_pattern",
    "run_pserver",
    "run_random_access",
    "summarize_link_stats",
    "uniform_random_pattern",
]
