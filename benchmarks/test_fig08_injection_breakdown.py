"""Figure 8 — breakdown of injection overhead with the LLP."""

from conftest import write_report

from repro.core.breakdown import fig8_injection_llp
from repro.reporting.experiments import experiment_fig8


def test_fig08(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES (figure variant)\n" + experiment_fig8(paper_times, "figure"),
            "PAPER VALUES (Eq. 1 model variant)\n" + experiment_fig8(paper_times, "model"),
            "SIMULATOR (methodology-measured)\n" + experiment_fig8(measured_times, "figure"),
        ]
    )
    write_report(report_dir, "fig08_injection_breakdown", report)

    breakdown = benchmark(fig8_injection_llp, measured_times, "figure")
    percentages = breakdown.percentages()
    # Shape: LLP_post dominates (61.18% in the paper), then LLP_prog,
    # then Misc.
    assert percentages["llp_post"] > percentages["llp_prog"] > percentages["misc"]
    assert percentages["llp_post"] > 55.0
