"""Figure 15 — high-level breakdown of the end-to-end latency."""

from conftest import write_report

from repro.core.breakdown import fig15_categories
from repro.reporting.experiments import experiment_fig15


def test_fig15(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig15(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig15(measured_times),
        ]
    )
    write_report(report_dir, "fig15_categories", report)

    parts = benchmark(fig15_categories, measured_times)
    top = parts["top"].percentages()
    # Insight 2's shape: no category dominates; the network is less than
    # a third; CPU + I/O carry ~72% of the latency.
    assert max(top.values()) < 50.0
    assert top["Network"] < 100.0 / 3.0
    assert top["CPU"] + top["I/O"] > 65.0
    # Sub-breakdown shapes.
    assert parts["network"].percent("wire") > parts["network"].percent("switch")
    assert abs(parts["cpu"].percent("llp") - parts["cpu"].percent("hlp")) < 15.0
