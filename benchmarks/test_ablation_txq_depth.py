"""Ablation — transmit-queue depth (§4.2's finite-TxQ argument).

With a deep TxQ the put_bw steady state is CPU-paced; shrinking the
queue towards p = 1 turns posts synchronous — "the user will be able to
post the next message only after the previous message has reached the
target node" — and injection collapses to gen_completion.

The sweep is a declarative campaign: ``nic.txq_depth`` is a dotted
config axis, rewritten into each point's :class:`SystemConfig`.
"""

from conftest import write_report

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.core.components import ComponentTimes
from repro.core.models import gen_completion
from repro.node import SystemConfig

DEPTHS = (1, 2, 8, 32, 128)


def run_sweep():
    spec = CampaignSpec(
        name="ablation-txq-depth",
        workload="put_bw",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(SweepAxis("nic.txq_depth", DEPTHS),),
        params={"n_messages": 300, "warmup": 150},
    )
    result = run_campaign(spec)
    assert not result.failures
    return result.rows("nic.txq_depth", "mean_injection_overhead_ns")


def test_txq_depth_sweep(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'TxQ depth':>10} {'injection overhead (ns)':>26}"]
    lines += [f"{depth:>10} {overhead:>26.2f}" for depth, overhead in rows]
    write_report(report_dir, "ablation_txq_depth", "\n".join(lines))

    overheads = dict(rows)
    # Depth 1 = synchronous posting: the inter-arrival must be at least
    # gen_completion (the CQE round trip) plus the CPU post time.
    sync_floor = gen_completion(ComponentTimes.paper())
    assert overheads[1] > sync_floor
    # Deep queues decouple posting from completion: near the Eq. 1 pace.
    assert overheads[128] < 320.0
    # Monotone improvement with depth.
    values = [overheads[d] for d in DEPTHS]
    assert values == sorted(values, reverse=True)
