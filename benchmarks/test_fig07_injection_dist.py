"""Figures 6/7 — the PCIe trace of put_bw and the injection-overhead
distribution observed by the NIC.

Figure 6 is the analyzer's downstream-filtered transaction listing;
Figure 7 is the distribution of its inter-arrival deltas.
"""

import numpy as np
from conftest import write_report

from repro.analysis.stats import summarize
from repro.analysis.traces import arrival_deltas
from repro.bench import run_put_bw
from repro.node import SystemConfig
from repro.reporting.experiments import experiment_fig7
from repro.reporting.figures import render_trace


def test_fig07(benchmark, campaign, report_dir):
    distribution = campaign.injection_distribution
    # The histogram needs the raw deltas: re-run one put_bw for them.
    trace_run = run_put_bw(
        config=SystemConfig.paper_testbed(seed=70), n_messages=1000, warmup=256
    )
    write_report(
        report_dir,
        "fig06_pcie_trace",
        "PCIe trace of downstream transactions, put_bw (Figure 6)\n"
        + render_trace(trace_run.testbed.analyzer.records, limit=12),
    )
    write_report(
        report_dir,
        "fig07_injection_distribution",
        experiment_fig7(distribution, trace_run.observed_injection_overheads_ns),
    )

    # Time the trace post-processing step (the Figure 6 → 7 pipeline).
    result = run_put_bw(
        config=SystemConfig.paper_testbed(seed=7), n_messages=500, warmup=256
    )
    deltas = benchmark(arrival_deltas, result.testbed.analyzer.records)
    summary = summarize(deltas)

    # Shape criteria from the paper's annotations: mean within 5% of the
    # Eq. 1 model, right skew (median < mean), and a floor well above 0.
    np.testing.assert_allclose(summary.mean, 295.73, rtol=0.05)
    assert summary.median < summary.mean
    assert summary.minimum > 0.5 * summary.mean
    # Heavy tail: the noisy simulator produces occasional multi-µs
    # outliers like the paper's 34951.7 ns max.
    assert summary.maximum > 2 * summary.mean
