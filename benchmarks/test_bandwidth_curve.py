"""Extension — the uni-directional bandwidth curve (osu_bw shape).

The §1 dichotomy quantified end to end: CPU-rate-bound small messages
(the regime the paper dissects) rolling over into the wire-bandwidth
asymptote for large ones.
"""

import pytest
from conftest import write_report

from repro.bench import run_uct_bandwidth

SIZES = (8, 64, 512, 4096, 32768, 262144)
WIRE_LIMIT = 12.5  # B/ns, the configured EDR serialisation rate


def run_sweep():
    return [
        run_uct_bandwidth(size, n_messages=60, warmup=16) for size in SIZES
    ]


def test_bandwidth_curve(benchmark, report_dir):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'size (B)':>10} {'bandwidth (GB/s)':>17} {'rate (M msg/s)':>15}"]
    for result in results:
        lines.append(
            f"{result.message_bytes:>10} {result.bandwidth_bytes_per_ns:>17.3f} "
            f"{result.message_rate_per_s / 1e6:>15.3f}"
        )
    lines.append(f"(wire serialisation limit: {WIRE_LIMIT} GB/s)")
    write_report(report_dir, "bandwidth_curve", "\n".join(lines))

    by_size = {r.message_bytes: r for r in results}
    # Bandwidth grows monotonically with size.
    curve = [by_size[s].bandwidth_bytes_per_ns for s in SIZES]
    assert curve == sorted(curve)
    # Large messages reach >90% of the wire limit but never exceed it.
    top = by_size[262144].bandwidth_bytes_per_ns
    assert 0.90 * WIRE_LIMIT < top <= WIRE_LIMIT + 1e-9
    # Small messages are rate-bound, far below the wire limit — the
    # regime where the paper's CPU/IO breakdown is the whole story.
    assert by_size[8].bandwidth_bytes_per_ns < 0.01 * WIRE_LIMIT
    # The message rate at 8 B exceeds 1/gen_completion thanks to the
    # 16-deep window (pipelining), and stays in the M msg/s range.
    assert by_size[8].message_rate_per_s == pytest.approx(4.1e6, rel=0.15)
