"""Ablation — multi-hop topologies.

The paper measures one switch hop (108 ns) and §7.2 discusses how far
switch latency could fall (Gen-Z's forecast 30-50 ns).  Real fat-tree
fabrics traverse 3 or 5 hops; this sweep extends the latency model and
the simulator to k hops and verifies they agree: each extra hop adds
exactly one switch latency to the one-way path.

The sweep is a declarative campaign: ``network.switch_count`` is a
dotted config axis over the ``am_lat`` workload.
"""

import pytest
from conftest import write_report

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.node import SystemConfig

HOPS = (0, 1, 2, 3, 5)


def run_sweep():
    spec = CampaignSpec(
        name="ablation-switch-hops",
        workload="am_lat",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(SweepAxis("network.switch_count", HOPS),),
        params={"iterations": 100, "warmup": 20},
    )
    result = run_campaign(spec)
    assert not result.failures
    return result.rows("network.switch_count", "observed_latency_ns")


def test_switch_hop_sweep(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'switch hops':>12} {'am_lat latency (ns)':>22} {'delta':>8}"]
    previous = None
    for hops, latency in rows:
        delta = f"{latency - previous:+7.2f}" if previous is not None else "       "
        lines.append(f"{hops:>12} {latency:>22.2f} {delta:>8}")
        previous = latency
    write_report(report_dir, "ablation_switch_hops", "\n".join(lines))

    latencies = dict(rows)
    # Each hop adds exactly one switch latency to the one-way path.
    for a, b in zip(HOPS, HOPS[1:]):
        expected = 108.0 * (b - a)
        assert latencies[b] - latencies[a] == pytest.approx(expected, abs=2.0)
