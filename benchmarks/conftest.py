"""Shared fixtures for the benchmark harness.

The harness regenerates every table and figure of the paper.  The
expensive part — the full measurement campaign against the noisy
simulator — runs once per session; each per-figure benchmark then
renders its artefact from both the paper's values and the re-measured
ones, writes the report under ``benchmarks/reports/`` and times the
regeneration step with pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import measure_component_times
from repro.core.components import ComponentTimes
from repro.node import SystemConfig

REPORTS_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def paper_times() -> ComponentTimes:
    """The paper's published component times."""
    return ComponentTimes.paper()


@pytest.fixture(scope="session")
def campaign():
    """One full methodology run against the noisy simulated testbed."""
    return measure_component_times(SystemConfig.paper_testbed(seed=2019), quick=False)


@pytest.fixture(scope="session")
def measured_times(campaign) -> ComponentTimes:
    """Component times re-measured by the §§3-6 methodology."""
    return campaign.to_component_times()


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


def write_report(directory: pathlib.Path, name: str, text: str) -> None:
    """Persist one regenerated artefact and echo it to stdout."""
    path = directory / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n===== {name} =====")
    print(text)
