"""The paper's model-validation claims: modeled vs observed, all four.

§4.2: Eq. 1 within 5% of the put_bw trace observation.
§4.3: the LLP latency model within 5% of am_lat (minus half a
measurement update).
§6:   Eq. 2 within 1% of the OSU message-rate observation (we assert
the paper's overall 5% envelope; the paper's own gap was 0.4%), and the
end-to-end model within 4-5% of the OSU latency observation.
"""

from conftest import write_report

from repro.core.models import (
    EndToEndLatencyModel,
    InjectionModelLlp,
    LatencyModelLlp,
    OverallInjectionModel,
)
from repro.core.validation import validate
from repro.reporting.experiments import experiment_insights, experiment_validation


def test_model_validation(benchmark, measured_times, campaign, report_dir):
    report = experiment_validation(measured_times, campaign.observed)
    write_report(report_dir, "validation", report)

    checks = benchmark(
        lambda: [
            validate(
                "LLP injection (Eq. 1)",
                InjectionModelLlp(measured_times).predicted_ns,
                campaign.observed["llp_injection_overhead"],
                margin=0.05,
            ),
            validate(
                "LLP latency (§4.3)",
                LatencyModelLlp(measured_times).predicted_ns,
                campaign.observed["llp_latency"],
                margin=0.05,
            ),
            validate(
                "Overall injection (Eq. 2)",
                OverallInjectionModel(measured_times).predicted_ns,
                campaign.observed["overall_injection_overhead"],
                margin=0.05,
            ),
            validate(
                "End-to-end latency (§6)",
                EndToEndLatencyModel(measured_times).predicted_ns,
                campaign.observed["end_to_end_latency"],
                margin=0.05,
            ),
        ]
    )
    for check in checks:
        assert check.within_margin, str(check)


def test_insights(benchmark, measured_times, report_dir):
    """The four §6 insights must hold on the measured system too."""
    report = benchmark(experiment_insights, measured_times)
    write_report(report_dir, "insights", report)
    assert report.count("[HOLDS]") == 4
