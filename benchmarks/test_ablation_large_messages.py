"""Ablation — the large-message regime of §1.

"The latency of sending a large message is driven by the time spent in
the network components.  Hence, optimizing the software stack for this
case would be a futile effort.  On the other hand, the time spent in
the software stack during the propagation of a small message is a
considerable portion of the overall latency."

With finite serialisation bandwidths (PCIe Gen3 x16 ≈ 15.75 B/ns, EDR
InfiniBand ≈ 12.5 B/ns) this sweep measures the software share of the
one-way latency across sizes and verifies the crossover the paper uses
to justify its small-message focus.
"""

import pytest
from conftest import write_report

from repro.llp.uct import UCS_OK, UctWorker
from repro.network.config import NetworkConfig
from repro.node import SystemConfig, Testbed
from repro.pcie.config import PcieConfig

SIZES = (8, 256, 4096, 65536, 1048576)

#: Realistic serialisation bandwidths for the size sweep.
REALISTIC = SystemConfig.paper_testbed(deterministic=True).evolve(
    pcie=PcieConfig(bandwidth_bytes_per_ns=15.75),
    network=NetworkConfig(bandwidth_bytes_per_ns=12.5),
)


def one_way_latency_and_software(payload_bytes: int) -> tuple[float, float]:
    """(one-way latency, software time) for one put of ``payload_bytes``."""
    tb = Testbed(REALISTIC)
    worker = UctWorker(tb.node1)
    iface = worker.create_iface()
    remote = UctWorker(tb.node2).create_iface()
    ep = iface.create_ep(remote)

    def body():
        if payload_bytes <= tb.config.nic.inline_max_bytes:
            status = yield from ep.put_short(payload_bytes)
        else:
            status = yield from ep.put_zcopy(payload_bytes)
        assert status == UCS_OK

    tb.env.run(until=tb.env.process(body(), name="post"))
    software_ns = tb.node1.cpu.busy_ns
    tb.run()
    message = iface.last_message
    return message.interval("posted", "payload_visible"), software_ns


def run_sweep():
    return [(size, *one_way_latency_and_software(size)) for size in SIZES]


def test_large_message_regime(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{'payload':>10} {'latency (ns)':>14} {'software (ns)':>14} {'sw share':>9}"
    ]
    for size, latency, software in rows:
        lines.append(
            f"{size:>10} {latency:>14.1f} {software:>14.1f} "
            f"{software / latency:>8.1%}"
        )
    write_report(report_dir, "ablation_large_messages", "\n".join(lines))

    shares = {size: software / latency for size, latency, software in rows}
    # Small messages: software is a considerable portion (>10%).
    assert shares[8] > 0.10
    # Large messages: software is a futile optimization target (<2%).
    assert shares[1048576] < 0.02
    # The share falls monotonically with size.
    values = [shares[size] for size in SIZES]
    assert values == sorted(values, reverse=True)
    # And the 1 MiB transfer is serialisation-bound: above the pure
    # wire floor, and bounded by the sum of the three store-and-forward
    # stages (PCIe fetch at 15.75 B/ns + network at 12.5 B/ns + target
    # write at 15.75 B/ns ≈ 2.6 × the wire floor — the simulated NIC
    # forwards at message granularity; a cut-through NIC would approach
    # the floor itself).
    latency_1m = dict((s, l) for s, l, _ in rows)[1048576]
    serialisation_floor = 1048576 / 12.5
    assert latency_1m > serialisation_floor
    assert latency_1m < 3.0 * serialisation_floor
