"""Ablation — fault injection on the PCIe Data Link layer.

§2 describes the ACK/NACK machinery that "ensures the successful
execution of all transactions"; on the paper's healthy testbed it never
fires.  This ablation injects LCRC corruption and measures how the
go-back-N replay taxes the end-to-end latency while preserving
exactly-once delivery.
"""

import pytest
from conftest import write_report

from repro.bench import run_am_lat
from repro.node import SystemConfig
from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction

CORRUPTION = (0.0, 0.01, 0.05, 0.2)


def run_sweep():
    rows = []
    for prob in CORRUPTION:
        config = SystemConfig.paper_testbed(deterministic=True).evolve(
            pcie=PcieConfig(tlp_corruption_prob=prob)
        )
        result = run_am_lat(config=config, iterations=150, warmup=30)
        link = result.testbed.node1.link
        corrupted, retransmissions = link.corruption_stats(Direction.DOWNSTREAM)
        up_corrupted, up_retx = link.corruption_stats(Direction.UPSTREAM)
        rows.append(
            (
                prob,
                result.observed_latency_ns,
                corrupted + up_corrupted,
                retransmissions + up_retx,
            )
        )
    return rows


def test_lossy_pcie_sweep(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{'corruption':>11} {'am_lat (ns)':>13} {'corrupted':>10} {'retransmits':>12}"
    ]
    lines += [
        f"{prob:>11.2%} {latency:>13.2f} {corrupted:>10} {retx:>12}"
        for prob, latency, corrupted, retx in rows
    ]
    write_report(report_dir, "ablation_lossy_pcie", "\n".join(lines))

    by_prob = {prob: (lat, cor, retx) for prob, lat, cor, retx in rows}
    # Healthy link: no Data Link recovery at all.
    assert by_prob[0.0][1] == 0
    assert by_prob[0.0][2] == 0
    # Lossy links recover (the benchmark completed) at a latency cost
    # that grows with the corruption probability.
    latencies = [by_prob[p][0] for p in CORRUPTION]
    assert latencies == sorted(latencies)
    assert by_prob[0.2][1] > 0
    # Expected per-one-way tax at 1%: ~prob × replay round trip (NACK
    # return + delay + retransmit ≈ 325 ns) per TLP crossing — tiny.
    assert by_prob[0.01][0] - by_prob[0.0][0] < 40.0
    # At 20% the tax is an order of magnitude bigger — several TLPs per
    # iteration each pay the ~325 ns replay round trip with probability
    # 0.2, plus go-back-N cascades — but recovery still converges.
    assert 300.0 < by_prob[0.2][0] - by_prob[0.0][0] < 900.0
