"""Table 1 — measured times of various components.

Regenerates the paper's Table 1 from the simulator via the full
measurement methodology and prints it beside the published values.
"""

from conftest import write_report

from repro.reporting.experiments import experiment_table1
from repro.reporting.tables import table1_rows


def test_table1(benchmark, measured_times, paper_times, report_dir):
    report = experiment_table1(measured_times, reference=paper_times)
    write_report(report_dir, "table1", report)

    rows = benchmark(table1_rows, measured_times)
    assert len(rows) == 21

    # Reproduction criterion: every Table 1 row within 15% of the paper
    # (subtraction-based rows like RC-to-MEM carry methodology bias; the
    # directly profiled ones land within a few percent).
    reference = dict(table1_rows(paper_times))
    for label, value in rows:
        expected = reference[label]
        if expected >= 20.0:
            assert abs(value - expected) / expected < 0.15, label
        else:
            # Tiny rows (UCP isend 2.19, busy post 8.99) are dominated
            # by profiling-overhead subtraction noise; bound absolutely.
            assert abs(value - expected) < 8.0, label
