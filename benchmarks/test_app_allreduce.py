"""Application kernel — ring allreduce across cluster sizes.

The §6 end-to-end latency model composed over 2(N−1) lockstep ring
steps predicts the collective's time within 2% at every cluster size —
the multi-node payoff of the paper's single-link breakdown.
"""

import pytest
from conftest import write_report

from repro.collectives import predicted_ring_allreduce_ns, ring_allreduce
from repro.node import SystemConfig
from repro.node.cluster import Cluster

SIZES = (2, 4, 8, 16)
REDUCE_NS = 20.0
ITERATIONS = 5


def run_sweep():
    config = SystemConfig.paper_testbed(deterministic=True)
    return [
        ring_allreduce(
            Cluster(n, config=config),
            iterations=ITERATIONS,
            reduce_compute_ns=REDUCE_NS,
        )
        for n in SIZES
    ]


def test_ring_allreduce_scaling(benchmark, report_dir):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{'nodes':>6} {'steps':>6} {'simulated (ns)':>15} {'model (ns)':>12} {'err':>6}"
    ]
    for result in results:
        model = predicted_ring_allreduce_ns(
            result.n_nodes,
            result.cluster.config,
            result.cluster.topology,
            reduce_compute_ns=REDUCE_NS,
        )
        error = abs(result.time_per_iteration_ns - model) / model
        lines.append(
            f"{result.n_nodes:>6} {result.steps:>6} "
            f"{result.time_per_iteration_ns:>15.1f} {model:>12.1f} {error:>5.1%}"
        )
    write_report(report_dir, "app_allreduce", "\n".join(lines))

    for result in results:
        model = predicted_ring_allreduce_ns(
            result.n_nodes,
            result.cluster.config,
            result.cluster.topology,
            reduce_compute_ns=REDUCE_NS,
        )
        assert result.time_per_iteration_ns == pytest.approx(model, rel=0.02)
