"""Ablation — polling vs interrupt-driven completion notification.

§2: "The user could also request to be notified with an interrupt
regarding the completion.  However, the polling approach is
latency-oriented since there is no context switch to the kernel in the
critical path."  This ablation quantifies the claim the paper states
qualitatively: the interrupt path adds a context-switch round trip
(~1.8 µs here) to every one-way latency.
"""

import pytest
from conftest import write_report

from repro.bench import run_am_lat
from repro.node import SystemConfig


def run_both():
    config = SystemConfig.paper_testbed(deterministic=True)
    polling = run_am_lat(config=config, iterations=150, warmup=30)
    interrupt = run_am_lat(
        config=config, iterations=150, warmup=30, completion_mode="interrupt"
    )
    return polling, interrupt


def test_polling_vs_interrupt(benchmark, report_dir):
    polling, interrupt = benchmark.pedantic(run_both, rounds=1, iterations=1)
    penalty = interrupt.observed_latency_ns - polling.observed_latency_ns
    report = "\n".join(
        [
            f"polling latency:   {polling.observed_latency_ns:8.2f} ns",
            f"interrupt latency: {interrupt.observed_latency_ns:8.2f} ns",
            f"interrupt penalty: {penalty:8.2f} ns per one-way "
            "(the context switch §2 says polling avoids)",
        ]
    )
    write_report(report_dir, "ablation_interrupt", report)

    # The penalty is one interrupt wakeup per one-way (both sides pay
    # one per round trip).
    wakeup = SystemConfig.paper_testbed().costs.interrupt_wakeup
    assert penalty == pytest.approx(wakeup, rel=0.05)
    # And it swamps the entire software budget of the polling path —
    # why the paper only considers polling.
    assert penalty > 3 * (polling.observed_latency_ns / 4)
