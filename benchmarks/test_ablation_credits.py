"""Ablation — PCIe credit exhaustion.

The paper observes "a single core does not exhaust the credits for MWr
transactions" and therefore leaves credit stalls out of its model.
This ablation verifies both halves: the paper testbed never stalls, and
an artificially starved link does stall and slows injection — the
regime the model explicitly does not cover.
"""

from conftest import write_report

from repro.bench import run_put_bw
from repro.node import SystemConfig
from repro.pcie.config import PcieConfig
from repro.pcie.link import Direction


def run_both():
    baseline = run_put_bw(
        config=SystemConfig.paper_testbed(deterministic=True),
        n_messages=300,
        warmup=150,
    )
    starved_config = SystemConfig.paper_testbed(deterministic=True).evolve(
        pcie=PcieConfig(
            posted_header_credits=2,
            posted_data_credits=16,
            update_fc_interval_ns=400.0,
        )
    )
    starved = run_put_bw(config=starved_config, n_messages=300, warmup=150)
    return baseline, starved


def test_credit_exhaustion(benchmark, report_dir):
    baseline, starved = benchmark.pedantic(run_both, rounds=1, iterations=1)
    base_stalls = baseline.testbed.node1.link.credit_stalls(Direction.DOWNSTREAM)
    starved_stalls = starved.testbed.node1.link.credit_stalls(Direction.DOWNSTREAM)
    report = "\n".join(
        [
            f"paper testbed: {base_stalls} credit stalls, "
            f"{baseline.mean_injection_overhead_ns:.2f} ns injection",
            f"starved link:  {starved_stalls} credit stalls, "
            f"{starved.mean_injection_overhead_ns:.2f} ns injection",
        ]
    )
    write_report(report_dir, "ablation_credits", report)

    # §4.2's observation holds on the paper configuration...
    assert base_stalls == 0
    # ...and the starved link demonstrates the unmodelled regime.
    assert starved_stalls > 0
    assert (
        starved.mean_injection_overhead_ns > baseline.mean_injection_overhead_ns
    )
