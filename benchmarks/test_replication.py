"""Robustness — the 5% validation claim across independent replications.

The paper validates its models once, on one testbed.  This harness
re-runs the entire measure-then-validate pipeline under several
independent noise seeds and asserts that every model stays inside the
paper's 5% envelope in every replication — the headline claim as a
distributional property, not a lucky draw.

The study runs as a campaign (one sweep point per seed), fanned across
a small worker pool; campaign determinism guarantees the parallel run
matches a serial one bit for bit.
"""

from conftest import write_report

from repro.analysis import run_replication_study


def test_replication(benchmark, report_dir):
    study = benchmark.pedantic(
        run_replication_study,
        kwargs=dict(n_replications=5, quick=True, jobs=2),
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "replication", study.render())

    assert study.all_within(margin=0.05)
    # Typical errors are well below the margin, like the paper's own
    # (4.8%, 4.6%, 0.4%, 3.8%).
    for name in study.errors:
        assert study.mean_error(name) < 0.04
