"""Figure 12 — breakdown of the overall injection overhead."""

from conftest import write_report

from repro.core.breakdown import fig12_overall_injection
from repro.reporting.experiments import experiment_fig12


def test_fig12(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig12(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig12(measured_times),
        ]
    )
    write_report(report_dir, "fig12_overall_injection", report)

    breakdown = benchmark(fig12_overall_injection, measured_times)
    percentages = breakdown.percentages()
    # Insight 1's shape: Post dominates (>70%), Misc is marginal.
    assert percentages["post"] > 70.0
    assert percentages["post_prog"] > percentages["misc"]
    assert percentages["misc"] < 5.0
