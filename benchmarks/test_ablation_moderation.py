"""Ablation — unsignaled-completion moderation (§6's c = 64).

Sweeps the signal period and shows how the overall injection overhead
falls as completion processing is amortised: the "semantic bottleneck"
of Insight 1 being optimised away.
"""

from conftest import write_report

from repro.bench import run_osu_message_rate
from repro.node import SystemConfig

PERIODS = (1, 4, 16, 64)


def run_sweep():
    rows = []
    for period in PERIODS:
        result = run_osu_message_rate(
            config=SystemConfig.paper_testbed(deterministic=True),
            windows=12,
            warmup_windows=6,
            signal_period=period,
        )
        rows.append((period, result.cpu_side_injection_overhead_ns))
    return rows


def test_signal_period_sweep(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'signal period':>14} {'injection overhead (ns)':>26}"]
    lines += [f"{period:>14} {overhead:>26.2f}" for period, overhead in rows]
    write_report(report_dir, "ablation_moderation", "\n".join(lines))

    overheads = dict(rows)
    # Moderation must monotonically improve injection (amortised CQE
    # handling); c=64 vs c=1 saves roughly one LLP_prog per message.
    assert overheads[64] < overheads[16] < overheads[4] < overheads[1]
    assert overheads[1] - overheads[64] > 30.0
