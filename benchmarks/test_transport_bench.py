"""Transport-layer acceptance benchmarks.

Two headline numbers for the pluggable transports, appended to
``BENCH_sim.json``:

* intra-node shared memory vs the PCIe/NIC path — one-way 8 B latency
  (same-node ranks must beat the wire by skipping PCIe entirely);
* dual-rail vs single-rail ``put_bw`` — injection-rate uplift when the
  TxQ bottleneck is split across two NIC rails.
"""

import time

from conftest import write_report
from test_simulator_performance import _record

from repro.bench.perftest import put_bw_workload
from repro.campaign.workloads import put_oneway_latency_workload
from repro.llp.uct import UctWorker
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

PAYLOAD = 8
N_MESSAGES = 2000


def _shm_oneway_ns(config: SystemConfig) -> float:
    cluster = Cluster(2, config=config, processes_per_node=2)
    node = cluster.nodes[0]
    sender = UctWorker(node, core=node.cores[0])
    receiver = UctWorker(node, core=node.cores[1])
    iface = sender.create_iface()
    ep = iface.create_ep(receiver.create_iface())
    assert ep.transport.caps.name == "shm"

    def body():
        yield from ep.am_short(PAYLOAD)

    cluster.env.run(until=cluster.env.process(body(), name="shm.post"))
    cluster.run()
    message = iface.last_message
    return message.interval("posted", "payload_visible")


def test_shm_vs_nic_oneway_latency(report_dir):
    config = SystemConfig.builder().deterministic().build()
    shm_ns = _shm_oneway_ns(config)
    nic = put_oneway_latency_workload(config, payload_bytes=PAYLOAD)
    nic_ns = nic["one_way_latency_ns"]

    lines = [
        f"one-way {PAYLOAD} B latency by transport:",
        f"  shm (same node)  : {shm_ns:>9.2f} ns",
        f"  pcie+nic ({nic['path']}): {nic_ns:>9.2f} ns",
        f"  speedup          : {nic_ns / shm_ns:>9.2f}x",
    ]
    write_report(report_dir, "transport_latency", "\n".join(lines))
    _record(
        "transport_shm_vs_nic_latency",
        {
            "payload_bytes": PAYLOAD,
            "shm_oneway_ns": shm_ns,
            "nic_oneway_ns": nic_ns,
            "shm_speedup": nic_ns / shm_ns,
        },
    )
    assert shm_ns < nic_ns


def test_dual_rail_put_bw_uplift(report_dir):
    base = SystemConfig.builder().deterministic().build()
    dual = SystemConfig.builder().deterministic().transport(rails=2).build()

    t0 = time.perf_counter()
    one = put_bw_workload(base, n_messages=N_MESSAGES)
    two = put_bw_workload(dual, n_messages=N_MESSAGES)
    wall_s = time.perf_counter() - t0

    uplift = two["message_rate_per_s"] / one["message_rate_per_s"]
    lines = [
        f"put_bw ({PAYLOAD} B, {N_MESSAGES} messages) by rail count:",
        f"  1 rail : {one['message_rate_per_s']:>13,.0f} msg/s"
        f" ({one['busy_posts']} busy posts)",
        f"  2 rails: {two['message_rate_per_s']:>13,.0f} msg/s"
        f" ({two['busy_posts']} busy posts)",
        f"  uplift : {uplift:>8.3f}x  (wall {wall_s:.2f} s)",
    ]
    write_report(report_dir, "transport_rails", "\n".join(lines))
    _record(
        "transport_dual_rail_put_bw",
        {
            "payload_bytes": PAYLOAD,
            "n_messages": N_MESSAGES,
            "rate_1_rail_per_s": one["message_rate_per_s"],
            "rate_2_rail_per_s": two["message_rate_per_s"],
            "uplift": uplift,
            "busy_posts_1_rail": one["busy_posts"],
            "busy_posts_2_rail": two["busy_posts"],
            "wall_s": wall_s,
        },
    )
    # Splitting the TxQ across rails must not hurt, and should relieve
    # the busy-post pressure the single queue saturates into.
    assert uplift > 1.0
    assert two["busy_posts"] < one["busy_posts"]
