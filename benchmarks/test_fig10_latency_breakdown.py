"""Figure 10 — breakdown of latency with the LLP."""

from conftest import write_report

from repro.core.breakdown import fig10_latency_llp
from repro.reporting.experiments import experiment_fig10


def test_fig10(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig10(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig10(measured_times),
        ]
    )
    write_report(report_dir, "fig10_latency_breakdown", report)

    breakdown = benchmark(fig10_latency_llp, measured_times)
    percentages = breakdown.percentages()
    # Shape: the wire is the single largest stage (25.58% in the paper);
    # the two PCIe crossings are equal; RC-to-MEM beats LLP_post.
    assert max(percentages, key=percentages.get) == "wire"
    assert percentages["tx_pcie"] == percentages["rx_pcie"]
    assert percentages["rc_to_mem"] > percentages["switch"]
