"""Figure 17 — simulated optimizations (the §7 what-if analysis).

Regenerates all four panels and re-checks every quantitative claim the
paper makes about them, on both the paper's values and the
methodology-measured ones.
"""

from conftest import write_report

from repro.core.whatif import Metric, WhatIfAnalysis
from repro.reporting.experiments import experiment_fig17, experiment_fig17_campaign


def test_fig17_panels(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig17(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig17(measured_times),
        ]
    )
    write_report(report_dir, "fig17_whatif", report)

    analysis = WhatIfAnalysis(measured_times)
    panels = benchmark(
        lambda: (
            analysis.figure17a(),
            analysis.figure17b(),
            analysis.figure17c(),
            analysis.figure17d(),
        )
    )
    fig_a, fig_b, fig_c, fig_d = panels

    # Panel shapes: aggregate lines dominate their constituents, and the
    # ordering of lines matches the paper at the 90% reduction point.
    assert fig_a["LLP"][-1][1] > fig_a["HLP"][-1][1]
    assert fig_a["LLP_post"][-1][1] > fig_a["PIO"][-1][1]
    assert fig_b["HLP"][-1][1] > fig_b["LLP_post"][-1][1]
    assert fig_c["Integrated NIC"][-1][1] > fig_c["PCIe"][-1][1] > fig_c["RC-to-MEM"][-1][1]
    assert fig_d["Wire"][-1][1] > fig_d["Switch"][-1][1]


def test_fig17_campaign_grid(benchmark, paper_times, report_dir, tmp_path):
    """The campaign-driven grid reproduces the inline-loop panels.

    Every (component × reduction) point runs as a campaign RunRecord;
    the rendered panels must match the direct driver byte for byte, and
    a second pass over the same cache must be both all-hits and
    identical.
    """
    cache_dir = tmp_path / "fig17-cache"
    report = benchmark.pedantic(
        experiment_fig17_campaign,
        kwargs=dict(jobs=2, cache_dir=cache_dir),
        rounds=1,
        iterations=1,
    )
    write_report(report_dir, "fig17_whatif_campaign", report)

    assert report == experiment_fig17(paper_times)
    assert report == experiment_fig17_campaign(jobs=1, cache_dir=cache_dir)


def test_section7_claims(benchmark, measured_times, report_dir):
    """§7's numbered claims re-derived from the measured system."""
    analysis = benchmark(WhatIfAnalysis, measured_times)
    inj = analysis.injection_components()
    cpu = analysis.latency_cpu_components()
    io = analysis.latency_io_components()
    net = analysis.latency_network_components()

    claims = [
        # (description, actual, predicate)
        ("20% HLP -> injection ~6.4%",
         analysis.speedup(Metric.INJECTION, inj["HLP"], 0.20),
         lambda v: 0.04 < v < 0.09),
        ("20% LLP -> injection ~13.3%",
         analysis.speedup(Metric.INJECTION, inj["LLP"], 0.20),
         lambda v: 0.11 < v < 0.16),
        ("84% PIO -> injection >25%",
         analysis.speedup(Metric.INJECTION, inj["PIO"], 0.84),
         lambda v: v > 0.25),
        ("84% PIO -> latency >5%",
         analysis.speedup(Metric.LATENCY, cpu["PIO"], 0.84),
         lambda v: v > 0.05),
        ("50% I/O -> latency >15%",
         analysis.speedup(Metric.LATENCY, io["Integrated NIC"], 0.50),
         lambda v: v > 0.15),
        ("72% switch -> latency ~5.5%",
         analysis.speedup(Metric.LATENCY, net["Switch"], 0.72),
         lambda v: 0.04 < v < 0.07),
        ("20% software (HLP) -> latency <5%",
         analysis.speedup(Metric.LATENCY, cpu["HLP"], 0.20),
         lambda v: v < 0.05),
    ]
    lines = []
    for description, actual, predicate in claims:
        verdict = "OK" if predicate(actual) else "FAIL"
        lines.append(f"{description}: {actual * 100:.2f}% [{verdict}]")
        assert predicate(actual), description
    write_report(report_dir, "fig17_section7_claims", "\n".join(lines))
