"""Figure 11 — breakdown of time in the HLP (UCP vs MPICH)."""

from conftest import write_report

from repro.core.breakdown import fig11_hlp
from repro.reporting.experiments import experiment_fig11


def test_fig11(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig11(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig11(measured_times),
        ]
    )
    write_report(report_dir, "fig11_hlp_breakdown", report)

    parts = benchmark(fig11_hlp, measured_times)
    isend = parts["mpi_isend"].percentages()
    wait = parts["rx_mpi_wait"].percentages()
    # Shape: MPICH dominates both bars (91.76% and 66.09% in the paper),
    # but UCP's share is much larger on the receive side.
    assert isend["mpich"] > 80.0
    assert wait["mpich"] > 50.0
    assert wait["ucp"] > isend["ucp"]
