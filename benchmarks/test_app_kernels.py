"""Application kernels — stencil halo exchange and GUPS random access.

The paper's motivating workloads, run over the full simulated stack.
The stencil verifies the §7 linear-speedup claim at application level;
the GUPS kernel shows per-core injection composing to aggregate
fine-grained throughput.
"""

import pytest
from conftest import write_report

from repro.apps import run_halo_exchange, run_random_access
from repro.node import SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)


def run_stencil_pair():
    switched = run_halo_exchange(config=DET, iterations=150)
    direct = run_halo_exchange(
        config=SystemConfig.paper_testbed_direct(deterministic=True), iterations=150
    )
    return switched, direct


def test_stencil_linear_speedup(benchmark, report_dir):
    switched, direct = benchmark.pedantic(run_stencil_pair, rounds=1, iterations=1)
    saving = switched.comm_ns_per_iteration - direct.comm_ns_per_iteration
    report = "\n".join(
        [
            f"halo exchange with switch:    {switched.comm_ns_per_iteration:8.2f} ns/iter "
            f"(comm fraction {switched.comm_fraction:.1%})",
            f"halo exchange without switch: {direct.comm_ns_per_iteration:8.2f} ns/iter",
            f"application-level saving:     {saving:8.2f} ns "
            "(Figure 17d predicts 108 ns for the removed hop)",
        ]
    )
    write_report(report_dir, "app_stencil", report)
    # §7: "exactly the same linear speedups".
    assert saving == pytest.approx(108.0, abs=10.0)


def test_gups_random_access(benchmark, report_dir):
    result = benchmark.pedantic(
        run_random_access,
        kwargs=dict(n_cores=8, config=DET, updates_per_core=200),
        rounds=1,
        iterations=1,
    )
    report = "\n".join(
        [
            f"cores:              {result.n_cores}",
            f"updates:            {result.updates} × {result.update_bytes} B",
            f"aggregate rate:     {result.gups * 1e3:.3f} M updates/s",
            f"NIC-observed rate:  {result.nic_gups * 1e3:.3f} M updates/s",
            f"credit stalls:      {result.credit_stalls}",
        ]
    )
    write_report(report_dir, "app_gups", report)
    # Eight independent cores at the Eq. 1 pace.
    expected = 8 / 295.73  # updates per ns → GUPS ≈ 0.027
    assert result.gups == pytest.approx(expected, rel=0.06)
    assert result.credit_stalls == 0
