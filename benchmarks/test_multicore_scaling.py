"""Extension — many-core fine-grained injection (the paper's intro
scenario) and the credit-exhaustion wall its model excludes.

One put_bw sender per core, each with its own queue pair, sharing one
PCIe link.  While posted credits suffice the aggregate rate scales
linearly (each core is independent, per Figure 5's overlap argument);
past the credit wall the NIC-side rate saturates even though the CPUs
keep posting into the Root Complex's backlog.

The sweep is a declarative campaign over the ``multicore_put_bw``
workload with ``n_cores`` as a parameter axis.
"""

import pytest
from conftest import write_report

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.node import SystemConfig

CORES = (1, 2, 4, 8, 16, 32, 64)


def run_sweep():
    spec = CampaignSpec(
        name="multicore-scaling",
        workload="multicore_put_bw",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(SweepAxis("n_cores", CORES),),
        params={"n_messages_per_core": 200, "warmup_per_core": 100},
    )
    result = run_campaign(spec)
    assert not result.failures
    return [
        (
            record.params["n_cores"],
            record.measurements["aggregate_rate_per_s"] / 1e6,
            record.measurements["nic_rate_per_s"] / 1e6,
            record.measurements["credit_stalls"],
        )
        for record in result.ok_records
    ]


def test_multicore_scaling(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{'cores':>6} {'CPU rate (M/s)':>16} {'NIC rate (M/s)':>16} {'credit stalls':>14}"
    ]
    lines += [
        f"{cores:>6} {cpu_rate:>16.2f} {nic_rate:>16.2f} {stalls:>14}"
        for cores, cpu_rate, nic_rate, stalls in rows
    ]
    write_report(report_dir, "multicore_scaling", "\n".join(lines))

    by_cores = {cores: (cpu, nic, stalls) for cores, cpu, nic, stalls in rows}
    # Linear regime: 16 cores ≈ 16× the single-core rate, no stalls.
    single = by_cores[1][0]
    assert by_cores[16][0] == pytest.approx(16 * single, rel=0.05)
    assert by_cores[16][2] == 0
    # Credit wall: 64 cores stall heavily and the NIC-side rate falls
    # well below the CPU-side demand.
    assert by_cores[64][2] > 0
    assert by_cores[64][1] < 0.8 * by_cores[64][0]
    # The wall is a ceiling: NIC rate at 64 cores is not much above 32.
    assert by_cores[64][1] < 1.5 * by_cores[32][1]
