"""Figure 14 — HLP vs LLP during initiation and progress."""

from conftest import write_report

from repro.core.breakdown import fig14_hlp_vs_llp
from repro.reporting.experiments import experiment_fig14


def test_fig14(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig14(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig14(measured_times),
        ]
    )
    write_report(report_dir, "fig14_hlp_llp", report)

    parts = benchmark(fig14_hlp_vs_llp, measured_times)
    # Shape: LLP dominates initiation; HLP dominates both progress bars;
    # receive progress is several times the send progress (4.78× paper).
    assert parts["initiation"].percent("llp") > 80.0
    assert parts["tx_progress"].percent("hlp") > 90.0
    assert parts["rx_progress"].percent("hlp") > 60.0
    ratio = parts["rx_progress"].total_ns / parts["tx_progress"].total_ns
    assert 3.0 < ratio < 7.0
