"""Simulator throughput — how fast the DES core itself runs.

Not a paper artefact, but a harness health metric: the full
reproduction depends on simulating hundreds of thousands of events per
campaign, so regressions here make every experiment slower.  Beyond the
pytest-benchmark timings, this module writes ``BENCH_sim.json`` next to
the reports: events/sec of the engine plus the wall-clock of one
reference campaign run serially and with 4 worker processes, so future
changes have a machine-readable perf trajectory to compare against.
"""

import json
import pathlib
import time

from repro.bench import run_am_lat, run_put_bw
from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.node import SystemConfig

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_sim.json"


def _reference_campaign() -> CampaignSpec:
    """A small put_bw sweep: big enough to amortise pool start-up."""
    return CampaignSpec(
        name="perf-reference",
        workload="put_bw",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(SweepAxis("nic.txq_depth", (2, 8, 32, 128)),),
        params={"n_messages": 400, "warmup": 150},
        seeds=(2019, 2020),
    )


def _record(key: str, payload: dict) -> None:
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    data[key] = payload
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_put_bw_simulation_speed(benchmark):
    result = benchmark.pedantic(
        run_put_bw,
        kwargs=dict(
            config=SystemConfig.paper_testbed(deterministic=True),
            n_messages=200,
            warmup=100,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.n_measured == 200

    env = result.testbed.env
    assert env.processed_events > 0
    events_per_s = env.processed_events / benchmark.stats["mean"]
    _record(
        "engine",
        {
            "workload": "put_bw",
            "events_processed": env.processed_events,
            "wall_s_mean": benchmark.stats["mean"],
            "events_per_s": events_per_s,
        },
    )


def test_am_lat_simulation_speed(benchmark):
    result = benchmark.pedantic(
        run_am_lat,
        kwargs=dict(
            config=SystemConfig.paper_testbed(deterministic=True),
            iterations=100,
            warmup=20,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.iterations == 100


def test_campaign_parallel_speed(benchmark):
    """Serial vs ``jobs=4`` wall-clock for the reference campaign."""
    t0 = time.perf_counter()
    serial = run_campaign(_reference_campaign(), jobs=1)
    serial_s = time.perf_counter() - t0
    assert not serial.failures

    parallel = benchmark.pedantic(
        run_campaign,
        args=(_reference_campaign(),),
        kwargs=dict(jobs=4),
        rounds=1,
        iterations=1,
    )
    parallel_s = benchmark.stats["mean"]
    assert not parallel.failures
    # Parallel execution must not change the physics.
    assert parallel.measurements_json() == serial.measurements_json()

    _record(
        "campaign",
        {
            "points": len(serial.records),
            "serial_wall_s": serial_s,
            "jobs4_wall_s": parallel_s,
            "speedup": serial_s / parallel_s if parallel_s else 0.0,
        },
    )
