"""Simulator throughput — how fast the DES core itself runs.

Not a paper artefact, but a harness health metric: the full
reproduction depends on simulating hundreds of thousands of events per
campaign, so regressions here make every experiment slower.  Beyond the
pytest-benchmark timings, this module writes ``BENCH_sim.json`` next to
the reports: events/sec of the engine plus the wall-clock of one
reference campaign run serially and with 4 worker processes, so future
changes have a machine-readable perf trajectory to compare against.
"""

import json
import os
import pathlib
import time
import timeit

from repro.bench import run_am_lat, run_put_bw
from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.node import SystemConfig
from repro.sim.engine import NULL_TRACER
from repro.trace import trace_session

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_sim.json"


def _reference_campaign() -> CampaignSpec:
    """A small put_bw sweep: big enough to amortise pool start-up."""
    return CampaignSpec(
        name="perf-reference",
        workload="put_bw",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(SweepAxis("nic.txq_depth", (2, 8, 32, 128)),),
        params={"n_messages": 400, "warmup": 150},
        seeds=(2019, 2020),
    )


def _record(key: str, payload: dict) -> None:
    """Append one run's entry under ``key`` — history is never overwritten.

    Each key holds ``{"runs": [...]}``, one entry per invocation with a
    run index and UTC timestamp, so the perf trajectory across reruns is
    preserved.  Flat single-dict entries written by earlier revisions of
    this module are migrated into the list as run 0.
    """
    data = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    entry = data.get(key)
    if entry is None:
        entry = {"runs": []}
    elif "runs" not in entry:
        entry = {"runs": [dict(entry, run=0)]}
    payload = dict(payload)
    payload["run"] = len(entry["runs"])
    payload["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    entry["runs"].append(payload)
    data[key] = entry
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_put_bw_simulation_speed(benchmark):
    # Best-of-N is the stable statistic on shared/noisy CI hosts: the
    # minimum round is the least-perturbed execution, while the mean
    # absorbs scheduler noise.  Both are recorded; events_per_s uses
    # the best round.  Effective events = executed + fast-forwarded
    # (compiled chains credit elided entries even on short replays).
    result = benchmark.pedantic(
        run_put_bw,
        kwargs=dict(
            config=SystemConfig.paper_testbed(deterministic=True),
            n_messages=200,
            warmup=100,
        ),
        rounds=5,
        iterations=1,
    )
    assert result.n_measured == 200

    env = result.testbed.env
    assert env.events_executed > 0  # short runs replay through the kernel
    effective = env.events_executed + env.events_fast_forwarded
    events_per_s = effective / benchmark.stats["min"]
    _record(
        "engine",
        {
            "workload": "put_bw",
            "mode": "replay",
            "events_executed": env.events_executed,
            "events_fast_forwarded": env.events_fast_forwarded,
            "events_processed": effective,
            "wall_s_mean": benchmark.stats["mean"],
            "wall_s_best": benchmark.stats["min"],
            "rounds": 5,
            "events_per_s": events_per_s,
        },
    )


def test_put_bw_fast_forward_speed(benchmark):
    """Tier-3 throughput: the analytic fast-forward at campaign scale.

    A 100k-message put_bw engages the steady-state model (after its
    bitwise probe validation), so the run's cost is two short replayed
    probes plus the scalar state machine.  The floor asserts at least
    5× the pre-refactor engine baseline (~200k events/s) in *effective*
    events per wall second; locally this lands well above 1M.
    """
    n_messages = 100_000
    result = benchmark.pedantic(
        run_put_bw,
        kwargs=dict(
            config=SystemConfig.paper_testbed(deterministic=True),
            n_messages=n_messages,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.n_measured == n_messages

    env = result.testbed.env
    assert env.events_executed == 0, "fast-forward did not engage"
    assert env.events_fast_forwarded > 0
    effective = env.events_executed + env.events_fast_forwarded
    events_per_s = effective / benchmark.stats["min"]
    assert events_per_s >= 1_000_000, (
        f"effective throughput {events_per_s:,.0f} events/s is below the "
        f"1M floor (5x the pre-refactor ~200k baseline)"
    )
    _record(
        "engine",
        {
            "workload": "put_bw",
            "mode": "fast_forward",
            "n_messages": n_messages,
            "events_executed": env.events_executed,
            "events_fast_forwarded": env.events_fast_forwarded,
            "events_processed": effective,
            "wall_s_mean": benchmark.stats["mean"],
            "wall_s_best": benchmark.stats["min"],
            "rounds": 3,
            "events_per_s": events_per_s,
        },
    )


def test_am_lat_simulation_speed(benchmark):
    result = benchmark.pedantic(
        run_am_lat,
        kwargs=dict(
            config=SystemConfig.paper_testbed(deterministic=True),
            iterations=100,
            warmup=20,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.iterations == 100


def test_tracer_overhead():
    """Tracing must be close to free when disabled, bounded when enabled.

    The disabled path costs one ``tracer.enabled`` attribute check per
    guard site; that cost is far below run-to-run wall-clock noise, so
    instead of differencing two noisy walls it is estimated directly:
    measured per-check cost × the number of guard evaluations (taken
    from an enabled run's span/instant/counter totals, each of which
    sits behind one or two guards).
    """
    kwargs = dict(
        config=SystemConfig.paper_testbed(deterministic=True),
        iterations=100,
        warmup=20,
    )

    def best_wall(fn, rounds: int = 3) -> float:
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    disabled_wall = best_wall(lambda: run_am_lat(**kwargs))

    with trace_session() as session:
        run_am_lat(**kwargs)
    summary = session.summary()
    assert summary["spans"] > 0

    def traced():
        with trace_session():
            run_am_lat(**kwargs)

    enabled_wall = best_wall(traced)

    checks = 200_000
    per_check_s = (
        timeit.timeit("t.enabled", globals={"t": NULL_TRACER}, number=checks) / checks
    )
    counter_bumps = sum(
        value
        for names in summary["counters"].values()
        for value in names.values()
    )
    # begin+end pairs are two guarded call sites; instants and counter
    # bumps one each.
    guard_evals = 2 * summary["spans"] + summary["instants"] + counter_bumps
    disabled_overhead_ratio = (guard_evals * per_check_s) / disabled_wall

    assert disabled_overhead_ratio < 0.05, (
        f"disabled-tracer overhead {disabled_overhead_ratio:.4%} "
        f"({guard_evals:.0f} guard checks at {per_check_s * 1e9:.1f} ns "
        f"against a {disabled_wall:.4f} s run)"
    )

    _record(
        "tracer_overhead",
        {
            "workload": "am_lat",
            "disabled_wall_s": disabled_wall,
            "enabled_wall_s": enabled_wall,
            "enabled_over_disabled": (
                enabled_wall / disabled_wall if disabled_wall else 0.0
            ),
            "spans": summary["spans"],
            "instants": summary["instants"],
            "guard_evals_est": guard_evals,
            "per_guard_check_s": per_check_s,
            "disabled_overhead_ratio": disabled_overhead_ratio,
        },
    )


def test_campaign_parallel_speed(benchmark):
    """Serial vs ``jobs=4`` wall-clock for the reference campaign.

    Pending points flow through the work-stealing executor: one shared
    task queue, each worker pulling the next point as it finishes, so
    whatever parallelism the host offers is spent on simulation rather
    than idling behind a pre-dealt chunk.  On a host that actually
    grants 4 cores the 8-point reference campaign must run at least
    1.5× faster with ``jobs=4``; on smaller containers (``cpus`` in the
    record) the speedup is recorded but not asserted — a 1-core CI
    runner legitimately reports ~1.0×.
    """
    t0 = time.perf_counter()
    serial = run_campaign(_reference_campaign(), jobs=1)
    serial_s = time.perf_counter() - t0
    assert not serial.failures

    parallel = benchmark.pedantic(
        run_campaign,
        args=(_reference_campaign(),),
        kwargs=dict(jobs=4),
        rounds=1,
        iterations=1,
    )
    parallel_s = benchmark.stats["mean"]
    assert not parallel.failures
    # Parallel execution must not change the physics.
    assert parallel.measurements_json() == serial.measurements_json()

    cpus = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s else 0.0
    _record(
        "campaign",
        {
            "points": len(serial.records),
            "serial_wall_s": serial_s,
            "jobs4_wall_s": parallel_s,
            "speedup": speedup,
            "cpus": cpus,
            "dispatch": "work-stealing",
        },
    )
    if cpus >= 4:
        assert speedup >= 1.5, (
            f"jobs=4 on {cpus} cpus sped the reference campaign up only "
            f"{speedup:.2f}x (serial {serial_s:.3f}s, parallel {parallel_s:.3f}s)"
        )


def test_faults_disabled_overhead():
    """Fault injection must be close to free when no plan is attached.

    With ``faults=None`` every instrumented layer's guard is a single
    ``x is None``/``is not None`` check; like the tracer test, that cost
    is far below wall-clock noise, so it is estimated directly: measured
    per-check cost × the number of guard evaluations.  The evaluation
    count comes from a never-firing plan targeting every site — its
    per-rule ``opportunities`` counters tally exactly how often the
    guarded hot paths run for this (deterministic) workload.
    """
    from repro.faults import SITES, FaultPlan, FaultRule

    base = SystemConfig.paper_testbed(deterministic=True)
    kwargs = dict(n_messages=200, warmup=100)

    def best_wall(fn, rounds: int = 5) -> float:
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    disabled_wall = best_wall(lambda: run_put_bw(config=base, **kwargs))

    # One inert rule per site: `nth` with an unreachable occurrence never
    # fires and consults no RNG, but counts every opportunity.
    inert = FaultPlan(
        rules=tuple(
            FaultRule(site=site, kind="nth", occurrences=(10**9,))
            for site in sorted(SITES)
        )
    )
    armed = base.evolve(faults=inert)
    result = run_put_bw(config=armed, **kwargs)
    stats = result.testbed.faults.stats()
    assert stats["injected"] == 0
    guard_evals = sum(
        rule["opportunities"]
        for site in stats["sites"].values()
        for rule in site["rules"]
    )
    assert guard_evals > 0

    enabled_wall = best_wall(lambda: run_put_bw(config=armed, **kwargs))

    class _Guarded:
        faults = None

    obj = _Guarded()
    checks = 200_000
    per_check_s = (
        timeit.timeit("o.faults is not None", globals={"o": obj}, number=checks)
        / checks
    )
    disabled_overhead_ratio = (guard_evals * per_check_s) / disabled_wall

    assert disabled_overhead_ratio < 0.05, (
        f"disabled-faults overhead {disabled_overhead_ratio:.4%} "
        f"({guard_evals:.0f} guard checks at {per_check_s * 1e9:.1f} ns "
        f"against a {disabled_wall:.4f} s run)"
    )

    _record(
        "faults_overhead",
        {
            "workload": "put_bw",
            "disabled_wall_s": disabled_wall,
            "inert_plan_wall_s": enabled_wall,
            "inert_over_disabled": (
                enabled_wall / disabled_wall if disabled_wall else 0.0
            ),
            "guard_evals": guard_evals,
            "per_guard_check_s": per_check_s,
            "disabled_overhead_ratio": disabled_overhead_ratio,
        },
    )
