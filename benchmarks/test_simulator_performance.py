"""Simulator throughput — how fast the DES core itself runs.

Not a paper artefact, but a harness health metric: the full
reproduction depends on simulating hundreds of thousands of events per
campaign, so regressions here make every experiment slower.
"""

from repro.bench import run_am_lat, run_put_bw
from repro.node import SystemConfig


def test_put_bw_simulation_speed(benchmark):
    result = benchmark.pedantic(
        run_put_bw,
        kwargs=dict(
            config=SystemConfig.paper_testbed(deterministic=True),
            n_messages=200,
            warmup=100,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.n_measured == 200


def test_am_lat_simulation_speed(benchmark):
    result = benchmark.pedantic(
        run_am_lat,
        kwargs=dict(
            config=SystemConfig.paper_testbed(deterministic=True),
            iterations=100,
            warmup=20,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.iterations == 100
