"""Figure 13 — breakdown of the end-to-end latency (nine components)."""

from conftest import write_report

from repro.core.breakdown import fig13_end_to_end
from repro.reporting.experiments import experiment_fig13


def test_fig13(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig13(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig13(measured_times),
        ]
    )
    write_report(report_dir, "fig13_e2e_latency", report)

    breakdown = benchmark(fig13_end_to_end, measured_times)
    # Total within 5% of the paper's 1387.02 ns model.
    assert abs(breakdown.total_ns - 1387.02) / 1387.02 < 0.05
    percentages = breakdown.percentages()
    # Shape: the wire is the largest single bar; RC-to-MEM and
    # HLP_rx_prog are the next tier; HLP_post is the smallest.
    assert max(percentages, key=percentages.get) == "wire"
    assert min(percentages, key=percentages.get) == "hlp_post"
    assert percentages["rc_to_mem"] > 14.0
    assert percentages["hlp_rx_prog"] > 14.0
