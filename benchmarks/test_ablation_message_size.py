"""Extension — message-size sweep across the PIO/DMA boundary.

The paper motivates PIO+inlining by the cost of DMA-read round trips
(§2).  This sweep runs the latency model and the simulator across
payload sizes, demonstrating the crossover the paper describes
qualitatively: beyond the inline limit the doorbell+DMA path pays two
extra PCIe round trips plus memory reads.

The sweep is a declarative campaign over the ``put_oneway_latency``
workload with ``payload_bytes`` as the axis.
"""

from conftest import write_report

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.node import SystemConfig

SIZES = (8, 32, 64, 256, 1024, 4096)


def run_sweep():
    spec = CampaignSpec(
        name="ablation-message-size",
        workload="put_oneway_latency",
        base_config=SystemConfig.paper_testbed(deterministic=True),
        axes=(SweepAxis("payload_bytes", SIZES),),
    )
    result = run_campaign(spec)
    assert not result.failures
    return result.rows("payload_bytes", "one_way_latency_ns")


def test_message_size_sweep(benchmark, report_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [f"{'payload (B)':>12} {'one-way latency (ns)':>22} {'path':>10}"]
    for size, latency in rows:
        path = "PIO+inline" if size <= 64 else "DB+DMA"
        lines.append(f"{size:>12} {latency:>22.2f} {path:>10}")
    write_report(report_dir, "ablation_message_size", "\n".join(lines))

    latencies = dict(rows)
    # Within one PIO chunk count the latency is nearly flat (32 B and
    # 64 B payloads both need two 64-byte chunks with the 48-byte WQE
    # header); crossing a chunk boundary (8 B → 32 B) costs one extra
    # PIO copy, ~94 ns.
    assert abs(latencies[32] - latencies[64]) < 40.0
    assert 50.0 < latencies[32] - latencies[8] < 150.0
    # Crossing the inline limit costs two PCIe round trips + memory
    # reads: a step of roughly 2×(2×137.49 + 90) ≈ 730 ns.
    step = latencies[256] - latencies[64]
    assert 500.0 < step < 1000.0
    # Latency is monotone in size across the sweep.
    values = [latencies[s] for s in SIZES]
    assert values == sorted(values)
