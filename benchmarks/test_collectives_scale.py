"""Scale-out collectives — 64 ranks on a routed k=4 fat-tree.

The acceptance experiment for the fabric layer: a 64-node ring
allreduce (8 B per rank) must land within 5% of the analytic
2(N−1)-step recurrence walked over the routed per-link latencies.
Beyond the assertion, the run is appended to ``BENCH_sim.json`` (via
the run-indexed history in :mod:`test_simulator_performance`) so the
wall-clock and events/sec of the largest standard experiment have a
machine-readable trajectory.
"""

import time

from conftest import write_report
from test_simulator_performance import _record

from repro.collectives import predicted_ring_allreduce_ns, ring_allreduce
from repro.node import SystemConfig
from repro.node.cluster import Cluster

N_NODES = 64
PAYLOAD_BYTES = 8
REDUCE_NS = 20.0


def test_ring_allreduce_64_nodes_fat_tree(report_dir):
    config = (
        SystemConfig.builder().deterministic().topology("fat_tree:4").build()
    )
    cluster = Cluster(N_NODES, config=config)

    t0 = time.perf_counter()
    result = ring_allreduce(
        cluster,
        payload_bytes=PAYLOAD_BYTES,
        reduce_compute_ns=REDUCE_NS,
        iterations=1,
    )
    wall_s = time.perf_counter() - t0

    model = predicted_ring_allreduce_ns(
        N_NODES, config, cluster.topology, reduce_compute_ns=REDUCE_NS
    )
    error = abs(result.total_ns - model) / model
    events = cluster.env.processed_events

    shared = sum(
        1
        for stats in cluster.fabric.link_stats().values()
        if stats["peak_inflight"] > 1
    )
    lines = [
        f"ring allreduce, {N_NODES} ranks on {cluster.topology.spec}:",
        f"  simulated : {result.total_ns:>12.1f} ns ({result.steps} steps)",
        f"  model     : {model:>12.1f} ns (zero-load recurrence)",
        f"  error     : {error:>11.2%}",
        f"  engine    : {events} events in {wall_s:.2f} s"
        f" ({events / wall_s:,.0f} events/s)",
        f"  contention: {shared} links saw >1 frame in flight",
    ]
    write_report(report_dir, "collectives_scale", "\n".join(lines))

    _record(
        "collectives_scale",
        {
            "workload": "allreduce",
            "algorithm": "ring",
            "n_nodes": N_NODES,
            "topology": "fat_tree:4",
            "payload_bytes": PAYLOAD_BYTES,
            "simulated_ns": result.total_ns,
            "model_ns": model,
            "model_error": error,
            "events_processed": events,
            "wall_s": wall_s,
            "events_per_s": events / wall_s if wall_s else 0.0,
        },
    )

    assert result.steps == 2 * (N_NODES - 1)
    assert error < 0.05


def test_recursive_doubling_allreduce_1024_ranks(report_dir):
    """1024 ranks on a k=16 fat-tree — the scale acceptance entry.

    Ring at this size would chain ~2M sends; recursive doubling keeps
    the dependency depth at log2(1024) = 10 rounds, which is what makes
    a 1024-rank collective tractable for a tracked benchmark.  The run
    replays through the event kernel (tiers 1-2: wheel + compiled
    chains); the analytic fast-forward does not cover collectives.
    """
    from repro.collectives import recursive_doubling_allreduce

    n_ranks = 1024
    config = (
        SystemConfig.builder().deterministic().topology("fat_tree:16").build()
    )
    cluster = Cluster(n_ranks, config=config)

    t0 = time.perf_counter()
    result = recursive_doubling_allreduce(
        cluster,
        payload_bytes=PAYLOAD_BYTES,
        reduce_compute_ns=REDUCE_NS,
        iterations=1,
    )
    wall_s = time.perf_counter() - t0

    env = cluster.env
    effective = env.events_executed + env.events_fast_forwarded
    lines = [
        f"recursive-doubling allreduce, {n_ranks} ranks on {cluster.topology.spec}:",
        f"  simulated : {result.total_ns:>12.1f} ns ({result.steps} rounds)",
        f"  engine    : {effective} effective events in {wall_s:.2f} s"
        f" ({effective / wall_s:,.0f} events/s)",
        f"  of which  : {env.events_fast_forwarded} fast-forwarded"
        f" (compiled chains)",
    ]
    write_report(report_dir, "collectives_scale_1024", "\n".join(lines))

    _record(
        "collectives_scale",
        {
            "workload": "allreduce",
            "algorithm": "recursive_doubling",
            "n_nodes": n_ranks,
            "topology": "fat_tree:16",
            "payload_bytes": PAYLOAD_BYTES,
            "simulated_ns": result.total_ns,
            "events_executed": env.events_executed,
            "events_fast_forwarded": env.events_fast_forwarded,
            "events_processed": effective,
            "wall_s": wall_s,
            "events_per_s": effective / wall_s if wall_s else 0.0,
        },
    )

    assert result.steps == 10
    # Ten dependency rounds of ~one end-to-end latency each: the run
    # must land in the tens of microseconds, not milliseconds.
    assert 0 < result.total_ns < 100_000


def test_nic_offload_barrier_and_bcast_64_nodes(report_dir):
    """Host-bypass acceptance: offloaded barrier/bcast at 64 ranks.

    The same 64-node fat-tree runs each collective twice — host
    algorithms (PR-5) vs NIC-resident descriptors (``offload="nic"``) —
    and the offloaded variant must win outright while staying within 5%
    of its zero-load model.  The win is the per-hop host critical path
    (LLP post, two PCIe crossings, RC-to-MEM, CQ poll) that interior
    hops no longer pay.
    """
    from repro.collectives import run_collective
    from repro.collectives.model import (
        predicted_nic_barrier_ns,
        predicted_nic_tree_broadcast_ns,
    )

    config = (
        SystemConfig.builder().deterministic().topology("fat_tree:4").build()
    )
    lines = [f"NIC-offloaded collectives, {N_NODES} ranks on fat_tree:4:"]
    for op in ("barrier", "bcast"):
        host_cluster = Cluster(N_NODES, config=config)
        host = run_collective(op, host_cluster, iterations=1)

        nic_cluster = Cluster(N_NODES, config=config)
        t0 = time.perf_counter()
        nic = run_collective(op, nic_cluster, offload="nic", iterations=1)
        wall_s = time.perf_counter() - t0

        if op == "barrier":
            model = predicted_nic_barrier_ns(
                N_NODES, config, nic_cluster.topology
            )
        else:
            model = predicted_nic_tree_broadcast_ns(
                N_NODES, config, nic_cluster.topology
            )
        error = abs(nic.total_ns - model) / model
        saving = 1.0 - nic.total_ns / host.total_ns
        events = nic_cluster.env.processed_events
        lines += [
            f"  {op}:",
            f"    host    : {host.total_ns:>12.1f} ns",
            f"    nic     : {nic.total_ns:>12.1f} ns"
            f" ({saving:.1%} host-bypass saving)",
            f"    model   : {model:>12.1f} ns (error {error:.2%})",
            f"    engine  : {events} events in {wall_s:.3f} s",
        ]
        _record(
            "collectives_offload",
            {
                "workload": op,
                "offload": "nic",
                "n_nodes": N_NODES,
                "topology": "fat_tree:4",
                "host_ns": host.total_ns,
                "nic_ns": nic.total_ns,
                "saving": saving,
                "model_ns": model,
                "model_error": error,
                "events_processed": events,
                "wall_s": wall_s,
            },
        )

        assert nic.total_ns < host.total_ns, (
            f"offloaded {op} must beat the host algorithm"
        )
        assert error < 0.05

    write_report(report_dir, "collectives_offload", "\n".join(lines))
