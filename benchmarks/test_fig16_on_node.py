"""Figure 16 — breakdown of time spent on node."""

from conftest import write_report

from repro.core.breakdown import fig16_on_node
from repro.reporting.experiments import experiment_fig16


def test_fig16(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig16(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig16(measured_times),
        ]
    )
    write_report(report_dir, "fig16_on_node", report)

    parts = benchmark(fig16_on_node, measured_times)
    # Insight 3's shape: the target dominates on-node time; the
    # initiator is software-heavy (PIO), the target I/O-heavy
    # (RC-to-MEM the largest piece).
    assert parts["top"].percent("target") > 55.0
    assert parts["initiator"].percent("cpu") > 50.0
    assert parts["target"].percent("io") > 50.0
    assert parts["target_io"].percent("rc_to_mem") > 50.0
