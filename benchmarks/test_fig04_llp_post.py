"""Figure 4 — breakdown of time in an LLP_post."""

from conftest import write_report

from repro.core.breakdown import fig4_llp_post
from repro.reporting.experiments import experiment_fig4


def test_fig04(benchmark, measured_times, paper_times, report_dir):
    report = "\n\n".join(
        [
            "PAPER VALUES\n" + experiment_fig4(paper_times),
            "SIMULATOR (methodology-measured)\n" + experiment_fig4(measured_times),
        ]
    )
    write_report(report_dir, "fig04_llp_post", report)

    breakdown = benchmark(fig4_llp_post, measured_times)
    percentages = breakdown.percentages()
    # Shape: the PIO copy dominates the LLP_post (53.79% in the paper).
    assert percentages["pio_copy"] > 45.0
    assert max(percentages, key=percentages.get) == "pio_copy"
    # All five constituents present and ordered as in the paper's bar.
    assert breakdown.labels == (
        "md_setup", "barrier_md", "barrier_dbc", "pio_copy", "other",
    )
