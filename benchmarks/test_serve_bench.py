"""Serving-tier performance — what the what-if tier actually buys.

Records into ``BENCH_sim.json`` (same run-indexed history as the
simulator benchmarks):

* ``serve_surrogate`` — in-envelope surrogate answer latency vs a full
  simulation of the same query, with the speedup asserted >= 100x (the
  PR's acceptance bar) and the sampled-verifier error asserted <= 5%;
* ``serve_store`` — store hit rate over a replayed query mix: the
  first pass pays simulations, the replay must answer entirely from
  the content-addressed store.
"""

import pathlib
import sys
import time
import timeit

from repro.campaign.spec import apply_config_overrides
from repro.campaign.workloads import get_workload
from repro.node import SystemConfig
from repro.serve import Query, SampledVerifier, ServeTier

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from test_simulator_performance import _record  # noqa: E402

BASE = SystemConfig.paper_testbed(deterministic=True)

#: In-envelope query points (payload, switch hops) on the DMA plateau.
IN_ENVELOPE = [(1536, 1), (2048, 2), (3072, 3), (2560, 1), (4000, 2)]


def _fit_tier(tmp_path, fraction: float) -> ServeTier:
    tier = ServeTier(
        tmp_path / "store",
        base_config=BASE,
        verifier=SampledVerifier(fraction=fraction),
    )
    tier.fit(
        "put_oneway_latency",
        axes={"payload_bytes": (1024, 4096), "network.switch_count": (1, 3)},
    )
    return tier


def test_surrogate_answer_latency_vs_simulation(tmp_path):
    """An in-envelope surrogate answer must beat simulation by >= 100x."""
    tier = _fit_tier(tmp_path, fraction=0.0)
    (surrogate,) = tier.surrogates
    workload = get_workload("put_oneway_latency")

    def simulate_once() -> None:
        for payload, hops in IN_ENVELOPE:
            workload(
                apply_config_overrides(BASE, {"network.switch_count": hops}),
                payload_bytes=payload,
            )

    def predict_once() -> None:
        for payload, hops in IN_ENVELOPE:
            surrogate.predict(
                {"payload_bytes": payload}, {"network.switch_count": hops}
            )

    sim_rounds, predict_rounds = 3, 50
    sim_s = min(
        timeit.repeat(simulate_once, number=1, repeat=sim_rounds)
    ) / len(IN_ENVELOPE)
    predict_s = min(
        timeit.repeat(predict_once, number=predict_rounds, repeat=3)
    ) / (predict_rounds * len(IN_ENVELOPE))
    speedup = sim_s / predict_s if predict_s else 0.0

    # The accuracy half of the bargain: audit every one of those
    # answers against a fresh simulation through the sampled verifier.
    audited = _fit_tier(tmp_path / "audited", fraction=1.0)
    errors = []
    for payload, hops in IN_ENVELOPE:
        answer = audited.query(
            "put_oneway_latency",
            {"payload_bytes": payload},
            {"network.switch_count": hops},
        )
        assert answer.source == "surrogate"
        assert answer.verification is not None
        errors.append(answer.verification.max_relative_error)
    worst_error = max(errors)

    _record(
        "serve_surrogate",
        {
            "workload": "put_oneway_latency",
            "queries": len(IN_ENVELOPE),
            "simulation_s_per_query": sim_s,
            "surrogate_s_per_query": predict_s,
            "speedup": speedup,
            "verified_answers": len(errors),
            "max_relative_error": worst_error,
        },
    )
    assert speedup >= 100.0, (
        f"surrogate answered in {predict_s * 1e6:.1f} us vs "
        f"{sim_s * 1e3:.2f} ms simulated — only {speedup:.0f}x"
    )
    assert worst_error <= 0.05, (
        f"verifier measured {worst_error:.2%} surrogate error (margin 5%)"
    )


def test_store_hit_rate_under_replayed_mix(tmp_path):
    """A replayed query mix must answer entirely from the store."""
    mix = [
        Query("put_oneway_latency", {"payload_bytes": payload})
        for payload in (8, 64, 256, 1024, 4096, 8192)
    ] + [
        Query("put_oneway_latency", {"payload_bytes": 64}, {"nic.txq_depth": 4}),
        Query("am_lat", {"iterations": 50, "warmup": 10}),
    ]
    tier = ServeTier(
        tmp_path / "store",
        base_config=BASE,
        verifier=SampledVerifier(fraction=0.0),
    )

    t0 = time.perf_counter()
    first = tier.query_batch(mix)
    first_s = time.perf_counter() - t0
    assert all(answer.ok for answer in first)
    cold_stats = tier.stats()

    t1 = time.perf_counter()
    replay = tier.query_batch(mix)
    replay_s = time.perf_counter() - t1
    assert [a.measurements for a in replay] == [a.measurements for a in first]
    warm_stats = tier.stats()

    replay_hits = warm_stats["store_hits"] - cold_stats["store_hits"]
    replay_hit_rate = replay_hits / len(mix)
    _record(
        "serve_store",
        {
            "mix_queries": len(mix),
            "cold_wall_s": first_s,
            "replay_wall_s": replay_s,
            "cold_hit_rate": cold_stats["rates"]["store_hit"],
            "replay_hit_rate": replay_hit_rate,
            "replay_speedup": first_s / replay_s if replay_s else 0.0,
        },
    )
    assert replay_hit_rate == 1.0
