#!/usr/bin/env python
"""Extension study: RDMA read (get) vs RDMA write (put).

The paper measures writes and send-receive; reads are the other half of
one-sided communication.  A read pays an extra network traversal plus a
full PCIe round trip and memory read at the *target* — this example
walks a get through the simulator stage by stage and compares against
the extension model (``RdmaReadLatencyModel``) and the paper's write
latency.

Run:  python examples/rdma_read.py
"""

from repro import ComponentTimes
from repro.core.models import LatencyModelLlp, RdmaReadLatencyModel
from repro.llp.uct import UCS_OK, UctWorker
from repro.node import SystemConfig, Testbed


def simulate_get(payload_bytes: int = 8):
    tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
    worker = UctWorker(tb.node1)
    iface = worker.create_iface()
    remote = UctWorker(tb.node2).create_iface()
    ep = iface.create_ep(remote)

    def body():
        status = yield from ep.get_bcopy(payload_bytes)
        assert status == UCS_OK

    tb.env.run(until=tb.env.process(body(), name="get"))
    tb.run()
    return iface.last_message, tb


def main() -> None:
    message, tb = simulate_get()
    print("== One RDMA read (8 B), stage by stage ==")
    previous = 0.0
    for stage in (
        "posted", "pio_written", "nic_arrival", "target_nic",
        "read_served", "response_rx", "payload_visible", "cqe_visible",
    ):
        when = message.timestamps[stage]
        print(f"{stage:>18}: {when:9.2f} ns  (+{when - previous:.2f})")
        previous = when
    print(f"\ntarget CPU busy time: {tb.node2.cpu.busy_ns:.2f} ns "
          "(one-sided: the target processor never runs)")

    times = ComponentTimes.paper()
    read = RdmaReadLatencyModel(times)
    write = LatencyModelLlp(times)
    print("\n== Analytical comparison (LLP level, 8 B) ==")
    print(f"RDMA write latency: {write.predicted_ns:8.2f} ns")
    print(f"RDMA read latency:  {read.predicted_ns:8.2f} ns")
    print(f"read premium:       {read.predicted_ns - write.predicted_ns:8.2f} ns "
          "(one extra Network + target PCIe round trip + memory read)")

    print("\n== Read latency components ==")
    for name, value in read.components().items():
        print(f"  {name:<24} {value:8.2f} ns")


if __name__ == "__main__":
    main()
