#!/usr/bin/env python
"""Scenario study: a NIC integrated into the SoC (§7.1).

"The Tofu interconnect D on Fujitsu's post-K machine is a prominent
example of this optimization.  With Tofu's NIC integrated into a
post-K-node, the RDMA-write latency has been improved by nearly 400
nanoseconds."

This example models a TX2-class SoC with an on-die NIC: PCIe crossings
shrink to network-on-chip hops and the payload write lands through the
coherent fabric.  It re-runs the paper's benchmarks on both systems and
reports the latency improvement and the new category breakdown.

Run:  python examples/integrated_nic.py
"""

from repro import ComponentTimes, SystemConfig
from repro.bench import run_osu_latency, run_put_bw
from repro.core.breakdown import fig15_categories
from repro.pcie.config import PcieConfig
from repro.reporting.figures import render_breakdown_bar

#: Network-on-chip hop instead of a PCIe traversal (~10 ns).
NOC_HOP_NS = 10.0
#: Coherent-fabric payload write instead of RC-to-MEM (~60 ns at 8 B).
FABRIC_WRITE_BASE_NS = 58.0
FABRIC_WRITE_PER_BYTE = 0.25


def integrated_config() -> SystemConfig:
    base = SystemConfig.paper_testbed(deterministic=True)
    return base.evolve(
        pcie=PcieConfig(
            base_latency_ns=NOC_HOP_NS,
            rc_to_mem_base_ns=FABRIC_WRITE_BASE_NS,
            rc_to_mem_per_byte_ns=FABRIC_WRITE_PER_BYTE,
        )
    )


def main() -> None:
    discrete = SystemConfig.paper_testbed(deterministic=True)
    integrated = integrated_config()

    print("== OSU MPI latency, discrete vs integrated NIC ==")
    lat_discrete = run_osu_latency(config=discrete, iterations=200, warmup=40)
    lat_integrated = run_osu_latency(config=integrated, iterations=200, warmup=40)
    saving = lat_discrete.observed_latency_ns - lat_integrated.observed_latency_ns
    print(f"discrete NIC (PCIe):     {lat_discrete.observed_latency_ns:8.2f} ns")
    print(f"integrated NIC (NoC):    {lat_integrated.observed_latency_ns:8.2f} ns")
    print(f"improvement:             {saving:8.2f} ns "
          "(the paper cites ~400 ns for Tofu D)")

    print("\n== Injection overhead (put_bw) ==")
    inj_discrete = run_put_bw(config=discrete, n_messages=300, warmup=150)
    inj_integrated = run_put_bw(config=integrated, n_messages=300, warmup=150)
    print(f"discrete NIC:   {inj_discrete.mean_injection_overhead_ns:8.2f} ns")
    print(f"integrated NIC: {inj_integrated.mean_injection_overhead_ns:8.2f} ns "
          "(CPU-paced: integration barely moves it — Insight 1)")

    # Category breakdown before/after: I/O shrinks from ~37% to a sliver,
    # making the CPU the clear next optimization target.
    print("\n== Category breakdown, before and after ==")
    before = ComponentTimes.paper()
    after = ComponentTimes(
        pcie=NOC_HOP_NS,
        rc_to_mem_8b=FABRIC_WRITE_BASE_NS + FABRIC_WRITE_PER_BYTE * 8,
        rc_to_mem_64b=FABRIC_WRITE_BASE_NS + FABRIC_WRITE_PER_BYTE * 64,
    )
    print(render_breakdown_bar(fig15_categories(before)["top"]))
    print()
    print(render_breakdown_bar(fig15_categories(after)["top"]))


if __name__ == "__main__":
    main()
