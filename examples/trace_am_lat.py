#!/usr/bin/env python
"""Trace one am_lat run and inspect where its nanoseconds went.

The tracing layer answers, for a *single* run, the question the paper
answers statistically: which component holds the message at every
instant?  This example

1. runs the am_lat ping-pong inside a :func:`repro.trace.trace_session`,
2. prints the per-layer span totals,
3. extracts one ping's critical path and checks it against the
   closed-form Figure 10 model,
4. renders a nested text timeline of that ping,
5. exports the whole run as Perfetto JSON (open at ui.perfetto.dev).

Run:  python examples/trace_am_lat.py
"""

import pathlib
import tempfile

from repro.bench import run_am_lat
from repro.core.breakdown import fig10_latency_llp
from repro.core.components import ComponentTimes
from repro.node import SystemConfig
from repro.reporting import render_timeline
from repro.trace import (
    critical_path_breakdown,
    critical_path_report,
    trace_session,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Run the benchmark with tracing enabled.
    # ------------------------------------------------------------------
    with trace_session() as session:
        result = run_am_lat(
            config=SystemConfig.paper_testbed(deterministic=True),
            iterations=50,
            warmup=10,
        )
    print(f"am_lat: observed latency {result.observed_latency_ns:.2f} ns")

    # ------------------------------------------------------------------
    # 2. Per-layer accounting across the whole run.
    # ------------------------------------------------------------------
    summary = session.summary()
    print(f"\nrecorded {summary['spans']} spans, {summary['instants']} instants")
    for layer, stats in sorted(summary["per_layer"].items()):
        print(
            f"  {layer:<8} {stats['spans']:>6} spans "
            f"{stats['total_ns']:>12.2f} ns total"
        )

    # ------------------------------------------------------------------
    # 3. One ping's critical path vs the Figure 10 model.
    # ------------------------------------------------------------------
    spans = session.spans()
    posted = [
        s.attrs.get("msg")
        for s in spans
        if s.layer == "llp" and s.name == "llp_post"
    ]
    msg_id = next(
        m
        for m in reversed(posted)
        if critical_path_breakdown(spans, m).value("rc_to_mem") > 0
    )
    model = fig10_latency_llp(ComponentTimes.paper())
    print()
    print(critical_path_report(spans, msg_id, reference=model))

    # ------------------------------------------------------------------
    # 4. The same ping as a nested timeline.
    # ------------------------------------------------------------------
    ping = session.spans_for_message(msg_id)
    print()
    print(render_timeline(ping, limit=20))

    # ------------------------------------------------------------------
    # 5. Export everything for ui.perfetto.dev.
    # ------------------------------------------------------------------
    out_path = pathlib.Path(tempfile.gettempdir()) / "am_lat_trace.json"
    session.write_chrome_trace(out_path)
    print(f"\nwrote {out_path} (load it at https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
