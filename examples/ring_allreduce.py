#!/usr/bin/env python
"""Multi-node extension: a ring allreduce, predicted from the paper's model.

The paper measures one link between two nodes.  Its end-to-end latency
model composes: a lockstep ring collective over N nodes takes
2(N−1) steps of one end-to-end latency each.  This example runs the
collective on simulated clusters of growing size and checks the
composed prediction — small-message latency is the whole story for
fine-grained collectives, which is why the paper's breakdown matters.

Run:  python examples/ring_allreduce.py
"""

from repro.apps import run_ring_allreduce
from repro.core.components import ComponentTimes
from repro.core.models import EndToEndLatencyModel
from repro.core.whatif import Metric, WhatIfAnalysis
from repro.node import SystemConfig

REDUCE_NS = 20.0


def main() -> None:
    config = SystemConfig.paper_testbed(deterministic=True)
    e2e = EndToEndLatencyModel(ComponentTimes.paper()).predicted_ns
    print(f"{'nodes':>6} {'steps':>6} {'simulated (ns)':>15} "
          f"{'2(N-1)(L+c) model':>18} {'error':>7}")
    for n_nodes in (2, 3, 4, 8, 16):
        result = run_ring_allreduce(
            n_nodes, config=config, iterations=5, reduce_compute_ns=REDUCE_NS
        )
        model = result.steps * (e2e + REDUCE_NS)
        error = abs(result.time_per_allreduce_ns - model) / model
        print(f"{n_nodes:>6} {result.steps:>6} "
              f"{result.time_per_allreduce_ns:>15.1f} {model:>18.1f} "
              f"{error:>6.1%}")

    # What would the §7.1 integrated NIC buy a 16-node allreduce?
    analysis = WhatIfAnalysis(ComponentTimes.paper())
    io = analysis.latency_io_components()["Integrated NIC"]
    speedup = analysis.speedup(Metric.LATENCY, io, 0.9)
    print(f"\nA 90% I/O reduction (integrated NIC) speeds each step — and"
          f"\ntherefore the whole collective — by {speedup * 100:.1f}%: the"
          f"\npaper's per-link what-if carries straight through to N-node"
          f"\ncollectives because the steps serialise.")


if __name__ == "__main__":
    main()
