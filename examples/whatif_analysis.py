#!/usr/bin/env python
"""What-if analysis: "if we optimize component X by Y%, what happens?"

Reproduces the paper's Figure 17 panels and then goes beyond them: a
custom combined-optimization scenario (faster PIO *and* an on-package
NIC) evaluated both analytically and by re-running the simulator with
the optimized parameters — demonstrating §7's claim that the two
approaches agree exactly.

Run:  python examples/whatif_analysis.py
"""

from repro import ComponentTimes, Metric, SystemConfig, WhatIfAnalysis
from repro.bench import run_osu_latency
from repro.cpu.costs import SegmentCosts
from repro.cpu.memory import MemoryModel
from repro.pcie.config import PcieConfig
from repro.reporting.figures import render_series


def main() -> None:
    times = ComponentTimes.paper()
    analysis = WhatIfAnalysis(times)

    # ------------------------------------------------------------------
    # The four published panels.
    # ------------------------------------------------------------------
    print(render_series(
        "Figure 17a — injection speedup vs CPU reduction", analysis.figure17a()))
    print()
    print(render_series(
        "Figure 17c — latency speedup vs I/O reduction", analysis.figure17c()))

    # ------------------------------------------------------------------
    # A custom scenario: §7.1's two on-node optimizations combined.
    #   * PIO copy reduced to 15 ns (writes to Device memory as fast as
    #     Normal memory),
    #   * an SoC-integrated NIC cutting PCIe to 20 ns per crossing and
    #     RC-to-MEM to 80 ns.
    # ------------------------------------------------------------------
    pio_target = 15.0
    pcie_target = 20.0
    rc_target = 80.0

    predicted = (
        (times.pio_copy - pio_target)
        + 2 * (times.pcie - pcie_target)
        + (times.rc_to_mem_8b - rc_target)
    )
    baseline_latency = analysis.total(Metric.LATENCY)
    print("\n== Combined on-node optimization (analytical) ==")
    print(f"baseline end-to-end latency: {baseline_latency:8.2f} ns")
    print(f"predicted saving:            {predicted:8.2f} ns "
          f"({100 * predicted / baseline_latency:.1f}% speedup)")

    # Re-simulate with the optimized hardware and compare.
    fast_config = SystemConfig.paper_testbed(deterministic=True).evolve(
        costs=SegmentCosts(pio_copy_64b=pio_target),
        memory=MemoryModel(device_write_64b=pio_target),
        pcie=PcieConfig(
            base_latency_ns=pcie_target,
            rc_to_mem_base_ns=rc_target - 0.27 * 8,
        ),
    )
    baseline = run_osu_latency(
        config=SystemConfig.paper_testbed(deterministic=True),
        iterations=200, warmup=40,
    )
    optimized = run_osu_latency(config=fast_config, iterations=200, warmup=40)
    observed = baseline.observed_latency_ns - optimized.observed_latency_ns
    print("\n== Same scenario, re-simulated ==")
    print(f"baseline observed latency:   {baseline.observed_latency_ns:8.2f} ns")
    print(f"optimized observed latency:  {optimized.observed_latency_ns:8.2f} ns")
    print(f"observed saving:             {observed:8.2f} ns "
          f"({100 * observed / baseline.observed_latency_ns:.1f}% speedup)")
    print(f"model-vs-simulation gap:     {abs(observed - predicted):8.2f} ns")


if __name__ == "__main__":
    main()
