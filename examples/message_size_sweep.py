#!/usr/bin/env python
"""Extension study: one-way latency across the PIO/DMA boundary.

The paper restricts its measurements to 8-byte messages and motivates
PIO+inlining by the cost of DMA-read round trips (§2).  This example
sweeps the payload size through the inline limit and shows the two
regimes the background section describes:

* ≤ 64 B: PIO+inline — latency grows in 94 ns steps, one per extra
  64-byte PIO chunk;
* > 64 B: DoorBell + DMA — a ~700 ns step for the two PCIe round trips
  (descriptor fetch, payload fetch) plus memory reads, then linear
  growth from the RC's per-byte write cost.

Run:  python examples/message_size_sweep.py
"""

from repro.llp.uct import UCS_OK, UctWorker
from repro.node import SystemConfig, Testbed

SIZES = (8, 16, 32, 48, 64, 128, 256, 512, 1024, 2048, 4096)


def one_way_latency(payload_bytes: int) -> tuple[float, str]:
    tb = Testbed(SystemConfig.paper_testbed(deterministic=True))
    worker = UctWorker(tb.node1)
    iface = worker.create_iface()
    remote_iface = UctWorker(tb.node2).create_iface()
    ep = iface.create_ep(remote_iface)
    inline = payload_bytes <= tb.config.nic.inline_max_bytes

    def body():
        if inline:
            status = yield from ep.put_short(payload_bytes)
        else:
            status = yield from ep.put_zcopy(payload_bytes)
        assert status == UCS_OK

    tb.env.run(until=tb.env.process(body(), name="post"))
    tb.run()
    message = iface.last_message
    return message.interval("posted", "payload_visible"), (
        "PIO+inline" if inline else "DB+DMA"
    )


def main() -> None:
    print(f"{'payload (B)':>12} {'one-way latency (ns)':>22} {'path':>12}")
    print("-" * 48)
    previous = None
    for size in SIZES:
        latency, path = one_way_latency(size)
        step = f"  (+{latency - previous:.0f})" if previous is not None else ""
        print(f"{size:>12} {latency:>22.2f} {path:>12}{step}")
        previous = latency
    print("\nThe ~700 ns step at 128 B is the cost PIO+inlining avoids: two")
    print("PCIe round trips (MD fetch, payload fetch) plus host memory reads.")


if __name__ == "__main__":
    main()
