#!/usr/bin/env python
"""Application study: a 1-D halo exchange (stencil) over the MPI stack.

§7 argues that feeding component reductions into "an MPI stencil kernel
through a distributed system simulator (such as SimGrid) results in
exactly the same linear speedups" as the paper's manual what-if
analysis, because the model components do not overlap.

This example builds the communication phase of a two-process stencil —
each iteration both ranks post a halo receive, send their boundary to
the neighbour, wait for the halo, then "compute" — runs it on the
simulated testbed, and checks the §7 claim: optimizing the switch away
speeds the communication phase by exactly the Figure 17d prediction.

Run:  python examples/halo_exchange.py
"""

from repro import ComponentTimes, Metric, SystemConfig, WhatIfAnalysis
from repro.hlp.mpi import MpiStack
from repro.node import Testbed

ITERATIONS = 200
HALO_BYTES = 8          # one double per boundary cell, fine-grained
COMPUTE_NS = 500.0      # interior update between exchanges


def run_stencil(config: SystemConfig) -> float:
    """Return the mean per-iteration communication time (ns)."""
    tb = Testbed(config)
    rank0 = MpiStack(tb.node1)
    rank1 = MpiStack(tb.node2)
    comm01 = rank0.connect(rank1)
    comm10 = rank1.connect(rank0)
    comm_time = {"total": 0.0}

    def rank(comm, node, record: bool):
        for _ in range(ITERATIONS):
            t0 = node.env.now
            halo = yield from comm.irecv(HALO_BYTES)
            yield from comm.isend(HALO_BYTES)
            yield from comm.wait(halo)
            if record:
                comm_time["total"] += node.env.now - t0
            yield from node.cpu.execute("compute", mean=COMPUTE_NS)

    p0 = tb.env.process(rank(comm01, tb.node1, True), name="rank0")
    tb.env.process(rank(comm10, tb.node2, False), name="rank1")
    tb.env.run(until=p0)
    return comm_time["total"] / ITERATIONS


def main() -> None:
    baseline_cfg = SystemConfig.paper_testbed(deterministic=True)
    direct_cfg = SystemConfig.paper_testbed_direct(deterministic=True)

    baseline = run_stencil(baseline_cfg)
    no_switch = run_stencil(direct_cfg)
    observed_speedup = (baseline - no_switch) / baseline

    print("== Two-process halo exchange, communication phase ==")
    print(f"with switch:    {baseline:8.2f} ns per exchange")
    print(f"without switch: {no_switch:8.2f} ns per exchange")
    print(f"observed communication speedup: {observed_speedup * 100:.2f}%")

    # The §7 claim: the application-level communication speedup equals
    # the what-if engine's prediction for removing the switch — with a
    # correction for the parts of the exchange the latency model does
    # not cover (the wait-entry spin and the send of the *other* rank
    # overlap differently in an app than in a ping-pong).
    analysis = WhatIfAnalysis(ComponentTimes.paper())
    e2e_prediction = analysis.speedup(Metric.LATENCY, 108.0, 1.0)
    absolute_prediction_ns = 108.0  # one hop removed from the one-way path
    print("\n== What-if engine (Figure 17d, switch at 100% reduction) ==")
    print(f"predicted absolute saving:  {absolute_prediction_ns:8.2f} ns")
    print(f"observed absolute saving:   {baseline - no_switch:8.2f} ns")
    print(f"predicted e2e speedup:      {e2e_prediction * 100:.2f}% "
          "(on the 1387 ns model path)")
    gap = abs((baseline - no_switch) - absolute_prediction_ns)
    print(f"model-vs-application gap:   {gap:8.2f} ns "
          f"({'linear-speedup claim holds' if gap < 5 else 'DEVIATES'})")


if __name__ == "__main__":
    main()
