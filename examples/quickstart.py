#!/usr/bin/env python
"""Quickstart: model, simulate, and break down small-message latency.

This walks the three levels of the library in ~50 lines:

1. the analytical models with the paper's published component times;
2. the simulated two-node testbed running the same benchmarks the
   paper ran (UCX put_bw / am_lat, OSU message rate / latency);
3. the breakdown figures that tell you *where* the time goes.

Run:  python examples/quickstart.py
"""

from repro import (
    ComponentTimes,
    EndToEndLatencyModel,
    InjectionModelLlp,
    OverallInjectionModel,
    SystemConfig,
)
from repro.bench import run_am_lat, run_osu_latency, run_osu_message_rate, run_put_bw
from repro.core.breakdown import fig13_end_to_end, fig15_categories
from repro.reporting.figures import render_breakdown_bar
from repro.reporting.tables import render_breakdown_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The analytical models with the paper's measured values.
    # ------------------------------------------------------------------
    times = ComponentTimes.paper()
    print("== Analytical models (paper values) ==")
    print(f"LLP injection overhead (Eq. 1): {InjectionModelLlp(times).predicted_ns:8.2f} ns")
    print(f"Overall injection overhead (Eq. 2): {OverallInjectionModel(times).predicted_ns:8.2f} ns")
    print(f"End-to-end latency (§6):        {EndToEndLatencyModel(times).predicted_ns:8.2f} ns")

    # ------------------------------------------------------------------
    # 2. Observe the same quantities on the simulated testbed.
    # ------------------------------------------------------------------
    config = SystemConfig.paper_testbed(seed=1)
    print("\n== Simulated observations (noisy testbed) ==")
    put = run_put_bw(config=config, n_messages=500, warmup=256)
    print(f"put_bw NIC-observed injection:   {put.mean_injection_overhead_ns:8.2f} ns")
    am = run_am_lat(config=config, iterations=300, warmup=50)
    print(f"am_lat observed latency:         {am.observed_latency_ns:8.2f} ns")
    mr = run_osu_message_rate(config=config, windows=20, warmup_windows=6)
    print(f"OSU message rate:                {mr.message_rate_per_s / 1e6:8.3f} M msg/s "
          f"(1/rate = {mr.cpu_side_injection_overhead_ns:.2f} ns)")
    lat = run_osu_latency(config=config, iterations=300, warmup=50)
    print(f"OSU MPI latency:                 {lat.observed_latency_ns:8.2f} ns")

    # ------------------------------------------------------------------
    # 3. Where does the time go?  (Figures 13 and 15.)
    # ------------------------------------------------------------------
    print("\n== Breakdown of the end-to-end latency ==")
    print(render_breakdown_table(fig13_end_to_end(times)))
    print()
    print(render_breakdown_bar(fig15_categories(times)["top"]))


if __name__ == "__main__":
    main()
