#!/usr/bin/env python
"""Model a system of your own: an x86 + 400G RoCE hypothetical.

The paper closes: "researchers and engineers can identify bottlenecks
on their own systems using our detailed methodology".  This example
shows the workflow on a system that is *not* the paper's testbed — a
hypothetical x86 server with a 400 GbE RoCE NIC:

1. describe the system as a :class:`SystemConfig` (faster device-memory
   writes, slower switch, higher wire latency from FEC — the §7.2
   trade-off);
2. simulate it and re-measure the components with the methodology;
3. run the same breakdowns and what-if analysis the paper ran, and see
   how the optimization guidance *changes*.

Run:  python examples/custom_system.py   (~60 s)
"""

from repro.analysis import measure_component_times
from repro.core.breakdown import fig15_categories
from repro.core.insights import all_insights
from repro.core.whatif import Metric, WhatIfAnalysis
from repro.cpu.costs import SegmentCosts
from repro.cpu.memory import MemoryModel
from repro.network.config import NetworkConfig
from repro.node.config import SystemConfig
from repro.pcie.config import PcieConfig
from repro.reporting.figures import render_breakdown_bar


def x86_roce_config() -> SystemConfig:
    """A plausible x86 + 400G RoCE system (illustrative numbers)."""
    return SystemConfig(
        costs=SegmentCosts(
            md_setup=15.0,        # stronger single-thread perf
            barrier_md=2.0,       # x86-TSO: store fences are cheap
            barrier_dbc=2.0,
            pio_copy_64b=40.0,    # faster WC-buffer write combining
            llp_post_misc=10.0,
            llp_prog=35.0,
        ),
        memory=MemoryModel(normal_write_64b=0.5, device_write_64b=40.0),
        pcie=PcieConfig(base_latency_ns=110.0, rc_to_mem_base_ns=160.0),
        network=NetworkConfig(
            wire_latency_ns=450.0,   # PAM4 + FEC latency tax (§7.2)
            switch_latency_ns=300.0,  # Ethernet switch, not InfiniBand
        ),
        seed=123,
    )


def main() -> None:
    config = x86_roce_config()
    print("Measuring the hypothetical x86 + 400G RoCE system "
          "(full methodology)...")
    campaign = measure_component_times(config, quick=True)
    times = campaign.to_component_times()

    print("\n== Where does the time go on this system? ==")
    print(render_breakdown_bar(fig15_categories(times)["top"]))

    print("\n== Do the paper's insights still hold? ==")
    for insight in all_insights(times):
        print(insight)

    print("\n== What should this system's owners optimize? ==")
    analysis = WhatIfAnalysis(times)
    candidates = {
        **analysis.latency_cpu_components(),
        **analysis.latency_io_components(),
        **analysis.latency_network_components(),
    }
    ranked = sorted(
        (
            (name, analysis.speedup(Metric.LATENCY, value, 0.5))
            for name, value in candidates.items()
        ),
        key=lambda pair: -pair[1],
    )
    print("latency speedup from a 50% reduction, best first:")
    for name, speedup in ranked[:6]:
        print(f"  {name:<16} {speedup * 100:6.2f}%")
    print("\nOn the paper's testbed the on-node components dominate; on this"
          "\nEthernet-based system the network does — the same methodology,"
          "\na different optimization target, which is exactly the point.")


if __name__ == "__main__":
    main()
