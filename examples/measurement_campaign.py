#!/usr/bin/env python
"""Run the paper's full measurement methodology end to end.

Executes §§3-6 against the noisy simulated testbed — profiled software
regions one component at a time, PCIe-analyzer trace arithmetic for the
hardware, the OSU runs for the send-progress terms — then:

* prints the regenerated Table 1 next to the paper's values;
* validates all four analytical models against the benchmark
  observations (the paper's ≤5% claims);
* prints the Figure 7 injection-overhead distribution summary.

Run:  python examples/measurement_campaign.py   (~60 s)
"""

from repro.analysis import measure_component_times
from repro.core.components import ComponentTimes
from repro.node import SystemConfig
from repro.reporting.experiments import (
    experiment_fig7,
    experiment_table1,
    experiment_validation,
)


def main() -> None:
    print("Running the measurement campaign (this simulates ~20 benchmark runs)...")
    campaign = measure_component_times(SystemConfig.paper_testbed(seed=7))
    measured = campaign.to_component_times()

    print("\n== Table 1, re-measured through the methodology ==")
    print(experiment_table1(measured, reference=ComponentTimes.paper()))

    print("\n== Model validation (modeled vs simulator-observed) ==")
    print(experiment_validation(measured, campaign.observed))

    print("\n== Injection-overhead distribution (Figure 7) ==")
    print(experiment_fig7(campaign.injection_distribution))


if __name__ == "__main__":
    main()
