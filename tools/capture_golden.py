"""Capture golden-timeline digests for the kernel determinism tests.

Runs the seeded reference workloads under tracing and prints the
digests that ``tests/integration/test_golden_timeline.py`` pins.  The
pinned values were captured on the generator-only kernel (before the
callback fast path landed); re-run this script and update the test
constants only when an *intentional* timing change ships.

Identity counters (message ids, TLP ids, frame ids, ...) are
process-global, so digests are only reproducible from a **fresh
process** running the scenarios in this module's order — which is how
the golden tests invoke it (a subprocess per comparison).

Usage::

    PYTHONPATH=src python tools/capture_golden.py [scenario ...]
"""

from __future__ import annotations

import hashlib
import json
import sys


def golden_runs():
    """The seeded scenarios pinned by the golden-timeline tests.

    Shared with the test module so the capture tool and the assertions
    can never drift apart.
    """
    from repro.bench import run_am_lat, run_put_bw
    from repro.node import SystemConfig
    from repro.pcie.config import PcieConfig

    deterministic = SystemConfig.paper_testbed(deterministic=True)
    jittered = SystemConfig.paper_testbed(seed=7)
    lossy = SystemConfig.paper_testbed(deterministic=True).evolve(
        pcie=PcieConfig(tlp_corruption_prob=0.05)
    )

    def put_bw_measurements(result):
        return {
            "total_ns": result.total_ns,
            "mean_injection_overhead_ns": result.mean_injection_overhead_ns,
            "median_injection_overhead_ns": result.median_injection_overhead_ns,
            "busy_posts": result.busy_posts,
            "n_measured": result.n_measured,
        }

    def am_lat_measurements(result):
        return {
            "total_ns": result.total_ns,
            "observed_latency_ns": result.observed_latency_ns,
            "iterations": result.iterations,
        }

    return {
        "put_bw_deterministic": (
            lambda: run_put_bw(config=deterministic, n_messages=60, warmup=20),
            put_bw_measurements,
        ),
        "put_bw_jittered_seed7": (
            lambda: run_put_bw(config=jittered, n_messages=60, warmup=20),
            put_bw_measurements,
        ),
        "am_lat_deterministic": (
            lambda: run_am_lat(config=deterministic, iterations=40, warmup=10),
            am_lat_measurements,
        ),
        "am_lat_lossy_pcie": (
            lambda: run_am_lat(config=lossy, iterations=40, warmup=10),
            am_lat_measurements,
        ),
    }


def measurements_digest(measurements: dict) -> str:
    """Bit-exact hash of a measurement dict (floats rendered as hex)."""
    rendered = {
        key: value.hex() if isinstance(value, float) else value
        for key, value in measurements.items()
    }
    blob = json.dumps(rendered, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def capture(only: list[str] | None = None) -> dict:
    from repro.trace import trace_session
    from repro.trace.golden import timeline_digest

    scenarios = golden_runs()
    if only:
        unknown = sorted(set(only) - set(scenarios))
        if unknown:
            raise SystemExit(f"unknown scenario(s): {', '.join(unknown)}")
        scenarios = {name: scenarios[name] for name in scenarios if name in only}
    captured = {}
    for name, (run, reduce_measurements) in scenarios.items():
        with trace_session() as session:
            result = run()
        digest = timeline_digest(session.tracers)
        digest["measurements"] = measurements_digest(reduce_measurements(result))
        captured[name] = digest
    return captured


def main(argv: list[str] | None = None) -> int:
    only = list(sys.argv[1:] if argv is None else argv)
    print(json.dumps(capture(only or None), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
