#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by ``repro trace``.

Stdlib-only so CI can run it without the package on the path::

    python tools/check_trace.py trace.json

Checks the trace-event schema (phase-appropriate fields, µs timestamps,
non-negative durations), that every track tid is named by a
``thread_name`` metadata event, that span ids are unique, and that every
``parent`` reference resolves to an exported span (ring-buffer eviction
can orphan children, so missing parents are reported, and only fail the
check when ``--strict-parents`` is given).  Exit code 0 on success, 1 on
any violation.
"""

from __future__ import annotations

import argparse
import json
import sys


def check_trace(payload: object, strict_parents: bool = False) -> list[str]:
    """All schema violations found in ``payload`` (empty when valid)."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be an object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")

    named_tids: set[int] = set()
    span_ids: set[int] = set()
    parent_refs: list[tuple[int, object]] = []
    counts = {"M": 0, "X": 0, "i": 0}

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("M", "X", "i"):
            errors.append(f"{where}: unexpected phase {phase!r}")
            continue
        counts[phase] += 1
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if phase == "M":
            if event.get("name") == "thread_name":
                named_tids.add(event.get("tid"))
            continue
        # Timed events: X spans and i instants.
        timestamp = event.get("ts")
        if not isinstance(timestamp, (int, float)) or timestamp < 0:
            errors.append(f"{where}: bad 'ts' {timestamp!r}")
        if event.get("tid") not in named_tids:
            errors.append(f"{where}: tid {event.get('tid')!r} has no thread_name")
        args = event.get("args", {})
        if not isinstance(args, dict):
            errors.append(f"{where}: 'args' is not an object")
            args = {}
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(f"{where}: bad 'dur' {duration!r}")
            span_id = args.get("span_id")
            if not isinstance(span_id, int):
                errors.append(f"{where}: missing integer args.span_id")
            elif span_id in span_ids:
                errors.append(f"{where}: duplicate span_id {span_id}")
            else:
                span_ids.add(span_id)
            if args.get("parent") is not None:
                parent_refs.append((index, args["parent"]))

    for index, parent in parent_refs:
        if parent not in span_ids:
            message = f"traceEvents[{index}]: parent {parent!r} not exported"
            if strict_parents:
                errors.append(message)

    if counts["X"] == 0:
        errors.append("no complete ('X') span events")
    if counts["M"] == 0:
        errors.append("no metadata ('M') events")
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument(
        "--strict-parents",
        action="store_true",
        help="fail when a parent reference is not among the exported spans",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trace, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{args.trace}: unreadable: {exc}", file=sys.stderr)
        return 1

    errors = check_trace(payload, strict_parents=args.strict_parents)
    if errors:
        for error in errors[:50]:
            print(f"{args.trace}: {error}", file=sys.stderr)
        if len(errors) > 50:
            print(f"... and {len(errors) - 50} more", file=sys.stderr)
        return 1

    events = payload["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    instants = sum(1 for e in events if e.get("ph") == "i")
    tracks = sum(
        1 for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    )
    print(f"{args.trace}: OK ({spans} spans, {instants} instants, {tracks} tracks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
