"""Unit tests for the span recorder (repro.trace.tracer)."""

import pytest

from repro.sim.engine import NULL_TRACER, Environment
from repro.sim import engine as engine_module
from repro.trace import Tracer, trace_session


def advance(env: Environment, delay: float) -> None:
    env.timeout(delay)
    env.run()


class TestNesting:
    def test_same_track_spans_nest(self):
        env = Environment()
        tracer = Tracer(env)
        outer = tracer.begin("llp", "post", track="cpu0")
        advance(env, 10.0)
        inner = tracer.begin("llp", "pio_copy", track="cpu0")
        advance(env, 5.0)
        tracer.end(inner)
        advance(env, 2.0)
        tracer.end(outer)

        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.t0 == 10.0 and inner.t1 == 15.0
        assert outer.t0 == 0.0 and outer.t1 == 17.0
        assert tracer.open_spans() == []

    def test_different_tracks_do_not_nest(self):
        tracer = Tracer(Environment())
        a = tracer.begin("llp", "post", track="cpu0")
        b = tracer.begin("pcie", "tlp", track="pcie")
        assert b.parent_id is None
        tracer.end(b)
        tracer.end(a)

    def test_out_of_order_close_on_one_track(self):
        """Hardware tracks close spans out of order with packets in flight."""
        env = Environment()
        tracer = Tracer(env)
        first = tracer.begin("pcie", "tlp", track="link")
        second = tracer.begin("pcie", "tlp", track="link")
        advance(env, 3.0)
        tracer.end(first)  # older span closes before the newer one
        advance(env, 4.0)
        tracer.end(second)

        assert tracer.open_spans() == []
        assert first.duration_ns == 3.0
        assert second.duration_ns == 7.0
        # The newer span still records the older one as parent.
        assert second.parent_id == first.span_id

    def test_span_context_manager_closes(self):
        env = Environment()
        tracer = Tracer(env)
        with tracer.span("hlp", "isend", track="cpu0", bytes=8) as span:
            advance(env, 12.5)
        assert span.t1 == 12.5
        assert span.attrs == {"bytes": 8}
        assert tracer.spans() == [span]


class TestRingBuffer:
    def test_drops_oldest_and_counts(self):
        tracer = Tracer(Environment(), capacity=4)
        for index in range(10):
            tracer.end(tracer.begin("llp", f"s{index}"))
        kept = tracer.spans()
        assert len(kept) == 4
        assert [s.name for s in kept] == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped_spans == 6
        summary = tracer.summary()
        assert summary["spans"] == 10  # totals survive eviction
        assert summary["dropped_spans"] == 6


class TestInstantsAndCounters:
    def test_instant_is_parented_and_zero_duration(self):
        env = Environment()
        tracer = Tracer(env)
        outer = tracer.begin("nic", "tx", track="nic")
        advance(env, 6.0)
        mark = tracer.instant("nic", "arrival", track="nic", msg=3)
        tracer.end(outer)

        assert mark.parent_id == outer.span_id
        assert mark.t0 == 6.0
        assert tracer.instants() == [mark]
        assert tracer.summary()["instants"] == 1

    def test_counters_roll_up(self):
        tracer = Tracer(Environment())
        tracer.counter("llp", "empty_progress_calls")
        tracer.counter("llp", "empty_progress_calls", 2.0)
        assert tracer.summary()["counters"] == {
            "llp": {"empty_progress_calls": 3.0}
        }


class TestMessageFilter:
    def test_spans_for_message_sorted_by_start(self):
        env = Environment()
        tracer = Tracer(env)
        late = tracer.begin("pcie", "tlp", track="a", msg=7)
        advance(env, 5.0)
        early = tracer.begin("llp", "post", track="b", msg=7)
        other = tracer.begin("llp", "post", track="c", msg=8)
        tracer.end(early)
        tracer.end(other)
        advance(env, 1.0)
        tracer.end(late)

        matched = tracer.spans_for_message(7)
        assert matched == [late, early]  # t0 order: 0.0 then 5.0
        assert other not in matched


class TestNullTracer:
    def test_surface_is_no_op(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.begin("llp", "post", track="x", msg=1) is None
        NULL_TRACER.end(None)
        NULL_TRACER.counter("llp", "x")
        assert NULL_TRACER.instant("llp", "mark") is None
        with NULL_TRACER.span("llp", "post") as span:
            assert span is None

    def test_environment_defaults_to_null_tracer(self):
        assert Environment().tracer is NULL_TRACER


class TestTraceSession:
    def test_factory_installed_and_restored(self):
        assert engine_module._tracer_factory is None
        with trace_session() as session:
            env = Environment()
            assert isinstance(env.tracer, Tracer)
            assert session.tracers == [env.tracer]
            assert env.tracer._env is env
        assert engine_module._tracer_factory is None
        assert Environment().tracer is NULL_TRACER

    def test_tracer_property_requires_an_environment(self):
        with trace_session() as session:
            pass
        with pytest.raises(RuntimeError):
            session.tracer

    def test_summary_reports_kernel_events_split(self):
        with trace_session() as session:
            env = Environment()
            env.defer(lambda: None, 1.0)
            env.run(until=2.0)
            env.fast_forward(to=10.0, skipped_events=123)
        summary = session.summary()
        assert summary["events"] == {"executed": 1, "fast_forwarded": 123}

    def test_unbound_tracer_reports_zero_events(self):
        assert Tracer().summary()["events"] == {
            "executed": 0,
            "fast_forwarded": 0,
        }

    def test_summary_merges_tracers(self):
        with trace_session() as session:
            for _ in range(2):
                env = Environment()
                tracer = env.tracer
                tracer.end(tracer.begin("llp", "post"))
                tracer.instant("nic", "mark")
        merged = session.summary()
        assert merged["tracers"] == 2
        assert merged["spans"] == 2
        assert merged["instants"] == 2
        assert merged["per_layer"]["llp"]["spans"] == 2
        assert len(session.spans()) == 2
