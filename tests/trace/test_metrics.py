"""Unit tests for per-layer metrics (repro.trace.metrics)."""

from repro.trace.metrics import MAX_BUCKET, DurationHistogram, LayerMetrics


class TestDurationHistogram:
    def test_power_of_two_bucketing(self):
        histogram = DurationHistogram()
        histogram.observe(0.0)    # bucket 0: [0, 2)
        histogram.observe(1.9)    # bucket 0
        histogram.observe(2.0)    # bucket 1: [2, 4)
        histogram.observe(100.0)  # bucket 6: [64, 128)
        assert histogram.buckets[0] == 2
        assert histogram.buckets[1] == 1
        assert histogram.buckets[6] == 1
        assert histogram.count == 4

    def test_huge_duration_clamps_to_top_bucket(self):
        histogram = DurationHistogram()
        histogram.observe(1e12)
        assert histogram.buckets[MAX_BUCKET] == 1

    def test_statistics(self):
        histogram = DurationHistogram()
        for value in (10.0, 20.0, 30.0):
            histogram.observe(value)
        assert histogram.mean_ns == 20.0
        assert histogram.min_ns == 10.0
        assert histogram.max_ns == 30.0
        assert histogram.total_ns == 60.0

    def test_to_dict_trims_trailing_zero_buckets(self):
        histogram = DurationHistogram()
        histogram.observe(3.0)  # bucket 1
        digest = histogram.to_dict()
        assert digest["log2_buckets"] == [0, 1]
        assert digest["count"] == 1
        assert digest["mean_ns"] == 3.0

    def test_empty_to_dict(self):
        digest = DurationHistogram().to_dict()
        assert digest["count"] == 0
        assert digest["min_ns"] == 0.0
        assert digest["log2_buckets"] == []


class TestLayerMetrics:
    def test_counters_nested_by_layer(self):
        metrics = LayerMetrics()
        metrics.bump("llp", "polls")
        metrics.bump("llp", "polls", 4.0)
        metrics.bump("hlp", "progress")
        assert metrics.counters() == {
            "llp": {"polls": 5.0},
            "hlp": {"progress": 1.0},
        }

    def test_per_layer_rollup(self):
        metrics = LayerMetrics()
        metrics.observe_span("pcie", "tlp", 100.0)
        metrics.observe_span("pcie", "tlp", 200.0)
        metrics.observe_span("pcie", "rc_to_mem", 240.0)
        metrics.observe_instant("pcie", "ack_dllp")
        rollup = metrics.per_layer()
        assert rollup["pcie"]["spans"] == 3
        assert rollup["pcie"]["total_ns"] == 540.0
        assert rollup["pcie"]["instants"] == 1
        assert rollup["pcie"]["by_name"]["tlp"]["count"] == 2
        assert rollup["pcie"]["by_name"]["tlp"]["mean_ns"] == 150.0

    def test_histogram_lookup(self):
        metrics = LayerMetrics()
        assert metrics.histogram("llp", "post") is None
        metrics.observe_span("llp", "post", 175.0)
        assert metrics.histogram("llp", "post").count == 1
