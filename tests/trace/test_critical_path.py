"""Cross-validation: traced critical path vs the closed-form model.

The tentpole acceptance test: the per-component latency breakdown
extracted from one traced ``am_lat`` ping must agree with
:func:`repro.core.breakdown.fig10_latency_llp` within the paper's 5%
noise margin (deterministically, it agrees exactly).
"""

import pytest

from repro.bench import run_am_lat
from repro.core.breakdown import fig10_latency_llp
from repro.core.components import ComponentTimes
from repro.node import SystemConfig
from repro.sim.engine import Environment
from repro.trace import (
    COMPONENT_LABELS,
    Tracer,
    classify_span,
    critical_path,
    critical_path_breakdown,
    critical_path_report,
    trace_session,
)

_SESSION = None


def traced_am_lat():
    """One traced deterministic am_lat run, shared across this module."""
    global _SESSION
    if _SESSION is None:
        with trace_session() as session:
            run_am_lat(
                config=SystemConfig.paper_testbed(deterministic=True),
                iterations=20,
                warmup=5,
            )
        _SESSION = session
    return _SESSION


def full_path_message(spans):
    """The last message whose forward path was fully captured."""
    posted = [
        s.attrs.get("msg")
        for s in spans
        if s.layer == "llp" and s.name == "llp_post"
    ]
    for msg_id in reversed(posted):
        breakdown = critical_path_breakdown(spans, msg_id)
        if breakdown.value("rc_to_mem") > 0 and breakdown.value("wire") > 0:
            return msg_id
    raise AssertionError("no fully traced message found")


class TestClassification:
    def make_span(self, layer, name, **attrs):
        tracer = Tracer(Environment())
        span = tracer.begin(layer, name, **attrs)
        tracer.end(span)
        return span

    @pytest.mark.parametrize(
        "layer,name,attrs,expected",
        [
            ("llp", "llp_post", {}, "llp_post"),
            ("llp", "llp_prog", {}, None),
            ("pcie", "tlp", {"purpose": "pio_post"}, "tx_pcie"),
            ("pcie", "tlp", {"purpose": "payload_write"}, "rx_pcie"),
            ("pcie", "tlp", {"purpose": "cqe_write"}, None),
            ("pcie", "rc_to_mem", {"purpose": "payload_write"}, "rc_to_mem"),
            ("pcie", "rc_to_mem", {"purpose": "cqe_write"}, None),
            ("network", "wire", {"kind": "data"}, "wire"),
            ("network", "wire", {"kind": "ack"}, None),  # return path excluded
            ("network", "switch", {"kind": "data"}, "switch"),
            ("network", "switch", {"kind": "ack"}, None),
            ("hlp", "ucp_isend", {}, None),
        ],
    )
    def test_classify(self, layer, name, attrs, expected):
        assert classify_span(self.make_span(layer, name, **attrs)) == expected


class TestCrossValidation:
    def test_traced_breakdown_matches_fig10_within_5_percent(self):
        session = traced_am_lat()
        spans = session.spans()
        msg_id = full_path_message(spans)
        traced = critical_path_breakdown(spans, msg_id)
        model = fig10_latency_llp(ComponentTimes.paper())

        assert traced.total_ns == pytest.approx(model.total_ns, rel=0.05)
        for label in COMPONENT_LABELS:
            assert traced.value(label) == pytest.approx(
                model.value(label), rel=0.05
            ), label

    def test_path_spans_are_time_ordered_and_complete(self):
        session = traced_am_lat()
        spans = session.spans()
        msg_id = full_path_message(spans)
        path = critical_path(spans, msg_id)
        starts = [span.t0 for span in path]
        assert starts == sorted(starts)
        assert {classify_span(span) for span in path} == set(COMPONENT_LABELS)

    def test_tracer_source_and_span_iterable_agree(self):
        session = traced_am_lat()
        msg_id = full_path_message(session.spans())
        from_tracer = critical_path_breakdown(session.tracer, msg_id)
        from_spans = critical_path_breakdown(session.spans(), msg_id)
        # The session's primary tracer may not hold the message; compare
        # only when it produced a non-empty path.
        if from_tracer.total_ns > 0:
            assert from_tracer.total_ns == pytest.approx(from_spans.total_ns)

    def test_report_against_model(self):
        session = traced_am_lat()
        spans = session.spans()
        msg_id = full_path_message(spans)
        model = fig10_latency_llp(ComponentTimes.paper())
        text = critical_path_report(spans, msg_id, reference=model)
        assert f"critical path of message {msg_id}" in text
        assert "model ns" in text
        for label in COMPONENT_LABELS:
            assert label in text

    def test_missing_message_yields_empty_breakdown(self):
        session = traced_am_lat()
        breakdown = critical_path_breakdown(session.spans(), msg_id=-1)
        assert breakdown.total_ns == 0.0
