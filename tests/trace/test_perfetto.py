"""Round-trip tests for the Chrome trace-event exporter (repro.trace.perfetto)."""

import json

import pytest

from repro.bench import run_am_lat
from repro.node import SystemConfig
from repro.sim.engine import Environment
from repro.trace import (
    Tracer,
    chrome_trace,
    span_forest,
    spans_from_chrome,
    trace_session,
    write_chrome_trace,
)


def build_small_tracer() -> Tracer:
    env = Environment()
    tracer = Tracer(env)
    outer = tracer.begin("llp", "llp_post", track="cpu0", msg=1, op="am_short")
    env.timeout(10.0)
    env.run()
    inner = tracer.begin("llp", "pio_copy", track="cpu0", msg=1)
    env.timeout(94.25)
    env.run()
    tracer.end(inner)
    tracer.end(outer)
    tracer.instant("nic", "nic_arrival", track="nic", msg=1)
    return tracer


class TestChromeTrace:
    def test_event_structure(self):
        payload = chrome_trace(build_small_tracer())
        assert payload["displayTimeUnit"] == "ns"
        events = payload["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        # process_name + two thread_name metadata records (cpu0, nic).
        assert phases.count("M") == 3
        complete = [e for e in events if e["ph"] == "X"]
        outer = next(e for e in complete if e["name"] == "llp_post")
        assert outer["cat"] == "llp"
        assert outer["ts"] == 0.0
        assert outer["dur"] == pytest.approx(104.25 / 1e3)
        assert outer["args"]["op"] == "am_short"

    def test_json_serializable_with_exotic_attrs(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.end(tracer.begin("llp", "post", track="cpu", obj=object()))
        text = json.dumps(chrome_trace(tracer))
        assert "object object" in text  # repr() fallback

    def test_round_trip_preserves_identity(self, tmp_path):
        tracer = build_small_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        payload = json.loads(path.read_text())
        rebuilt = spans_from_chrome(payload)

        originals = sorted(tracer.spans(), key=lambda s: s.span_id)
        rebuilt.sort(key=lambda s: s.span_id)
        assert len(rebuilt) == len(originals)
        for original, copy in zip(originals, rebuilt):
            assert copy.span_id == original.span_id
            assert copy.parent_id == original.parent_id
            assert copy.name == original.name
            assert copy.layer == original.layer
            assert copy.track == original.track
            assert copy.t0 == pytest.approx(original.t0, abs=1e-6)
            assert copy.t1 == pytest.approx(original.t1, abs=1e-6)

    def test_round_trip_of_traced_run(self, tmp_path):
        """A real am_lat trace survives export -> json.load -> rebuild."""
        with trace_session() as session:
            run_am_lat(
                config=SystemConfig.paper_testbed(deterministic=True),
                iterations=20,
                warmup=5,
            )
        path = tmp_path / "am_lat.json"
        session.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        rebuilt = spans_from_chrome(payload)
        originals = session.spans()
        assert len(rebuilt) == len(originals) > 0
        assert {s.span_id for s in rebuilt} == {s.span_id for s in originals}


class TestSpanForest:
    def test_parentage_recovered(self):
        tracer = build_small_tracer()
        roots, children = span_forest(tracer.spans())
        assert [r.name for r in roots] == ["llp_post"]
        assert [c.name for c in children[roots[0].span_id]] == ["pio_copy"]

    def test_orphan_becomes_root(self):
        """A child whose parent was evicted from the ring buffer."""
        tracer = build_small_tracer()
        spans = [s for s in tracer.spans() if s.name == "pio_copy"]
        roots, children = span_forest(spans)
        assert [r.name for r in roots] == ["pio_copy"]
        assert children == {}
