"""Unit tests for figure rendering (repro.reporting.figures)."""

import pytest

from repro.core.breakdown import Breakdown, fig12_overall_injection
from repro.core.components import ComponentTimes
from repro.core.whatif import WhatIfAnalysis
from repro.reporting.figures import render_breakdown_bar, render_series

PAPER = ComponentTimes.paper()


class TestBreakdownBar:
    def test_contains_title_total_and_legend(self):
        text = render_breakdown_bar(fig12_overall_injection(PAPER))
        assert "Overall injection overhead" in text
        assert "264.97" in text
        assert "post: 76.23%" in text

    def test_bar_width_respected(self):
        breakdown = Breakdown.build("t", {"a": 50.0, "b": 50.0})
        text = render_breakdown_bar(breakdown, width=40)
        bar_line = text.splitlines()[1]
        assert len(bar_line) == 42  # bar + two pipes

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            render_breakdown_bar(fig12_overall_injection(PAPER), width=5)


class TestSeries:
    def test_renders_all_lines_and_points(self):
        panel = WhatIfAnalysis(PAPER).figure17d()
        text = render_series("Figure 17d", panel)
        assert "Wire" in text and "Switch" in text
        assert "10%" in text and "90%" in text

    def test_percent_formatting(self):
        text = render_series("t", {"line": [(0.5, 0.1234)]})
        assert "12.34%" in text

    def test_raw_formatting(self):
        text = render_series("t", {"line": [(0.5, 0.1234)]}, as_percent=False)
        assert "0.1234" in text


class TestTimeline:
    def make_spans(self):
        from repro.sim.engine import Environment
        from repro.trace import Tracer

        env = Environment()
        tracer = Tracer(env)
        outer = tracer.begin("llp", "llp_post", track="cpu0", msg=1)
        env.timeout(10.0)
        env.run()
        inner = tracer.begin("llp", "pio_copy", track="cpu0", msg=1)
        env.timeout(90.0)
        env.run()
        tracer.end(inner)
        tracer.end(outer)
        return tracer.spans()

    def test_rows_and_window(self):
        from repro.reporting.figures import render_timeline

        text = render_timeline(self.make_spans())
        lines = text.splitlines()
        assert "2 of 2 spans" in lines[0]
        assert "[0.00, 100.00] ns" in lines[0]
        assert "llp_post" in text and "pio_copy" in text
        assert "cpu0" in text

    def test_children_are_indented(self):
        from repro.reporting.figures import render_timeline

        text = render_timeline(self.make_spans())
        child_row = next(l for l in text.splitlines() if "pio_copy" in l)
        assert "  pio_copy" in child_row  # depth-1 indent

    def test_limit_truncates_with_notice(self):
        from repro.reporting.figures import render_timeline

        spans = self.make_spans()
        text = render_timeline(spans, limit=1)
        assert "1 of 2 spans" in text
        assert "1 more spans not shown" in text

    def test_empty_and_validation(self):
        import pytest as _pytest

        from repro.reporting.figures import render_timeline

        assert render_timeline([]) == "(no spans)"
        with _pytest.raises(ValueError):
            render_timeline([], width=5)
        with _pytest.raises(ValueError):
            render_timeline([], limit=0)

    def test_renders_perfetto_reloaded_spans(self):
        """Spans reloaded from an exported trace render identically."""
        import json as _json

        from repro.sim.engine import Environment
        from repro.trace import Tracer, chrome_trace, spans_from_chrome
        from repro.reporting.figures import render_timeline

        env = Environment()
        tracer = Tracer(env)
        span = tracer.begin("llp", "llp_post", track="cpu0", msg=1)
        env.timeout(100.0)
        env.run()
        tracer.end(span)

        payload = _json.loads(_json.dumps(chrome_trace(tracer)))
        reloaded = spans_from_chrome(payload)
        assert render_timeline(reloaded) == render_timeline(tracer.spans())


class TestTrace:
    def test_figure6_style_listing(self):
        from repro.bench import run_put_bw
        from repro.node import SystemConfig
        from repro.reporting.figures import render_trace

        result = run_put_bw(
            config=SystemConfig.paper_testbed(deterministic=True),
            n_messages=40,
            warmup=20,
        )
        text = render_trace(result.testbed.analyzer.records, limit=6)
        lines = text.splitlines()
        assert len(lines) == 8  # header + rule + 6 rows
        assert "MWr" in text and "pio_post" in text
        # Deltas reported from the second row on; the steady-state
        # inter-arrival is the Eq. 1 pace.
        last_delta = float(lines[-1].split()[-1])
        assert 200.0 < last_delta < 400.0

    def test_limit_validation(self):
        from repro.reporting.figures import render_trace

        with pytest.raises(ValueError):
            render_trace([], limit=0)
