"""Unit tests for figure rendering (repro.reporting.figures)."""

import pytest

from repro.core.breakdown import Breakdown, fig12_overall_injection
from repro.core.components import ComponentTimes
from repro.core.whatif import WhatIfAnalysis
from repro.reporting.figures import render_breakdown_bar, render_series

PAPER = ComponentTimes.paper()


class TestBreakdownBar:
    def test_contains_title_total_and_legend(self):
        text = render_breakdown_bar(fig12_overall_injection(PAPER))
        assert "Overall injection overhead" in text
        assert "264.97" in text
        assert "post: 76.23%" in text

    def test_bar_width_respected(self):
        breakdown = Breakdown.build("t", {"a": 50.0, "b": 50.0})
        text = render_breakdown_bar(breakdown, width=40)
        bar_line = text.splitlines()[1]
        assert len(bar_line) == 42  # bar + two pipes

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            render_breakdown_bar(fig12_overall_injection(PAPER), width=5)


class TestSeries:
    def test_renders_all_lines_and_points(self):
        panel = WhatIfAnalysis(PAPER).figure17d()
        text = render_series("Figure 17d", panel)
        assert "Wire" in text and "Switch" in text
        assert "10%" in text and "90%" in text

    def test_percent_formatting(self):
        text = render_series("t", {"line": [(0.5, 0.1234)]})
        assert "12.34%" in text

    def test_raw_formatting(self):
        text = render_series("t", {"line": [(0.5, 0.1234)]}, as_percent=False)
        assert "0.1234" in text


class TestTrace:
    def test_figure6_style_listing(self):
        from repro.bench import run_put_bw
        from repro.node import SystemConfig
        from repro.reporting.figures import render_trace

        result = run_put_bw(
            config=SystemConfig.paper_testbed(deterministic=True),
            n_messages=40,
            warmup=20,
        )
        text = render_trace(result.testbed.analyzer.records, limit=6)
        lines = text.splitlines()
        assert len(lines) == 8  # header + rule + 6 rows
        assert "MWr" in text and "pio_post" in text
        # Deltas reported from the second row on; the steady-state
        # inter-arrival is the Eq. 1 pace.
        last_delta = float(lines[-1].split()[-1])
        assert 200.0 < last_delta < 400.0

    def test_limit_validation(self):
        from repro.reporting.figures import render_trace

        with pytest.raises(ValueError):
            render_trace([], limit=0)
