"""Unit tests for machine-readable exports (repro.reporting.export)."""

import csv
import io
import json

import pytest

from repro.core.breakdown import fig13_end_to_end
from repro.core.components import ComponentTimes
from repro.core.whatif import WhatIfAnalysis
from repro.reporting.export import (
    breakdown_to_csv,
    breakdown_to_dict,
    component_times_to_dict,
    series_to_csv,
    table1_to_csv,
)

PAPER = ComponentTimes.paper()


def parse_csv(text):
    return list(csv.DictReader(io.StringIO(text)))


class TestBreakdownExport:
    def test_csv_round_trip(self):
        rows = parse_csv(breakdown_to_csv(fig13_end_to_end(PAPER)))
        assert len(rows) == 9
        by_label = {row["label"]: row for row in rows}
        assert float(by_label["wire"]["ns"]) == pytest.approx(274.81)
        assert float(by_label["wire"]["percent"]) == pytest.approx(19.81, abs=0.01)

    def test_dict_is_json_serialisable(self):
        payload = breakdown_to_dict(fig13_end_to_end(PAPER))
        text = json.dumps(payload)
        decoded = json.loads(text)
        assert decoded["total_ns"] == pytest.approx(1387.02)
        assert len(decoded["parts"]) == 9


class TestSeriesExport:
    def test_fig17d_rows(self):
        series = WhatIfAnalysis(PAPER).figure17d()
        rows = parse_csv(series_to_csv(series))
        assert len(rows) == 10  # 2 lines × 5 reductions
        wire_90 = next(
            r for r in rows if r["component"] == "Wire" and r["reduction"] == "0.9000"
        )
        assert float(wire_90["speedup"]) == pytest.approx(0.9 * 274.81 / 1387.02)


class TestTable1Export:
    def test_plain(self):
        rows = parse_csv(table1_to_csv(PAPER))
        assert len(rows) == 21
        assert float(rows[0]["ns"]) == pytest.approx(27.78)

    def test_with_reference_and_error(self):
        measured = ComponentTimes(pcie=140.0)
        rows = parse_csv(table1_to_csv(measured, reference=PAPER))
        pcie_row = next(r for r in rows if "PCIe" in r["component"])
        # The CSV rounds to six decimals.
        assert float(pcie_row["error"]) == pytest.approx(
            (140.0 - 137.49) / 137.49, abs=1e-6
        )


class TestComponentTimesExport:
    def test_contains_fields_and_aggregates(self):
        payload = component_times_to_dict(PAPER)
        assert payload["pcie"] == pytest.approx(137.49)
        assert payload["llp_post"] == pytest.approx(175.42)
        assert payload["post"] == pytest.approx(201.98)
        json.dumps(payload)  # must be serialisable
