"""Unit tests for the experiment drivers (repro.reporting.experiments)."""

import pytest

from repro.analysis.stats import DistributionSummary
from repro.core.components import ComponentTimes
from repro.reporting.experiments import (
    experiment_fig4,
    experiment_fig7,
    experiment_fig8,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_fig15,
    experiment_fig16,
    experiment_fig17,
    experiment_insights,
    experiment_table1,
    experiment_validation,
)

PAPER = ComponentTimes.paper()

PAPER_OBSERVATIONS = {
    "llp_injection_overhead": 282.33,
    "llp_latency": 1190.25,
    "overall_injection_overhead": 263.91,
    "end_to_end_latency": 1336.0,
}


class TestDriversRender:
    @pytest.mark.parametrize(
        "driver,needle",
        [
            (experiment_fig4, "pio_copy: 53.7"),
            (experiment_fig10, "wire: 25.58%"),
            (experiment_fig11, "MPI_Isend"),
            (experiment_fig12, "post: 76.23%"),
            (experiment_fig13, "1387.02"),
            (experiment_fig14, "RX progress"),
            (experiment_fig15, "Network: 27.60%"),
            (experiment_fig16, "target: 66.20%"),
            (experiment_fig17, "Integrated NIC"),
            (experiment_insights, "Insight 4 [HOLDS]"),
        ],
    )
    def test_driver_output_contains(self, driver, needle):
        assert needle in driver(PAPER)

    def test_table1(self):
        text = experiment_table1(PAPER)
        assert "PIO copy (64 bytes)" in text

    def test_table1_with_reference(self):
        text = experiment_table1(PAPER, reference=PAPER)
        assert "0.0%" in text

    def test_fig7(self):
        dist = DistributionSummary(
            count=1000, mean=282.33, median=266.30, minimum=201.30,
            maximum=34951.70, std=58.4866,
        )
        text = experiment_fig7(dist)
        assert "282.33" in text and "paper: 266.30" in text

    def test_fig8_variants(self):
        assert "61.18%" in experiment_fig8(PAPER, "figure")
        assert "59.3" in experiment_fig8(PAPER, "model")

    def test_validation_all_ok_on_paper_numbers(self):
        text = experiment_validation(PAPER, PAPER_OBSERVATIONS)
        assert text.count("[OK]") == 4
        assert "[FAIL]" not in text
