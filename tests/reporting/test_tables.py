"""Unit tests for table rendering (repro.reporting.tables)."""

import pytest

from repro.core.breakdown import fig13_end_to_end
from repro.core.components import ComponentTimes
from repro.reporting.tables import render_breakdown_table, render_table1, table1_rows

PAPER = ComponentTimes.paper()


class TestTable1Rows:
    def test_row_count_matches_paper(self):
        assert len(table1_rows(PAPER)) == 21

    def test_key_values(self):
        rows = dict(table1_rows(PAPER))
        assert rows["LLP_post (total of above)"] == pytest.approx(175.42)
        assert rows["Network (total of above)"] == pytest.approx(382.81)
        assert rows["RC-to-MEM(8B)"] == pytest.approx(240.96)
        assert rows["Successful MPI_Wait for MPI_Irecv in UCP"] == pytest.approx(150.51)

    def test_totals_rows_are_consistent(self):
        rows = dict(table1_rows(PAPER))
        assert rows["LLP_post (total of above)"] == pytest.approx(
            rows["Message descriptor setup"]
            + rows["Barrier for message descriptor"]
            + rows["Barrier for DoorBell counter"]
            + rows["PIO copy (64 bytes)"]
            + rows["Miscellaneous in LLP_post"]
        )
        assert rows["Misc in Inj_overhead (total of above)"] == pytest.approx(
            rows["Busy post"] + rows["Measurement update"]
        )


class TestRenderTable1:
    def test_plain_rendering_contains_all_rows(self):
        text = render_table1(PAPER)
        for label, _value in table1_rows(PAPER):
            assert label in text
        assert "175.42" in text

    def test_comparison_rendering_has_error_column(self):
        measured = ComponentTimes(pcie=140.0)
        text = render_table1(measured, reference=PAPER)
        assert "Err %" in text
        assert "Paper" in text
        assert "140.00" in text


class TestRenderBreakdownTable:
    def test_contains_parts_and_total(self):
        text = render_breakdown_table(fig13_end_to_end(PAPER))
        assert "hlp_post" in text
        assert "total" in text
        assert "1387.02" in text
        assert "100.00%" in text
