"""Unit tests for the histogram renderer (repro.reporting.figures)."""

import numpy as np
import pytest

from repro.reporting.figures import render_histogram


class TestRenderHistogram:
    def test_contains_title_and_annotations(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(282, 20, size=500)
        text = render_histogram(samples, title="Figure 7")
        assert text.startswith("Figure 7")
        assert "Mean:" in text and "Median:" in text and "Std:" in text

    def test_bin_count(self):
        samples = np.linspace(0, 100, 200)
        text = render_histogram(samples, bins=10)
        bar_lines = [line for line in text.splitlines() if "|" in line]
        assert len(bar_lines) == 10

    def test_tail_clipping_noted(self):
        samples = np.concatenate([np.full(999, 100.0), [50000.0]])
        text = render_histogram(samples)
        assert "clipped" in text
        assert "Max: 50000.00" in text  # annotations keep the full max

    def test_no_clipping_note_for_tight_distribution(self):
        text = render_histogram(np.full(100, 5.0))
        assert "clipped" not in text

    def test_peak_bar_fills_width(self):
        rng = np.random.default_rng(1)
        samples = rng.normal(0, 1, 2000)
        text = render_histogram(samples, width=30)
        longest = max(line.count("█") for line in text.splitlines())
        assert longest == 30

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_histogram([])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            render_histogram([1.0, 2.0], bins=1)
        with pytest.raises(ValueError):
            render_histogram([1.0, 2.0], width=2)
