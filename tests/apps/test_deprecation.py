"""The legacy apps entry point must warn and delegate, not diverge."""

import warnings

import pytest

from repro.apps import run_ring_allreduce
from repro.collectives import ring_allreduce
from repro.node.cluster import Cluster
from repro.node.config import SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)


class TestRunRingAllreduceShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="repro.collectives"):
            run_ring_allreduce(2, config=DET, iterations=1)

    def test_times_identically_to_the_collectives_package(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = run_ring_allreduce(4, config=DET, iterations=2)
        direct = ring_allreduce(Cluster(4, config=DET), iterations=2)
        assert legacy.total_ns == direct.total_ns
        assert legacy.steps == direct.steps

    def test_legacy_result_shape_preserved(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = run_ring_allreduce(2, config=DET, iterations=4)
        assert result.n_nodes == 2
        assert result.chunk_bytes == 8
        assert result.time_per_allreduce_ns == pytest.approx(result.total_ns / 4)
        assert result.time_per_step_ns == pytest.approx(
            result.time_per_allreduce_ns / 2
        )
