"""Tests for the multi-node cluster and ring allreduce."""

import pytest

from repro.apps import run_ring_allreduce
from repro.core.components import ComponentTimes
from repro.core.models import EndToEndLatencyModel
from repro.node import Cluster, SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)
E2E = EndToEndLatencyModel(ComponentTimes.paper()).predicted_ns


class TestCluster:
    def test_nodes_share_clock_and_fabric(self):
        cluster = Cluster(3, config=DET)
        assert len(cluster) == 3
        for node in cluster.nodes:
            assert node.env is cluster.env
            assert node.nic.fabric is cluster.fabric

    def test_all_pairs_paths_exist(self):
        cluster = Cluster(4, config=DET)
        names = [node.nic.name for node in cluster.nodes]
        for src in names:
            for dst in names:
                if src != dst:
                    assert cluster.fabric.path_stages(src, dst)

    def test_analyzer_on_node0(self):
        cluster = Cluster(2, config=DET)
        assert cluster.analyzer.link is cluster.nodes[0].link

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            Cluster(1, config=DET)

    def test_two_node_cluster_equivalent_to_testbed_latency(self):
        """A 2-node cluster must time identically to the Testbed."""
        from repro.hlp.mpi import MpiStack

        cluster = Cluster(2, config=DET)
        s0 = MpiStack(cluster.nodes[0])
        s1 = MpiStack(cluster.nodes[1])
        c01 = s0.connect(s1)
        c10 = s1.connect(s0)
        marks = {}

        def initiator():
            recv = yield from c01.irecv(8)
            yield from c01.isend(8)
            yield from c01.wait(recv)

        def responder():
            recv = yield from c10.irecv(8)
            yield from c10.wait(recv)
            marks["one_way"] = cluster.env.now
            yield from c10.isend(8)

        cluster.env.process(responder())
        cluster.env.run(until=cluster.env.process(initiator()))
        assert marks["one_way"] == pytest.approx(E2E, rel=0.05)


class TestRingAllreduce:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            n: run_ring_allreduce(n, config=DET, iterations=5)
            for n in (2, 4, 8)
        }

    def test_step_count(self, results):
        assert results[2].steps == 2
        assert results[4].steps == 6
        assert results[8].steps == 14

    def test_per_step_time_is_one_latency(self, results):
        """Each lockstep ring step costs one end-to-end latency (the
        §6 model composed): within 2% for every cluster size."""
        for result in results.values():
            assert result.time_per_step_ns == pytest.approx(
                E2E + result.reduce_compute_ns, rel=0.02
            )

    def test_total_scales_with_2n_minus_1_steps(self, results):
        ratio = results[8].time_per_allreduce_ns / results[2].time_per_allreduce_ns
        assert ratio == pytest.approx(14 / 2, rel=0.02)

    def test_compute_heavy_reduce_adds_per_step(self):
        light = run_ring_allreduce(4, config=DET, iterations=3, reduce_compute_ns=0.0)
        heavy = run_ring_allreduce(
            4, config=DET, iterations=3, reduce_compute_ns=500.0
        )
        added = heavy.time_per_step_ns - light.time_per_step_ns
        assert added == pytest.approx(500.0, abs=30.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_ring_allreduce(4, config=DET, iterations=0)
        with pytest.raises(ValueError):
            run_ring_allreduce(4, config=DET, reduce_compute_ns=-1.0)
        with pytest.raises(ValueError):
            run_ring_allreduce(1, config=DET)
