"""Tests for the halo-exchange kernel (repro.apps.stencil)."""

import pytest

from repro.apps import run_halo_exchange
from repro.node import SystemConfig

DET = SystemConfig.paper_testbed(deterministic=True)


class TestHaloExchange:
    @pytest.fixture(scope="class")
    def result(self):
        return run_halo_exchange(config=DET, iterations=100, compute_ns=500.0)

    def test_comm_time_in_latency_ballpark(self, result):
        """One exchange ≈ one end-to-end latency (the send overlaps the
        receive wait): within 10% of the §6 model."""
        assert result.comm_ns_per_iteration == pytest.approx(1387.02, rel=0.10)

    def test_comm_fraction_consistent(self, result):
        expected = result.total_comm_ns / result.total_ns
        assert result.comm_fraction == pytest.approx(expected)
        assert 0.5 < result.comm_fraction < 0.9  # 500 ns compute vs ~1.4 µs comm

    def test_compute_heavy_run_lowers_comm_fraction(self):
        light = run_halo_exchange(config=DET, iterations=50, compute_ns=100.0)
        heavy = run_halo_exchange(config=DET, iterations=50, compute_ns=5000.0)
        assert heavy.comm_fraction < light.comm_fraction
        # Comm time itself is compute-independent (no overlap modelled).
        assert heavy.comm_ns_per_iteration == pytest.approx(
            light.comm_ns_per_iteration, rel=0.02
        )

    def test_switch_removal_saves_one_hop(self):
        switched = run_halo_exchange(config=DET, iterations=100)
        direct = run_halo_exchange(
            config=SystemConfig.paper_testbed_direct(deterministic=True),
            iterations=100,
        )
        saving = switched.comm_ns_per_iteration - direct.comm_ns_per_iteration
        # §7's linear-speedup claim at application level.
        assert saving == pytest.approx(108.0, abs=10.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            run_halo_exchange(config=DET, iterations=0)
        with pytest.raises(ValueError):
            run_halo_exchange(config=DET, compute_ns=-1.0)


class TestRandomAccess:
    def test_gups_scaling(self):
        from repro.apps import run_random_access

        one = run_random_access(n_cores=1, config=DET, updates_per_core=150)
        four = run_random_access(n_cores=4, config=DET, updates_per_core=150)
        assert four.gups == pytest.approx(4 * one.gups, rel=0.05)
        assert four.updates == 600
        assert one.credit_stalls == 0

    def test_per_core_rate_matches_injection_model(self):
        from repro.apps import run_random_access

        result = run_random_access(n_cores=2, config=DET, updates_per_core=200)
        # Per-core update interval ≈ the Eq. 1 injection overhead.
        interval = 1.0 / result.updates_per_core_per_s * 1e9
        assert interval == pytest.approx(295.73, rel=0.06)
