"""Surrogate models (repro.serve.surrogate): fit, predict, envelope.

The interpolated surrogate is exercised over the region where the
simulator is genuinely (multi)linear — the DoorBell+DMA latency
plateau crossed with the per-switch-hop wire delay — so interpolation
error at off-grid points is a property of the method, not luck.  The
analytic surrogates are checked against the §4.3/§6 models they wrap.
"""

import json

import pytest

from repro.campaign import CampaignSpec, SweepAxis, run_campaign
from repro.node import SystemConfig
from repro.serve.surrogate import (
    AnalyticSurrogate,
    Envelope,
    InterpolatedSurrogate,
    OutOfEnvelope,
    fit_surrogate,
    normalized_config_hash,
)

BASE = SystemConfig.paper_testbed(deterministic=True)


def _dma_campaign(seeds=(2019,)):
    """payload (flat DMA plateau) x switch hops (exactly +108 ns/hop)."""
    return run_campaign(
        CampaignSpec(
            name="fit-dma",
            workload="put_oneway_latency",
            base_config=BASE,
            axes=(
                SweepAxis("payload_bytes", (1024, 4096)),
                SweepAxis("network.switch_count", (1, 3)),
            ),
            seeds=seeds,
        )
    )


@pytest.fixture(scope="module")
def dma_surrogate():
    return fit_surrogate(
        _dma_campaign(),
        axes=["payload_bytes", "network.switch_count"],
        base_config=BASE,
    )


class TestFit:
    def test_grid_and_envelope_from_campaign(self, dma_surrogate):
        s = dma_surrogate
        assert s.axis_names == ("payload_bytes", "network.switch_count")
        assert s.grid == ((1024.0, 4096.0), (1.0, 3.0))
        assert s.envelope.axes == {
            "payload_bytes": (1024.0, 4096.0),
            "network.switch_count": (1.0, 3.0),
        }
        assert s.envelope.workload == "put_oneway_latency"
        assert s.fitted_points == 4
        assert "one_way_latency_ns" in s.metrics

    def test_grid_points_reproduced_exactly(self, dma_surrogate):
        result = _dma_campaign()
        for record in result.ok_records:
            predicted = dma_surrogate.predict(
                record.params, record.config_overrides
            )
            assert predicted["one_way_latency_ns"] == pytest.approx(
                record.measurements["one_way_latency_ns"]
            )

    def test_seeds_are_averaged(self):
        multi = fit_surrogate(
            _dma_campaign(seeds=(2019, 2020)),
            axes=["payload_bytes", "network.switch_count"],
            base_config=BASE,
        )
        assert multi.fitted_points == 8
        assert len(multi.values["one_way_latency_ns"]) == 4

    def test_incomplete_grid_rejected(self):
        result = _dma_campaign()
        pruned = type(result)(
            name=result.name,
            workload=result.workload,
            records=result.records[:-1],
        )
        with pytest.raises(ValueError, match="incomplete grid"):
            fit_surrogate(
                pruned,
                axes=["payload_bytes", "network.switch_count"],
                base_config=BASE,
            )

    def test_failed_campaign_rejected(self):
        failed = run_campaign(
            CampaignSpec(
                name="fit-failed",
                workload="selftest",
                base_config=BASE,
                axes=(SweepAxis("fail", (False, True)),),
            )
        )
        with pytest.raises(ValueError, match="failed"):
            fit_surrogate(failed, axes=["fail"], base_config=BASE)

    def test_varying_non_axis_param_rejected(self):
        result = run_campaign(
            CampaignSpec(
                name="fit-vary",
                workload="selftest",
                base_config=BASE,
                axes=(
                    SweepAxis("value", (1.0, 2.0)),
                    SweepAxis("sleep_s", (0.0, 0.001)),
                ),
            )
        )
        with pytest.raises(ValueError, match="sleep_s"):
            fit_surrogate(result, axes=["value"], base_config=BASE)


class TestPredict:
    def test_off_grid_hop_interpolation_is_exact(self, dma_surrogate):
        """+108 ns per switch hop is linear, so the midpoint is exact."""
        lo = dma_surrogate.predict(
            {"payload_bytes": 2048}, {"network.switch_count": 1}
        )["one_way_latency_ns"]
        hi = dma_surrogate.predict(
            {"payload_bytes": 2048}, {"network.switch_count": 3}
        )["one_way_latency_ns"]
        mid = dma_surrogate.predict(
            {"payload_bytes": 2048}, {"network.switch_count": 2}
        )["one_way_latency_ns"]
        assert mid == pytest.approx((lo + hi) / 2.0)
        assert hi - lo == pytest.approx(2 * 108.0)

    def test_off_grid_matches_fresh_simulation_within_margin(self, dma_surrogate):
        from repro.campaign.spec import apply_config_overrides
        from repro.campaign.workloads import get_workload

        workload = get_workload("put_oneway_latency")
        for payload, hops in ((2048, 2), (1536, 1), (4096, 2)):
            cfg = apply_config_overrides(BASE, {"network.switch_count": hops})
            truth = workload(cfg, payload_bytes=payload)["one_way_latency_ns"]
            guess = dma_surrogate.predict(
                {"payload_bytes": payload}, {"network.switch_count": hops}
            )["one_way_latency_ns"]
            assert abs(guess - truth) / truth <= 0.05

    def test_outside_grid_raises(self, dma_surrogate):
        with pytest.raises(OutOfEnvelope):
            dma_surrogate.predict(
                {"payload_bytes": 8192}, {"network.switch_count": 2}
            )

    def test_missing_axis_raises(self, dma_surrogate):
        with pytest.raises(OutOfEnvelope, match="omits"):
            dma_surrogate.predict({"payload_bytes": 2048})


class TestEnvelope:
    def _hash(self):
        return normalized_config_hash(BASE)

    def test_contains_in_range_point(self, dma_surrogate):
        assert dma_surrogate.envelope.contains(
            {"payload_bytes": 2000},
            {"network.switch_count": 2},
            self._hash(),
        )

    def test_rejects_other_config(self, dma_surrogate):
        from repro.campaign.spec import apply_config_overrides

        other = normalized_config_hash(
            apply_config_overrides(BASE, {"nic.txq_depth": 2})
        )
        assert not dma_surrogate.envelope.contains(
            {"payload_bytes": 2000}, {"network.switch_count": 2}, other
        )

    def test_seed_and_determinism_do_not_break_the_match(self):
        noisy = SystemConfig.paper_testbed(seed=7, deterministic=False)
        assert normalized_config_hash(noisy) == self._hash()

    def test_rejects_unfitted_parameter(self, dma_surrogate):
        assert not dma_surrogate.envelope.contains(
            {"payload_bytes": 2000, "mystery_knob": 1},
            {"network.switch_count": 2},
            self._hash(),
        )

    def test_rejects_axis_out_of_range(self, dma_surrogate):
        assert not dma_surrogate.envelope.contains(
            {"payload_bytes": 9000}, {"network.switch_count": 2}, self._hash()
        )

    def test_fixed_param_mismatch_rejected(self):
        envelope = Envelope(
            workload="am_lat",
            axes={"payload_bytes": (8.0, 16.0)},
            fixed_params={"completion_mode": "polling"},
            config_hash=self._hash(),
        )
        assert not envelope.contains(
            {"payload_bytes": 8, "completion_mode": "interrupt"}, {}, self._hash()
        )
        assert envelope.contains(
            {"payload_bytes": 8, "completion_mode": "polling"}, {}, self._hash()
        )

    def test_free_params_may_vary(self):
        envelope = Envelope(
            workload="am_lat",
            axes={"payload_bytes": (8.0, 16.0)},
            fixed_params={},
            config_hash=self._hash(),
            free_params=("iterations",),
        )
        assert envelope.contains(
            {"payload_bytes": 8, "iterations": 12345}, {}, self._hash()
        )


class TestPersistence:
    def test_json_round_trip(self, dma_surrogate, tmp_path):
        path = tmp_path / "surrogate.json"
        dma_surrogate.save(path)
        loaded = InterpolatedSurrogate.load(path)
        assert loaded.envelope == dma_surrogate.envelope
        assert loaded.grid == dma_surrogate.grid
        point = ({"payload_bytes": 2222}, {"network.switch_count": 2})
        assert loaded.predict(*point) == dma_surrogate.predict(*point)
        # The file is plain sorted JSON — diffable provenance.
        payload = json.loads(path.read_text())
        assert payload["kind"] == "interpolated"

    def test_quarantine_flag_round_trips(self, dma_surrogate, tmp_path):
        dma_surrogate.quarantined = True
        try:
            rebuilt = InterpolatedSurrogate.from_dict(dma_surrogate.to_dict())
        finally:
            dma_surrogate.quarantined = False
        assert rebuilt.quarantined


class TestAnalytic:
    def test_am_lat_matches_simulation_within_one_percent(self):
        from repro.campaign.workloads import get_workload

        surrogate = AnalyticSurrogate("am_lat")
        workload = get_workload("am_lat")
        config = SystemConfig.paper_testbed(deterministic=True)
        for payload in (8, 16):
            truth = workload(config, iterations=100, warmup=10, payload_bytes=payload)
            guess = surrogate.predict({"payload_bytes": payload})
            error = abs(
                guess["observed_latency_ns"] - truth["observed_latency_ns"]
            ) / truth["observed_latency_ns"]
            assert error <= 0.01

    def test_am_lat_envelope_stops_at_16_bytes(self):
        surrogate = AnalyticSurrogate("am_lat")
        config_hash = normalized_config_hash(SystemConfig.paper_testbed())
        assert surrogate.envelope.contains({"payload_bytes": 16}, {}, config_hash)
        assert not surrogate.envelope.contains({"payload_bytes": 32}, {}, config_hash)

    def test_put_bw_predicts_equation_two(self):
        from repro.core.components import ComponentTimes
        from repro.core.models import OverallInjectionModel

        surrogate = AnalyticSurrogate("put_bw")
        predicted = surrogate.predict({"payload_bytes": 8})
        expected = OverallInjectionModel(ComponentTimes.paper()).predicted_ns
        assert predicted["mean_injection_overhead_ns"] == pytest.approx(expected)
        assert predicted["message_rate_per_s"] == pytest.approx(1e9 / expected)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="no analytic model"):
            AnalyticSurrogate("osu_mr")
